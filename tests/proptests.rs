//! Cross-crate property tests: semantic preservation of the AST rewrites,
//! decision-tree encode/decode round trips, and Theorem 4.2 (solutions are
//! preserved by divide-and-conquer).

use proptest::prelude::*;
use smtkit::{SmtResult, SmtSolver};
use sygus_ast::{nnf, simplify, Definitions, Env, Symbol, Term, Value};

fn var_x() -> Term {
    Term::int_var("ptx")
}
fn var_y() -> Term {
    Term::int_var("pty")
}

fn int_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-4i64..=4).prop_map(Term::int),
        Just(var_x()),
        Just(var_y()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::app(sygus_ast::Op::Add, vec![a, b])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::app(sygus_ast::Op::Sub, vec![a, b])),
            inner
                .clone()
                .prop_map(|a| Term::app(sygus_ast::Op::Neg, vec![a])),
        ]
    })
}

fn bool_term() -> impl Strategy<Value = Term> {
    let atom = (int_term(), int_term(), 0usize..5).prop_map(|(a, b, rel)| match rel {
        0 => Term::app(sygus_ast::Op::Le, vec![a, b]),
        1 => Term::app(sygus_ast::Op::Lt, vec![a, b]),
        2 => Term::app(sygus_ast::Op::Ge, vec![a, b]),
        3 => Term::app(sygus_ast::Op::Gt, vec![a, b]),
        _ => Term::app(sygus_ast::Op::Eq, vec![a, b]),
    });
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|v| Term::app(sygus_ast::Op::And, v)),
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|v| Term::app(sygus_ast::Op::Or, v)),
            inner
                .clone()
                .prop_map(|a| Term::app(sygus_ast::Op::Not, vec![a])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::app(sygus_ast::Op::Implies, vec![a, b])),
        ]
    })
}

fn envs() -> Vec<Env> {
    let mut out = Vec::new();
    for x in [-3i64, 0, 2, 7] {
        for y in [-2i64, 0, 5] {
            out.push(Env::from_pairs(
                &[Symbol::new("ptx"), Symbol::new("pty")],
                &[Value::Int(x), Value::Int(y)],
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `simplify` preserves semantics on every sampled environment.
    #[test]
    fn simplify_preserves_semantics(t in bool_term()) {
        let defs = Definitions::new();
        let s = simplify(&t);
        for env in envs() {
            prop_assert_eq!(t.eval(&env, &defs), s.eval(&env, &defs), "env {}", env);
        }
    }

    /// `nnf` preserves semantics.
    #[test]
    fn nnf_preserves_semantics(t in bool_term()) {
        let defs = Definitions::new();
        let n = nnf(&t);
        for env in envs() {
            prop_assert_eq!(t.eval(&env, &defs), n.eval(&env, &defs), "env {}", env);
        }
    }

    /// Integer smart constructors agree with raw application semantics.
    #[test]
    fn smart_constructors_preserve_semantics(t in int_term()) {
        let defs = Definitions::new();
        let s = simplify(&t);
        for env in envs() {
            prop_assert_eq!(t.eval(&env, &defs), s.eval(&env, &defs));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decision-tree round trip: for random concrete coefficient values,
    /// the symbolic `interpret` on a point equals evaluating the decoded
    /// tree on that point.
    #[test]
    fn clia_tree_encode_decode_roundtrip(
        coeff_vals in proptest::collection::vec(-2i64..=2, 18),
        px in -5i64..=5,
        py in -5i64..=5,
    ) {
        use dryadsynth::CliaTreeEncoding;
        let a = Symbol::new("rta");
        let b = Symbol::new("rtb");
        let enc = CliaTreeEncoding::new(2, &[a, b], sygus_ast::Sort::Int);
        // Pin every unknown with an equality; solve; decode; compare.
        let unknowns: Vec<Symbol> = enc.unknowns().collect();
        prop_assume!(unknowns.len() <= coeff_vals.len());
        let pin = Term::and(
            unknowns
                .iter()
                .zip(&coeff_vals)
                .map(|(&u, &v)| Term::eq(Term::var(u, sygus_ast::Sort::Int), Term::int(v))),
        );
        let sym = enc.interpret(&[px, py]);
        match SmtSolver::new().check(&pin).expect("pin is sat") {
            SmtResult::Sat(model) => {
                let tree = enc.decode(&model);
                let env = Env::from_pairs(&[a, b], &[Value::Int(px), Value::Int(py)]);
                let direct = tree.eval(&env, &Definitions::new()).expect("eval");
                // Evaluate the symbolic interpretation under the model.
                let coeff_env: Env = unknowns
                    .iter()
                    .zip(&coeff_vals)
                    .map(|(&u, &v)| (u, Value::Int(v)))
                    .collect();
                let symbolic = sym.eval(&coeff_env, &Definitions::new()).expect("eval");
                prop_assert_eq!(direct, symbolic);
            }
            SmtResult::Unsat => prop_assert!(false, "pinning must be satisfiable"),
        }
    }
}

/// Theorem 4.2 for weaker-spec division: a solution of the original
/// problem solves both subproblems (here: the ∧-split Type-A, on the
/// counter-invariant family).
#[test]
fn theorem_4_2_weaker_spec_preserves_solutions() {
    use dryadsynth::{DivideConfig, Divider};
    for bound in [8i64, 50] {
        let src = format!(
            "(set-logic LIA)\
             (synth-inv inv ((x Int)))\
             (define-fun pre ((x Int)) Bool (= x 0))\
             (define-fun trans ((x Int) (x! Int)) Bool (= x! (ite (< x {bound}) (+ x 1) x)))\
             (define-fun post ((x Int)) Bool (=> (not (< x {bound})) (= x {bound})))\
             (inv-constraint inv pre trans post)\
             (check-synth)"
        );
        let p = sygus_parser::parse_problem(&src).expect("parses");
        // The known solution of the original problem.
        let x = Term::int_var("x");
        let solution = Term::and([
            Term::ge(x.clone(), Term::int(0)),
            Term::le(x.clone(), Term::int(bound)),
        ]);
        assert!(dryadsynth::verify_solution(&p, &solution, None));
        // Every weaker-spec Type-A subproblem must also accept it.
        let divider = Divider::new(DivideConfig::default());
        let mut seen_ws = false;
        for d in divider.divide(&p) {
            if !d.strategy.starts_with("weaker-spec") {
                continue;
            }
            seen_ws = true;
            assert!(
                dryadsynth::verify_solution(&d.type_a, &solution, None),
                "Theorem 4.2 violated by {} on bound {bound}",
                d.strategy
            );
        }
        assert!(seen_ws, "weaker-spec division must apply to INV problems");
    }
}
