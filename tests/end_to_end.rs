//! Cross-crate integration tests: the benchmark suite flows through the
//! parser, printer, and every solver engine; all solutions are
//! independently re-verified by the SMT substrate.

use dryadsynth::{
    competition_solvers, verify_solution, DryadSynth, SolveRequest, SynthOutcome, Synthesizer,
};
use std::time::Duration;
use sygus_ast::Problem;
use sygus_benchmarks::{suite, track_suite, Track};

/// Solves `p` under a wall-clock timeout through the unified request API.
fn solve(solver: &dyn Synthesizer, p: &Problem, secs: u64) -> SynthOutcome {
    let request = SolveRequest::new(p).with_timeout(Duration::from_secs(secs));
    solver.solve(&request).outcome
}

/// Every generated benchmark parses, and its reprint parses to the same
/// constraint set (parser ↔ printer round trip).
#[test]
fn suite_round_trips() {
    for b in suite() {
        let p = b.problem();
        let printed = sygus_parser::to_sygus(&p);
        let p2 = sygus_parser::parse_problem(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", b.name));
        assert_eq!(p.constraints, p2.constraints, "{}", b.name);
        assert_eq!(p.synth_fun.params, p2.synth_fun.params, "{}", b.name);
    }
}

/// DryadSynth smoke-solves the easiest tier of every track; every claimed
/// solution re-verifies.
#[test]
fn dryadsynth_solves_easy_tier_of_every_track() {
    let solver = DryadSynth::default();
    for t in Track::all() {
        let easy: Vec<_> = track_suite(t).into_iter().filter(|b| b.tier <= 1).collect();
        assert!(!easy.is_empty(), "track {t} has no tier-1 benchmarks");
        let mut solved = 0;
        for b in &easy {
            let p = b.problem();
            if let SynthOutcome::Solved(body) = solve(&solver, &p, 20) {
                assert!(
                    verify_solution(&p, &body, None),
                    "{}: unverified solution {body}",
                    b.name
                );
                solved += 1;
            }
        }
        assert!(
            solved > 0,
            "track {t}: DryadSynth solved none of the easy tier"
        );
    }
}

/// Representative benchmarks from each track solve and verify.
#[test]
fn representative_benchmarks_solve() {
    let names = ["max3", "abs_diff", "counter_to_8", "even_keeper", "qm_relu"];
    let solver = DryadSynth::default();
    for b in suite() {
        if !names.contains(&b.name.as_str()) {
            continue;
        }
        let p = b.problem();
        match solve(&solver, &p, 30) {
            SynthOutcome::Solved(body) => {
                assert!(verify_solution(&p, &body, None), "{}", b.name);
            }
            other => panic!("{}: {other:?}", b.name),
        }
    }
}

/// Solvers never return unverifiable solutions, whatever the benchmark
/// (sound-by-construction check across the lineup on a small sample).
#[test]
fn no_solver_returns_wrong_solutions() {
    let sample = ["max2", "counter_to_8", "qm_relu", "symmetric_constant"];
    let solvers = competition_solvers();
    for b in suite() {
        if !sample.contains(&b.name.as_str()) {
            continue;
        }
        let p = b.problem();
        for s in &solvers {
            if let SynthOutcome::Solved(body) = solve(s.as_ref(), &p, 10) {
                assert!(
                    verify_solution(&p, &body, None),
                    "{} returned a wrong solution for {}: {body}",
                    s.name(),
                    b.name
                );
            }
        }
    }
}

/// The CLI answer format round-trips through the parser as a definition.
#[test]
fn solution_printing_is_reparsable() {
    let b = sygus_benchmarks::max_n(2);
    let p = b.problem();
    let solver = DryadSynth::default();
    let SynthOutcome::Solved(body) = solve(&solver, &p, 20) else {
        panic!("max2 must solve");
    };
    let answer = sygus_parser::solution_to_sygus(&p, &body);
    // Embed the definition in a tiny script to check syntax.
    let script = format!("(set-logic LIA)\n{answer}\n(synth-fun g ((a Int)) Int)(constraint (= (g 0) 0))(check-synth)");
    let reparsed = sygus_parser::parse_problem(&script).expect("answer is valid SyGuS");
    assert!(reparsed.definitions.contains(p.synth_fun.name));
}

/// Grammar membership is enforced end to end on the General track:
/// solutions stay inside their custom grammars.
#[test]
fn general_track_solutions_respect_grammars() {
    let solver = DryadSynth::default();
    for b in track_suite(Track::General) {
        if b.tier > 2 {
            continue; // keep the test fast
        }
        let p = b.problem();
        if let SynthOutcome::Solved(body) = solve(&solver, &p, 20) {
            assert!(
                p.grammar_admits(&body),
                "{}: solution {body} escapes the grammar",
                b.name
            );
        }
    }
}
