//! Certifier regression: every benchmark the solver cracks must come back
//! `certified` — grammar membership, sort checking, and an independent
//! (itself proof-logged) SMT verification query all pass.

use dryadsynth::{certify_solution, DryadSynth, SolveRequest, SynthOutcome, Synthesizer};
use std::time::Duration;
use sygus_ast::Problem;
use sygus_benchmarks::{suite, track_suite, Track};

/// Solves `p` under a wall-clock timeout through the unified request API.
fn solve(solver: &DryadSynth, p: &Problem, secs: u64) -> SynthOutcome {
    let request = SolveRequest::new(p).with_timeout(Duration::from_secs(secs));
    solver.solve(&request).outcome
}

/// A fixed sample spanning all three tracks; each entry is known solvable
/// well within the per-benchmark timeout.
const SAMPLE: &[&str] = &[
    // CLIA
    "max2",
    "max3",
    "abs_diff",
    // INV
    "counter_to_8",
    "even_keeper",
    // General
    "qm_relu",
    "symmetric_constant",
];

#[test]
fn solved_sample_benchmarks_all_certify() {
    let solver = DryadSynth::default();
    let mut seen = 0;
    for b in suite() {
        if !SAMPLE.contains(&b.name.as_str()) {
            continue;
        }
        seen += 1;
        let p = b.problem();
        match solve(&solver, &p, 30) {
            SynthOutcome::Solved(body) => {
                let cert = certify_solution(&p, &body, None);
                assert!(
                    cert.certified(),
                    "{}: solution {body} not certified: {}",
                    b.name,
                    cert.failure_reason().unwrap_or_default()
                );
            }
            other => panic!("{}: expected a solution, got {other:?}", b.name),
        }
    }
    assert_eq!(seen, SAMPLE.len(), "sample names drifted from the suite");
}

#[test]
fn every_solved_easy_benchmark_certifies_across_tracks() {
    let solver = DryadSynth::default();
    for t in Track::all() {
        let mut certified = 0;
        for b in track_suite(t).into_iter().filter(|b| b.tier <= 1) {
            let p = b.problem();
            if let SynthOutcome::Solved(body) = solve(&solver, &p, 15) {
                let cert = certify_solution(&p, &body, None);
                assert!(
                    cert.certified(),
                    "{}: {}",
                    b.name,
                    cert.failure_reason().unwrap_or_default()
                );
                certified += 1;
            }
        }
        assert!(certified > 0, "track {t}: nothing solved, nothing certified");
    }
}
