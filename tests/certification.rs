//! Certifier regression: every benchmark the solver cracks must come back
//! `certified` — grammar membership, sort checking, and an independent
//! (itself proof-logged) SMT verification query all pass.

use dryadsynth::{certify_solution, DryadSynth, SygusSolver, SynthOutcome};
use std::time::Duration;
use sygus_benchmarks::{suite, track_suite, Track};

/// A fixed sample spanning all three tracks; each entry is known solvable
/// well within the per-benchmark timeout.
const SAMPLE: &[&str] = &[
    // CLIA
    "max2",
    "max3",
    "abs_diff",
    // INV
    "counter_to_8",
    "even_keeper",
    // General
    "qm_relu",
    "symmetric_constant",
];

#[test]
fn solved_sample_benchmarks_all_certify() {
    let solver = DryadSynth::default();
    let mut seen = 0;
    for b in suite() {
        if !SAMPLE.contains(&b.name.as_str()) {
            continue;
        }
        seen += 1;
        let p = b.problem();
        match solver.solve_problem(&p, Duration::from_secs(30)) {
            SynthOutcome::Solved(body) => {
                let cert = certify_solution(&p, &body, None);
                assert!(
                    cert.certified(),
                    "{}: solution {body} not certified: {}",
                    b.name,
                    cert.failure_reason().unwrap_or_default()
                );
            }
            other => panic!("{}: expected a solution, got {other:?}", b.name),
        }
    }
    assert_eq!(seen, SAMPLE.len(), "sample names drifted from the suite");
}

#[test]
fn every_solved_easy_benchmark_certifies_across_tracks() {
    let solver = DryadSynth::default();
    for t in Track::all() {
        let mut certified = 0;
        for b in track_suite(t).into_iter().filter(|b| b.tier <= 1) {
            let p = b.problem();
            if let SynthOutcome::Solved(body) = solver.solve_problem(&p, Duration::from_secs(15)) {
                let cert = certify_solution(&p, &body, None);
                assert!(
                    cert.certified(),
                    "{}: {}",
                    b.name,
                    cert.failure_reason().unwrap_or_default()
                );
                certified += 1;
            }
        }
        assert!(certified > 0, "track {t}: nothing solved, nothing certified");
    }
}
