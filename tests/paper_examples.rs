//! End-to-end reproductions of the paper's worked examples.

use dryadsynth::{
    verify_solution, DeductOutcome, DeductionConfig, DeductiveEngine, DryadSynth, DryadSynthConfig,
    Engine, SolveRequest, SynthOutcome, Synthesizer,
};
use std::time::Duration;
use sygus_ast::Problem;
use sygus_parser::parse_problem;

/// Solves `p` under a wall-clock timeout through the unified request API.
fn solve(solver: &DryadSynth, p: &Problem, secs: u64) -> SynthOutcome {
    let request = SolveRequest::new(p).with_timeout(Duration::from_secs(secs));
    solver.solve(&request).outcome
}

const MAX3_QM: &str = r#"
    (set-logic LIA)
    (define-fun qm ((a Int) (b Int)) Int (ite (< a 0) b a))
    (synth-fun max3 ((x Int) (y Int) (z Int)) Int
        ((S Int (x y z 0 1 (+ S S) (- S S) (qm S S)))))
    (declare-var x Int)
    (declare-var y Int)
    (declare-var z Int)
    (constraint (= (max3 x y z)
        (ite (and (>= x y) (>= x z)) x (ite (>= y z) y z))))
    (check-synth)
"#;

/// Example 2.12 / 3.2: max3 in the qm grammar, solved cooperatively via
/// subterm division — neither plain deduction nor the general rules handle
/// the ad-hoc `qm` operator directly.
#[test]
fn example_3_2_max3_in_qm_grammar() {
    let p = parse_problem(MAX3_QM).expect("parses");
    let solver = DryadSynth::default();
    match solve(&solver, &p, 120) {
        SynthOutcome::Solved(body) => {
            assert!(verify_solution(&p, &body, None), "solution {body} invalid");
            assert!(p.grammar_admits(&body), "solution {body} escapes Gqm");
            assert!(!body.to_string().contains("ite"));
        }
        other => panic!("cooperative synthesis failed: {other:?}"),
    }
}

/// Example 3.2's contrast: plain deduction alone cannot solve the qm
/// problem (no rule knows the ad-hoc operator).
#[test]
fn example_3_2_deduction_alone_fails() {
    let p = parse_problem(MAX3_QM).expect("parses");
    let engine = DeductiveEngine::new(DeductionConfig::default());
    match engine.deduct(&p) {
        DeductOutcome::Solved(t) => panic!("deduction should not solve this, got {t}"),
        DeductOutcome::Unsolvable => panic!("the problem is solvable"),
        DeductOutcome::Simplified(_) | DeductOutcome::Unchanged => {}
    }
}

/// Example 6.1 / Figure 9: ternary max is solved *purely deductively* from
/// bound constraints via the GCLIA merging rules.
#[test]
fn example_6_1_max3_by_pure_deduction() {
    let p = parse_problem(
        "(set-logic LIA)(synth-fun max3 ((x Int) (y Int) (z Int)) Int)\
         (declare-var x Int)(declare-var y Int)(declare-var z Int)\
         (constraint (>= (max3 x y z) x))\
         (constraint (>= (max3 x y z) y))\
         (constraint (>= (max3 x y z) z))\
         (constraint (or (= (max3 x y z) x) (or (= (max3 x y z) y) (= (max3 x y z) z))))\
         (check-synth)",
    )
    .expect("parses");
    let solver = DryadSynth::new(DryadSynthConfig {
        engine: Engine::DeductionOnly,
        ..DryadSynthConfig::default()
    });
    match solve(&solver, &p, 60) {
        SynthOutcome::Solved(body) => {
            assert!(verify_solution(&p, &body, None));
        }
        other => panic!("pure deduction should solve Example 6.1: {other:?}"),
    }
}

/// Example 2.14: the counter loop invariant.
#[test]
fn example_2_14_counter_invariant() {
    let p = parse_problem(
        r#"
        (set-logic LIA)
        (synth-inv inv ((x Int)))
        (define-fun pre ((x Int)) Bool (= x 0))
        (define-fun trans ((x Int) (x! Int)) Bool (= x! (ite (< x 100) (+ x 1) x)))
        (define-fun post ((x Int)) Bool (=> (not (< x 100)) (= x 100)))
        (inv-constraint inv pre trans post)
        (check-synth)
    "#,
    )
    .expect("parses");
    let solver = DryadSynth::default();
    match solve(&solver, &p, 120) {
        SynthOutcome::Solved(body) => {
            assert!(verify_solution(&p, &body, None), "invariant {body} invalid");
        }
        other => panic!("invariant synthesis failed: {other:?}"),
    }
}

/// Section 6's Match example: `x+x+x+x` must be rewritten into
/// `double(double(x))` to fit the grammar.
#[test]
fn section_6_match_rule_double() {
    let p = parse_problem(
        "(set-logic LIA)\
         (define-fun double ((a Int)) Int (+ a a))\
         (synth-fun f ((x Int)) Int ((S Int (x (double S)))))\
         (declare-var x Int)\
         (constraint (= (f x) (+ (+ x x) (+ x x))))(check-synth)",
    )
    .expect("parses");
    let solver = DryadSynth::default();
    match solve(&solver, &p, 60) {
        SynthOutcome::Solved(body) => {
            assert_eq!(body.to_string(), "(double (double x))");
        }
        other => panic!("Match-rule synthesis failed: {other:?}"),
    }
}

/// Height-based enumeration returns smallest-height solutions: identity
/// must come back as `x`, not as an ite tree (Section 5's minimality
/// argument).
#[test]
fn height_minimality() {
    let p = parse_problem(
        "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
         (constraint (= (f x) x))(check-synth)",
    )
    .expect("parses");
    let solver = DryadSynth::new(DryadSynthConfig {
        engine: Engine::HeightEnumOnly,
        threads: 1,
        ..DryadSynthConfig::default()
    });
    match solve(&solver, &p, 60) {
        SynthOutcome::Solved(body) => {
            assert_eq!(body.height(), 1, "expected a height-1 solution, got {body}");
        }
        other => panic!("{other:?}"),
    }
}
