//! A miniature version of the paper's evaluation: run every solver of the
//! comparison lineup on a handful of benchmarks from the generated suite
//! and print a Figure-10-style summary.
//!
//! Run with: `cargo run --release --example solver_shootout`

use dryadsynth::{competition_solvers, SolveRequest, SynthOutcome};
use std::time::Duration;

fn main() {
    let picks = [
        "max3",
        "abs_diff",
        "counter_to_100",
        "qm_relu",
        "double_chain_2",
    ];
    let suite: Vec<_> = sygus_benchmarks::suite()
        .into_iter()
        .filter(|b| picks.contains(&b.name.as_str()))
        .collect();
    let solvers = competition_solvers();
    let timeout = Duration::from_secs(8);

    println!(
        "{:<18}{:<14}{:>12}{:>9}{:>7}",
        "benchmark", "solver", "outcome", "time", "size"
    );
    for bench in &suite {
        let problem = bench.problem();
        for solver in &solvers {
            let request = SolveRequest::new(&problem)
                .with_timeout(timeout)
                .with_source(bench.name.clone());
            let report = solver.solve(&request);
            let secs = report.seconds;
            let (status, size) = match &report.outcome {
                SynthOutcome::Solved(body) => {
                    assert!(
                        dryadsynth::verify_solution(&problem, body, None),
                        "unverified solution from {}",
                        solver.name()
                    );
                    ("solved", format!("{}", body.size()))
                }
                SynthOutcome::Timeout => ("timeout", "-".to_owned()),
                SynthOutcome::ResourceExhausted(_) => ("exhausted", "-".to_owned()),
                SynthOutcome::GaveUp(_) => ("gave up", "-".to_owned()),
            };
            println!(
                "{:<18}{:<14}{:>12}{:>8.2}s{:>7}",
                bench.name,
                solver.name(),
                status,
                secs,
                size
            );
        }
    }
}
