//! Quickstart: parse a SyGuS problem and solve it with the cooperative
//! DryadSynth engine.
//!
//! Run with: `cargo run --example quickstart`

use dryadsynth::{DryadSynth, SolveRequest, SynthOutcome, Synthesizer};
use std::time::Duration;

fn main() {
    let source = r#"
        (set-logic LIA)
        (synth-fun max2 ((x Int) (y Int)) Int)
        (declare-var x Int)
        (declare-var y Int)
        (constraint (>= (max2 x y) x))
        (constraint (>= (max2 x y) y))
        (constraint (or (= (max2 x y) x) (= (max2 x y) y)))
        (check-synth)
    "#;
    let problem = sygus_parser::parse_problem(source).expect("well-formed SyGuS");
    println!("problem:\n{}", sygus_parser::to_sygus(&problem));

    let solver = DryadSynth::default();
    let request = SolveRequest::new(&problem).with_timeout(Duration::from_secs(30));
    match solver.solve(&request).outcome {
        SynthOutcome::Solved(body) => {
            println!(
                "solution: {}",
                sygus_parser::solution_to_sygus(&problem, &body)
            );
            println!("size: {}, height: {}", body.size(), body.height());
            assert!(dryadsynth::verify_solution(&problem, &body, None));
            println!("independently re-verified ✓");
        }
        other => println!("no solution: {other:?}"),
    }
}
