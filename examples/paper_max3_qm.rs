//! The paper's running example (Examples 2.12 and 3.2): synthesize `max3`
//! under the qm-normal-form grammar `Gqm`, where no `ite` is available and
//! the solution must be arithmetic over `qm(a, b) = ite(a < 0, b, a)`.
//!
//! Cooperative synthesis cracks this with subterm-based division: it first
//! synthesizes an auxiliary binary max in the grammar, then reuses it.
//!
//! Run with: `cargo run --example paper_max3_qm`

use dryadsynth::{DryadSynth, SolveRequest, SynthOutcome, Synthesizer};
use std::time::Duration;

fn main() {
    let source = r#"
        (set-logic LIA)
        (define-fun qm ((a Int) (b Int)) Int (ite (< a 0) b a))
        (synth-fun max3 ((x Int) (y Int) (z Int)) Int
            ((S Int (x y z 0 1 (+ S S) (- S S) (qm S S)))))
        (declare-var x Int)
        (declare-var y Int)
        (declare-var z Int)
        (constraint (= (max3 x y z)
            (ite (and (>= x y) (>= x z)) x (ite (>= y z) y z))))
        (check-synth)
    "#;
    let problem = sygus_parser::parse_problem(source).expect("well-formed SyGuS");

    let solver = DryadSynth::default();
    let request = SolveRequest::new(&problem).with_timeout(Duration::from_secs(120));
    let report = solver.solve(&request);
    match report.outcome {
        SynthOutcome::Solved(body) => {
            println!(
                "solved in {:.2}s: {}",
                report.seconds,
                sygus_parser::solution_to_sygus(&problem, &body)
            );
            assert!(
                problem.grammar_admits(&body),
                "solution must stay inside Gqm"
            );
            assert!(!body.to_string().contains("ite"), "no ite in Gqm");
            println!("grammar membership and verification ✓");
        }
        other => println!("no solution: {other:?}"),
    }
}
