//! Invariant synthesis (Example 2.14 of the paper): prove
//! `int x = 0; while (x < 100) x = x + 1; assert x == 100;`
//! by synthesizing a loop invariant.
//!
//! The cooperative engine recognizes the loop as a guarded translation,
//! strengthens the spec with the `fast-trans` reachability summary, and
//! splits the three-part invariant spec with weaker-spec division.
//!
//! Run with: `cargo run --example invariant_loop`

use dryadsynth::{DryadSynth, LoopInvGenBaseline, SolveRequest, SynthOutcome, Synthesizer};
use std::time::Duration;

fn main() {
    let source = r#"
        (set-logic LIA)
        (synth-inv inv ((x Int)))
        (define-fun pre ((x Int)) Bool (= x 0))
        (define-fun trans ((x Int) (x! Int)) Bool (= x! (ite (< x 100) (+ x 1) x)))
        (define-fun post ((x Int)) Bool (=> (not (< x 100)) (= x 100)))
        (inv-constraint inv pre trans post)
        (check-synth)
    "#;
    let problem = sygus_parser::parse_problem(source).expect("well-formed SyGuS");

    // Show the loop summary the engine derives.
    if let Some(t) = dryadsynth::recognize_translation(&problem) {
        println!(
            "recognized guarded translation: steps {:?}, guard {}",
            t.steps, t.guard
        );
        let info = problem.inv.as_ref().expect("INV problem");
        println!("fast-trans(x, x!): {}", dryadsynth::fast_trans(info, &t));
    }

    for solver in [
        Box::new(DryadSynth::default()) as Box<dyn Synthesizer>,
        Box::new(LoopInvGenBaseline),
    ] {
        let request = SolveRequest::new(&problem).with_timeout(Duration::from_secs(60));
        match solver.solve(&request).outcome {
            SynthOutcome::Solved(body) => {
                println!(
                    "{}: {}",
                    solver.name(),
                    sygus_parser::solution_to_sygus(&problem, &body)
                );
                assert!(dryadsynth::verify_solution(&problem, &body, None));
            }
            other => println!("{}: {other:?}", solver.name()),
        }
    }
}
