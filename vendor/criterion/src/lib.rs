//! Offline shim for the `criterion` crate.
//!
//! Provides just enough API for this workspace's benches to compile and
//! produce rough wall-clock numbers: `criterion_group!`/`criterion_main!`,
//! [`Criterion::bench_function`], [`Bencher::iter`], and
//! [`Bencher::iter_batched`]. There is no statistical analysis, warm-up
//! tuning, or reporting beyond a mean-per-iteration line on stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch sizing hint; accepted for API compatibility, ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            iters: 0,
            total: Duration::ZERO,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const N: u64 = 20;
        let start = Instant::now();
        for _ in 0..N {
            std_black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += N;
    }

    /// Times `routine` over freshly set-up inputs; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const N: u64 = 20;
        for _ in 0..N {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.total += start.elapsed();
        }
        self.iters += N;
    }
}

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        println!("bench {name:<40} {mean:>12.2?}/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a bench group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
