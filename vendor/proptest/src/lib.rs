//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API that this workspace's
//! tests use, with deterministic seeding and **no shrinking**: a failing
//! case reports the test name, case index, and seed, which is enough to
//! reproduce it (the generator is a pure function of the seed).
//!
//! Covered surface: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), [`strategy::Strategy`] with `prop_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, [`prop_oneof!`],
//! [`strategy::Just`], [`arbitrary::any`], tuple and integer-range
//! strategies, [`collection::vec`], and the `prop_assert*` /
//! [`prop_assume!`] macros.

pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Deterministic xorshift64* generator; cheap and dependency-free.
    #[derive(Clone, Debug)]
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Rng {
            // Avoid the all-zero fixed point.
            Rng(seed | 0x9e37_79b9_7f4a_7c15)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "empty sampling range");
            // Modulo bias is irrelevant for testing purposes.
            self.next_u64() % n
        }

        /// Uniform value in the inclusive range `[lo, hi]`.
        pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi, "empty sampling range");
            let span = (hi - lo) as u128 + 1;
            if span > u64::MAX as u128 {
                // Full-width span: combine two draws.
                let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
                lo + (wide % span) as i128
            } else {
                lo + self.below(span as u64) as i128
            }
        }
    }

    /// Error raised by a single test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 4096,
            }
        }
    }

    fn seed_for(name: &str, case: u32, attempt: u32) -> u64 {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        case.hash(&mut h);
        attempt.hash(&mut h);
        h.finish()
    }

    /// Runs `body` for `config.cases` cases with per-case deterministic
    /// seeds. Panics (failing the enclosing `#[test]`) on the first
    /// failing case, reporting enough to reproduce it.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut Rng) -> Result<(), TestCaseError>,
    {
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            let seed = seed_for(name, case, rejects);
            let mut rng = Rng::new(seed);
            match catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
                Ok(Ok(())) => case += 1,
                Ok(Err(TestCaseError::Reject(why))) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!("[{name}] too many rejected cases (last: {why})");
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!("[{name}] case {case} (seed {seed:#018x}) failed: {msg}");
                }
                Err(payload) => {
                    eprintln!("[{name}] case {case} (seed {seed:#018x}) panicked");
                    resume_unwind(payload);
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no value tree and
    /// no shrinking: a strategy is just a seeded sampling function.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Bounded recursive strategy: `depth` levels of `recurse` are
        /// unrolled over the base (leaf) strategy, choosing uniformly at
        /// each level between the leaf and the recursive case. Termination
        /// is guaranteed by construction; `_desired_size` and
        /// `_expected_branch` are accepted for API compatibility only.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                cur = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            cur
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply cloneable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut Rng) -> S::Value {
            // Local resampling; a filter that rejects this often is a bug
            // in the test, so give up loudly rather than loop forever.
            for _ in 0..256 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({:?}) rejected 256 samples in a row", self.whence);
        }
    }

    /// Uniform choice among equally weighted alternatives.
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    rng.range_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut Rng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy for any value of an [`crate::arbitrary::Arbitrary`] type.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    // Bias 1-in-8 draws toward boundary values — uniform
                    // sampling essentially never hits them.
                    if rng.below(8) == 0 {
                        const SPECIAL: [$t; 5] =
                            [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX - 1];
                        SPECIAL[rng.below(5) as usize]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = rng.range_i128(self.size.min as i128, self.size.max as i128) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — a vector of `size` elements of `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each `fn` item keeps its attributes (including
/// the user-written `#[test]`) and becomes a runner over `cases`
/// deterministic seeds.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |__rng| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                        $crate::__proptest_body!($body)
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Internal: wraps a test body block so it yields `Result<(), TestCaseError>`
/// whether or not it uses `return Ok(())` / `prop_assert!` early exits.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($body:block) => {{
        #[allow(unreachable_code, clippy::diverging_sub_expression)]
        let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
            $body;
            ::std::result::Result::Ok(())
        };
        __result
    }};
}

/// Uniform choice among the given strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts within a property body; failure fails just this case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
