//! Workspace façade for the DryadSynth (PLDI 2020) reproduction.
//!
//! This crate re-exports the member crates so examples and downstream users
//! can depend on a single package:
//!
//! * [`ast`](sygus_ast) — terms, grammars, problems;
//! * [`parser`](sygus_parser) — SyGuS-IF reader/printer;
//! * [`smt`](smtkit) — the QF_LIA SMT substrate;
//! * [`enumerative`](enum_synth) — the EUSolver-style baseline;
//! * [`solver`](dryadsynth) — the cooperative DryadSynth engine;
//! * [`benchmarks`](sygus_benchmarks) — the generated evaluation suite.

pub use dryadsynth as solver;
pub use enum_synth as enumerative;
pub use smtkit as smt;
pub use sygus_ast as ast;
pub use sygus_benchmarks as benchmarks;
pub use sygus_parser as parser;
