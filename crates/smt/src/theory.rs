//! The pluggable theory-solver seam: a common trait over the incremental
//! theory engines consulted during DPLL(T) search, plus the selection knob
//! that picks between them.
//!
//! Two engines implement [`TheorySolver`] today:
//!
//! * [`IncrementalLra`](crate::IncrementalLra) — the general warm-tableau
//!   rational simplex (sound for conflicts, incomplete for integer
//!   satisfiability, which the authoritative branch-and-bound full-model
//!   check covers);
//! * [`DifferenceLogic`](crate::DifferenceLogic) — a specialized
//!   constraint-graph engine for the difference-logic fragment
//!   (`x - y ⋈ c`, unary bounds included), exact over the integers via
//!   negative-cycle detection.
//!
//! A fragment detector ([`fits_dl`]) over the purified, canonicalized atoms
//! picks the DL engine when every atom fits the fragment; anything else
//! falls back to simplex. [`TheorySelect`] overrides the choice per
//! configuration, with a process-wide default settable from CLI flags.

use crate::inc_lra::LinearAtom;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which theory engine an [`SmtConfig`](crate::SmtConfig) uses for the
/// difference-logic-eligible part of its workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TheorySelect {
    /// Dispatch on the fragment: difference logic when every atom of the
    /// query fits `x - y ⋈ c` (unary bounds via the zero node), simplex
    /// otherwise.
    #[default]
    Auto,
    /// Always use the general simplex path, even on pure-DL queries.
    Simplex,
    /// Prefer the difference-logic engine; queries outside the fragment
    /// still fall back to simplex (the DL engine cannot represent them).
    DifferenceLogic,
}

impl TheorySelect {
    /// The stable flag spelling (`auto`, `simplex`, `dl`).
    pub fn as_str(self) -> &'static str {
        match self {
            TheorySelect::Auto => "auto",
            TheorySelect::Simplex => "simplex",
            TheorySelect::DifferenceLogic => "dl",
        }
    }
}

impl fmt::Display for TheorySelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for TheorySelect {
    type Err = String;

    fn from_str(s: &str) -> Result<TheorySelect, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(TheorySelect::Auto),
            "simplex" => Ok(TheorySelect::Simplex),
            "dl" | "difference-logic" | "difference_logic" => Ok(TheorySelect::DifferenceLogic),
            other => Err(format!(
                "unknown theory `{other}` (expected auto, simplex, or dl)"
            )),
        }
    }
}

/// The process-wide default read by `SmtConfig::default()`. Binaries set it
/// once at startup from `--theory`; library consumers that need a specific
/// engine use [`SmtConfigBuilder::theory`](crate::SmtConfigBuilder::theory)
/// instead (tests must: the process default is shared across threads).
// synthlint: allow(relaxed-handoff) — set once at binary startup before solver threads exist; later readers only need eventual visibility of a plain u8
static PROCESS_DEFAULT: AtomicU8 = AtomicU8::new(0);

fn encode(sel: TheorySelect) -> u8 {
    match sel {
        TheorySelect::Auto => 0,
        TheorySelect::Simplex => 1,
        TheorySelect::DifferenceLogic => 2,
    }
}

/// Sets the process-wide default theory selection (see
/// [`process_default_theory`]). Intended for binary startup, before any
/// solver is constructed.
pub fn set_process_default_theory(sel: TheorySelect) {
    PROCESS_DEFAULT.store(encode(sel), Ordering::Relaxed);
}

/// The current process-wide default theory selection ([`TheorySelect::Auto`]
/// unless a binary overrode it at startup).
pub fn process_default_theory() -> TheorySelect {
    match PROCESS_DEFAULT.load(Ordering::Relaxed) {
        1 => TheorySelect::Simplex,
        2 => TheorySelect::DifferenceLogic,
        _ => TheorySelect::Auto,
    }
}

/// A theory-conflict explanation in certificate form: the asserted atom
/// indices of an inconsistent subset, tagged with the proof shape that
/// justifies them. The SMT layer turns the certificate into a blocking
/// clause (logged as a theory lemma in the DRAT trace); the tag survives
/// into debug output so certificate provenance stays auditable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TheoryCertificate {
    /// Proof shape: `"farkas"` (simplex ray), `"neg-cycle"` (difference-
    /// logic negative cycle), or `"pinned-diseq"` (bounds pin a form to a
    /// forbidden value).
    pub kind: &'static str,
    /// Indices of the asserted atoms forming the inconsistent subset.
    pub atoms: Vec<usize>,
}

/// The incremental theory-engine interface consulted from inside the SAT
/// search (the DPLL(T) partial check) and by persistent sessions.
///
/// Contract:
///
/// * atoms are registered once via [`TheorySolver::add_atom`] and addressed
///   by the returned dense index thereafter;
/// * [`assert_atom`](TheorySolver::assert_atom) /
///   [`retract_atom`](TheorySolver::retract_atom) mirror the boolean
///   assignment; re-asserting the same polarity is a no-op, flipping
///   polarity is retract + assert;
/// * [`check`](TheorySolver::check) decides the asserted conjunction under
///   a step budget. `None` means the budget (or `poll`) ran out and the
///   caller must fall back to its authoritative full-model check;
///   `Some(Err(core))` is a conflict with the asserted atom indices of an
///   inconsistent subset;
/// * [`push`](TheorySolver::push) / [`pop`](TheorySolver::pop) bracket
///   assertion state (aligned with [`SmtSession`](crate::SmtSession)
///   selector scopes and with disequality splitting in full checks): `pop`
///   restores every atom's asserted polarity to its state at the matching
///   `push`.
///
/// The trait is object-safe; the SMT driver holds `Box<dyn TheorySolver>`.
pub trait TheorySolver {
    /// A short stable engine name (`"simplex"`, `"dl"`) for metrics and
    /// debug output.
    fn name(&self) -> &'static str;

    /// Appends a fresh problem variable and returns its dense index.
    fn add_var(&mut self) -> usize;

    /// The number of problem variables registered so far.
    fn num_vars(&self) -> usize;

    /// Registers an atom over already-added variables and returns its dense
    /// index, or `None` when the atom lies outside the engine's fragment
    /// (the caller must then migrate the query to a complete engine).
    /// Engines must either accept an atom fully or reject it without
    /// registering anything.
    fn add_atom(&mut self, atom: &LinearAtom) -> Option<usize>;

    /// The number of registered atoms.
    fn num_atoms(&self) -> usize;

    /// Asserts atom `idx` with the given polarity.
    fn assert_atom(&mut self, idx: usize, polarity: bool);

    /// Retracts atom `idx` (no-op if not asserted).
    fn retract_atom(&mut self, idx: usize);

    /// The currently asserted polarity of atom `idx`.
    fn polarity(&self, idx: usize) -> Option<bool>;

    /// Opens an assertion frame: the next [`pop`](TheorySolver::pop)
    /// restores all atom polarities to their state as of this call.
    fn push(&mut self);

    /// Closes the innermost assertion frame (no-op with none open).
    fn pop(&mut self);

    /// Decides the asserted conjunction under a step budget, polling
    /// `poll` periodically (a `false` return cancels). `None`: budget or
    /// poll ran out, answer unknown. `Some(Ok(()))`: consistent (for the
    /// simplex engine, rationally consistent only). `Some(Err(core))`:
    /// conflict, with the asserted atom indices of an inconsistent subset.
    fn check(
        &mut self,
        max_steps: u64,
        poll: &mut dyn FnMut() -> bool,
    ) -> Option<Result<(), Vec<usize>>>;

    /// The certificate of the most recent conflict reported by
    /// [`check`](TheorySolver::check), if still current (assertion changes
    /// invalidate it).
    fn explain_conflict(&self) -> Option<TheoryCertificate>;

    /// Lifetime count of the engine's unit of search work: simplex pivots
    /// for the LRA engine, label relaxations for difference logic.
    /// Monotone; the search-analytics layer differences successive reads
    /// to attribute work to theory checks.
    fn search_work(&self) -> u64;
}

/// Whether a canonical atom fits the integer difference-logic fragment:
/// `±x ⋈ c` (a unary bound, routed through the zero node) or
/// `x - y ⋈ c`. Canonicalization GCD-tightens coefficients, so scaled
/// difference constraints (`2x - 2y ≤ 5`) normalize into the fragment
/// before this test sees them.
pub fn fits_dl(atom: &LinearAtom) -> bool {
    let (coeffs, _, _) = atom;
    match coeffs.as_slice() {
        [] => true, // ground; never enters the atom list, but harmless
        [(_, c)] => *c == 1 || *c == -1,
        [(u, a), (v, b)] => u != v && ((*a == 1 && *b == -1) || (*a == -1 && *b == 1)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_round_trips_through_strings() {
        for sel in [
            TheorySelect::Auto,
            TheorySelect::Simplex,
            TheorySelect::DifferenceLogic,
        ] {
            assert_eq!(sel.as_str().parse::<TheorySelect>().unwrap(), sel);
        }
        assert_eq!(
            "difference-logic".parse::<TheorySelect>().unwrap(),
            TheorySelect::DifferenceLogic
        );
        assert!("cvc5".parse::<TheorySelect>().is_err());
    }

    #[test]
    fn fragment_detector() {
        // x <= 3
        assert!(fits_dl(&(vec![(0, 1)], false, 3)));
        // -y <= -2
        assert!(fits_dl(&(vec![(1, -1)], false, -2)));
        // x - y <= 7, both coefficient orders
        assert!(fits_dl(&(vec![(0, 1), (1, -1)], false, 7)));
        assert!(fits_dl(&(vec![(0, -1), (1, 1)], true, 7)));
        // 2x <= 3 (post-tightening this cannot appear, but reject anyway)
        assert!(!fits_dl(&(vec![(0, 2)], false, 3)));
        // x + y <= 3
        assert!(!fits_dl(&(vec![(0, 1), (1, 1)], false, 3)));
        // three variables
        assert!(!fits_dl(&(vec![(0, 1), (1, -1), (2, 1)], false, 0)));
    }
}
