//! Drain layer of the search-analytics pipeline: turns the SAT core's
//! interval records ([`SatSolver::take_search_intervals`]) into named
//! `search.*` counters, the `search.lbd` value histogram, and — when a
//! `--search-log` sink armed the registry — buffered JSONL interval
//! records.
//!
//! The discipline is *counters are derived from intervals*: every
//! `search.*` total is incremented only here, from the same drained
//! records that become JSONL lines. Interval records therefore sum exactly
//! to the counter totals (and to the RunReport `search` block built from
//! them) by construction, across timeouts, budget aborts, and retry
//! ladders alike. The SMT driver drains after every conflict chunk, so a
//! cancelled query loses nothing but the open tail — and a final
//! `close = true` drain at each query's return point collects that too.
//!
//! Schema of one JSONL record (all integers; deltas over the interval
//! unless noted):
//!
//! ```json
//! {"type": "search_interval", "seq": 3, "conflicts": 4096,
//!  "decisions": 5120, "propagations": 81234, "restarts": 2,
//!  "phase_flips": 900, "learned_literals": 30000,
//!  "lbd_sum": 20480, "lbd_count": 4096, "db_clauses": 5200,
//!  "episodes": [{"conflicts": 128, "lbd_sum": 640, "lbd_count": 128}]}
//! ```
//!
//! `seq` is the zero-based interval index within the run (monotone across
//! queries — it continues the `search.intervals_total` counter);
//! `db_clauses` is a gauge read when the interval closed; `episodes` lists
//! the restart episodes that ended inside the interval, each carrying the
//! LBD trend (`lbd_sum / lbd_count`) that preceded its restart.

use crate::sat::SatSolver;
use sygus_ast::trace::MetricsRegistry;
use sygus_ast::Json;

/// Drains the solver's accumulated search intervals into `metrics`: bumps
/// the `search.*` counters, records per-clause LBDs into the `search.lbd`
/// histogram, sets the `search.db_clauses` gauge, and (when the registry
/// has search-log buffering enabled) appends one JSONL record per
/// interval. With `close`, the partial interval since the last cut is
/// included — callers pass `true` at a query's return points and `false`
/// between conflict chunks.
pub fn drain_search(sat: &mut SatSolver, metrics: &MetricsRegistry, close: bool) {
    let intervals = sat.take_search_intervals(close);
    if intervals.is_empty() {
        return;
    }
    let mut conflicts = 0u64;
    let mut decisions = 0u64;
    let mut propagations = 0u64;
    let mut restarts = 0u64;
    let mut phase_flips = 0u64;
    let mut learned_literals = 0u64;
    let mut lbd_sum = 0u64;
    let mut lbd_count = 0u64;
    for iv in &intervals {
        conflicts += iv.conflicts;
        decisions += iv.decisions;
        propagations += iv.propagations;
        restarts += iv.restarts;
        phase_flips += iv.phase_flips;
        learned_literals += iv.learned_literals;
        lbd_sum += iv.lbd_sum;
        lbd_count += iv.lbd_count;
    }
    if lbd_count > 0 {
        let hist = metrics.latency("search.lbd");
        for iv in &intervals {
            for &lbd in &iv.lbds {
                hist.record(u64::from(lbd));
            }
        }
    }
    if metrics.search_log_enabled() {
        let seq_base = metrics.counter("search.intervals_total");
        for (i, iv) in intervals.iter().enumerate() {
            let episodes: Vec<Json> = iv
                .episodes
                .iter()
                .map(|ep| {
                    Json::obj([
                        ("conflicts", Json::from(ep.conflicts)),
                        ("lbd_sum", Json::from(ep.lbd_sum)),
                        ("lbd_count", Json::from(ep.lbd_count)),
                    ])
                })
                .collect();
            let record = Json::obj([
                ("type", Json::str("search_interval")),
                ("seq", Json::from(seq_base + i as u64)),
                ("conflicts", Json::from(iv.conflicts)),
                ("decisions", Json::from(iv.decisions)),
                ("propagations", Json::from(iv.propagations)),
                ("restarts", Json::from(iv.restarts)),
                ("phase_flips", Json::from(iv.phase_flips)),
                ("learned_literals", Json::from(iv.learned_literals)),
                ("lbd_sum", Json::from(iv.lbd_sum)),
                ("lbd_count", Json::from(iv.lbd_count)),
                ("db_clauses", Json::from(iv.db_clauses)),
                ("episodes", Json::Arr(episodes)),
            ]);
            metrics.push_search_sample(record.to_string());
        }
    }
    metrics.add("search.intervals_total", intervals.len() as u64);
    metrics.add("search.conflicts_total", conflicts);
    metrics.add("search.decisions_total", decisions);
    metrics.add("search.propagations_total", propagations);
    metrics.add("search.restarts_total", restarts);
    metrics.add("search.phase_flips_total", phase_flips);
    metrics.add("search.learned_literals_total", learned_literals);
    metrics.add("search.lbd_sum", lbd_sum);
    metrics.add("search.lbd_count", lbd_count);
    // Last closed interval carries the freshest clause-DB gauge.
    if let Some(last) = intervals.last() {
        metrics.set("search.db_clauses", last.db_clauses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Lit, SatResult};
    use sygus_ast::Tracer;

    /// PHP(n+1, n): forces real CDCL search.
    fn pigeonhole(pigeons: usize, holes: usize, s: &mut SatSolver) {
        let vars: Vec<Vec<_>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &vars {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)).collect());
        }
        for h in 0..holes {
            for (i, row_i) in vars.iter().enumerate() {
                for row_j in &vars[i + 1..] {
                    s.add_clause(vec![Lit::neg(row_i[h]), Lit::neg(row_j[h])]);
                }
            }
        }
    }

    #[test]
    fn counters_sum_to_logged_intervals() {
        let tracer = Tracer::metrics_only();
        let metrics = tracer.metrics();
        metrics.enable_search_log();
        let mut s = SatSolver::new();
        pigeonhole(7, 6, &mut s);
        assert_eq!(s.solve(None), SatResult::Unsat);
        drain_search(&mut s, metrics, true);

        let samples = metrics.search_samples();
        assert!(!samples.is_empty());
        assert_eq!(samples.len() as u64, metrics.counter("search.intervals_total"));
        // Every JSONL record parses, and the per-field sums equal the
        // drained counter totals exactly.
        let mut sums = std::collections::BTreeMap::new();
        for line in &samples {
            let v = Json::parse(line).expect("search sample parses");
            assert_eq!(v.get("type").and_then(Json::as_str), Some("search_interval"));
            for key in [
                "conflicts",
                "decisions",
                "propagations",
                "restarts",
                "phase_flips",
                "learned_literals",
                "lbd_sum",
                "lbd_count",
            ] {
                let n = v.get(key).and_then(Json::as_i64).expect(key) as u64;
                *sums.entry(key).or_insert(0u64) += n;
            }
        }
        for (key, total) in sums {
            let counter = match key {
                "lbd_sum" | "lbd_count" => format!("search.{key}"),
                _ => format!("search.{key}_total"),
            };
            assert_eq!(metrics.counter(&counter), total, "{counter}");
        }
        assert_eq!(metrics.counter("search.conflicts_total"), s.conflicts());
        // The LBD histogram saw one recording per learned clause.
        let lbd = metrics.latency("search.lbd").snapshot().lifetime;
        assert_eq!(lbd.count, metrics.counter("search.lbd_count"));
        assert_eq!(lbd.total, metrics.counter("search.lbd_sum"));
        assert!(lbd.p90() >= 1);
    }

    #[test]
    fn drain_without_log_skips_buffering_but_keeps_counters() {
        let tracer = Tracer::metrics_only();
        let metrics = tracer.metrics();
        let mut s = SatSolver::new();
        pigeonhole(5, 4, &mut s);
        assert_eq!(s.solve(None), SatResult::Unsat);
        drain_search(&mut s, metrics, true);
        assert!(metrics.search_samples().is_empty());
        assert!(metrics.counter("search.conflicts_total") > 0);
        // A second drain with nothing accumulated is a no-op.
        let before = metrics.counter("search.intervals_total");
        drain_search(&mut s, metrics, true);
        assert_eq!(metrics.counter("search.intervals_total"), before);
    }
}
