//! A CDCL SAT solver: two-watched-literal propagation, 1UIP conflict
//! analysis, VSIDS-style activities, phase saving, and Luby restarts.
//!
//! The solver is incremental in the simple sense the lazy DPLL(T) loop
//! needs: clauses (e.g. theory blocking clauses) may be added between
//! `solve` calls.
//!
//! With [`SatSolver::enable_proof`] the solver additionally records a
//! DRAT-style clause trace (inputs, learned clauses, deletions) that the
//! independent checker in [`crate::drat`] can replay to certify `unsat`
//! answers.

use crate::drat::ProofStep;
use std::fmt;

/// A propositional variable (0-based index).
pub type Var = u32;

/// A literal: a variable with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit((v << 1) | u32::from(negated))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }

    /// The dense code of the literal (`2·var + is_neg`), usable as an array
    /// index by external tooling such as the DRAT checker.
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "¬" } else { "" }, self.var())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// Result of a [`SatSolver::solve`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the witness assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

const INVALID: usize = usize::MAX;

/// Conflicts between cancellation polls in the `*_polled` solve entry
/// points: frequent enough that a daemon cancel lands within milliseconds,
/// rare enough that the branch is noise next to clause learning.
pub const POLL_CONFLICT_STRIDE: u64 = 64;

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use smtkit::{Lit, SatResult, SatSolver};
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(vec![Lit::neg(a)]);
/// match s.solve(None) {
///     SatResult::Sat(model) => {
///         assert!(!model[a as usize]);
///         assert!(model[b as usize]);
///     }
///     SatResult::Unsat => unreachable!(),
/// }
/// ```
pub struct SatSolver {
    clauses: Vec<Vec<Lit>>,
    /// `watches[lit]`: indices of clauses currently watching `lit`.
    watches: Vec<Vec<usize>>,
    assign: Vec<Option<bool>>,
    /// Saved phases for polarity selection.
    phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Index of the antecedent clause of each assigned var, or `INVALID`.
    reason: Vec<usize>,
    level: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    prop_head: usize,
    unsat_at_root: bool,
    conflicts_total: u64,
    /// DRAT-style trace, recorded only when proof logging is enabled.
    proof: Option<Vec<ProofStep>>,
    /// Test hook: corrupt clause learning to exercise the proof checker.
    sabotage_learning: bool,
    /// Interval-sampled search analytics (plain counters: the solver is
    /// single-threaded, so the hot loop pays no atomics).
    search: SearchStats,
}

/// Conflicts per closed search-analytics interval: the solve loop cuts an
/// interval record every this many analyzed conflicts (and the drain layer
/// closes the partial tail at the end of a query).
pub const SEARCH_SAMPLE_CONFLICTS: u64 = 4096;

/// One sampling interval of SAT-core search activity. All fields are
/// *deltas over the interval* except `db_clauses`, a gauge read when the
/// interval closes. `lbds` keeps the raw per-learned-clause LBDs so the
/// drain layer can feed a histogram at full resolution.
#[derive(Clone, Debug, Default)]
pub struct SearchInterval {
    /// Conflicts hit (including terminal root-level ones).
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals assigned by unit propagation or clause learning (everything
    /// enqueued with an antecedent clause).
    pub propagations: u64,
    /// Restarts taken.
    pub restarts: u64,
    /// Assignments that flipped the variable's saved phase.
    pub phase_flips: u64,
    /// Total literals across clauses learned by conflict analysis.
    pub learned_literals: u64,
    /// Sum of learned-clause LBDs (`lbd_count` divides it to a mean).
    pub lbd_sum: u64,
    /// Learned clauses with a recorded LBD (= analyzed conflicts).
    pub lbd_count: u64,
    /// Clause-DB size (attached clauses, learned included) at close.
    pub db_clauses: u64,
    /// Raw per-learned-clause LBDs, in learn order.
    pub lbds: Vec<u16>,
    /// Restart episodes that *ended* during this interval.
    pub episodes: Vec<RestartEpisode>,
}

/// One restart episode: the stretch of search between two restarts, closed
/// by the restart it describes. The LBD aggregates carry the trend that
/// preceded the restart (high mean = the episode was learning wide,
/// poor-quality clauses when the Luby budget expired).
#[derive(Clone, Debug)]
pub struct RestartEpisode {
    /// Conflicts since the previous restart (or query start).
    pub conflicts: u64,
    /// Sum of learned-clause LBDs over the episode.
    pub lbd_sum: u64,
    /// Learned clauses over the episode.
    pub lbd_count: u64,
}

/// Accumulator behind [`SatSolver::take_search_intervals`]: the open
/// interval, closed-but-undrained intervals, the running restart-episode
/// aggregates, and a scratch buffer for LBD computation.
#[derive(Debug, Default)]
struct SearchStats {
    open: SearchInterval,
    closed: Vec<SearchInterval>,
    episode_conflicts: u64,
    episode_lbd_sum: u64,
    episode_lbd_count: u64,
    scratch_levels: Vec<u32>,
}

impl SearchInterval {
    /// Whether any search activity landed in this interval.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.conflicts == 0 && self.decisions == 0 && self.propagations == 0
    }
}

impl Default for SatSolver {
    fn default() -> SatSolver {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            prop_head: 0,
            unsat_at_root: false,
            conflicts_total: 0,
            proof: None,
            sabotage_learning: false,
            search: SearchStats::default(),
        }
    }

    /// Turns on DRAT-style proof logging. Every clause added from here on
    /// is traced (inputs as axioms, conflict-analysis results as RUP-checkable
    /// derivations, preprocessing drops as deletions); see [`crate::drat`].
    /// Enable *before* adding clauses, or the trace will be incomplete.
    pub fn enable_proof(&mut self) {
        if self.proof.is_none() {
            self.proof = Some(Vec::new());
        }
    }

    /// The recorded proof trace (empty unless [`SatSolver::enable_proof`]
    /// was called).
    pub fn proof_steps(&self) -> &[ProofStep] {
        self.proof.as_deref().unwrap_or(&[])
    }

    /// Seeds a soundness bug into clause learning (the asserting literal of
    /// every learned clause is flipped). Exists solely so tests can verify
    /// that the DRAT checker catches a corrupted derivation; never call this
    /// outside of tests.
    #[doc(hidden)]
    pub fn seed_clause_learning_bug(&mut self) {
        self.sabotage_learning = true;
    }

    fn log(&mut self, step: impl FnOnce() -> ProofStep) {
        if let Some(p) = self.proof.as_mut() {
            p.push(step());
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(None);
        self.phase.push(false);
        self.reason.push(INVALID);
        self.level.push(0);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of attached (≥ 2-literal) clauses, learned ones included.
    /// Unit clauses become root assignments and are not counted. Sessions
    /// use the delta across a query as the "clauses retained" measure.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total conflicts encountered so far (a work measure).
    pub fn conflicts(&self) -> u64 {
        self.conflicts_total
    }

    /// Drains the accumulated search-analytics intervals. With
    /// `close_open`, the partial interval since the last
    /// [`SEARCH_SAMPLE_CONFLICTS`]-conflict cut is closed and included
    /// (callers do this at the end of a query so no activity is lost);
    /// otherwise it keeps accumulating toward its natural cut. Counter
    /// totals derived from the drained records sum exactly to the search
    /// activity since the previous drain — the analytics layer's
    /// intervals-sum-to-totals invariant holds by construction.
    pub fn take_search_intervals(&mut self, close_open: bool) -> Vec<SearchInterval> {
        if close_open && !self.search.open.is_empty() {
            self.search_close_interval();
        }
        std::mem::take(&mut self.search.closed)
    }

    /// Closes the open interval: stamp the clause-DB gauge, ship it.
    fn search_close_interval(&mut self) {
        self.search.open.db_clauses = self.clauses.len() as u64;
        let closed = std::mem::take(&mut self.search.open);
        self.search.closed.push(closed);
    }

    /// Records the learned clause of one analyzed conflict. Must run while
    /// the pre-backjump `level[]` entries are still valid (i.e. between
    /// [`SatSolver::analyze`] and `cancel_until`): the LBD is the number of
    /// distinct decision levels among the clause's literals.
    fn search_record_learned(&mut self, learned: &[Lit]) {
        let levels = &mut self.search.scratch_levels;
        levels.clear();
        levels.extend(learned.iter().map(|l| self.level[l.var() as usize]));
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u64;
        self.search.open.lbd_sum += lbd;
        self.search.open.lbd_count += 1;
        self.search.open.lbds.push(lbd.min(u64::from(u16::MAX)) as u16);
        self.search.open.learned_literals += learned.len() as u64;
        self.search.episode_lbd_sum += lbd;
        self.search.episode_lbd_count += 1;
    }

    /// Closes the current restart episode at a restart point.
    fn search_record_restart(&mut self) {
        self.search.open.restarts += 1;
        self.search.open.episodes.push(RestartEpisode {
            conflicts: self.search.episode_conflicts,
            lbd_sum: self.search.episode_lbd_sum,
            lbd_count: self.search.episode_lbd_count,
        });
        self.search.episode_conflicts = 0;
        self.search.episode_lbd_sum = 0;
        self.search.episode_lbd_count = 0;
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|b| b != l.is_neg())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Duplicate literals are removed and tautologies are
    /// ignored. Adding the empty clause (or a clause falsified at the root
    /// level) makes the instance unsatisfiable.
    ///
    /// May be called between `solve` invocations; the solver backtracks to
    /// the root level first.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.insert_clause(lits, true);
    }

    /// [`SatSolver::add_clause`] with control over proof logging: callers
    /// that already traced the clause (theory-lemma integration) pass
    /// `log_input = false` to avoid a duplicate axiom in the trace.
    fn insert_clause(&mut self, mut lits: Vec<Lit>, log_input: bool) {
        self.cancel_until(0);
        lits.sort();
        lits.dedup();
        // The canonical (sorted, deduplicated) form is what the trace
        // records, and doubles as the deletion key when preprocessing drops
        // the clause below. Root-falsified literals are *not* re-derived in
        // the trace: the checker reaches the same shrunk clause through the
        // root-level units it replays.
        let canonical = self.proof.is_some().then(|| lits.clone());
        if log_input {
            if let Some(c) = canonical.clone() {
                self.log(|| ProofStep::Input(c));
            }
        }
        // Tautology check (sorted: l and ¬l are adjacent).
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                if let Some(c) = canonical {
                    self.log(|| ProofStep::Delete(c));
                }
                return; // contains both polarities
            }
        }
        // Remove literals already false at root; stop if any is true at root.
        lits.retain(|&l| !(self.level[l.var() as usize] == 0 && self.value(l) == Some(false)));
        if lits
            .iter()
            .any(|&l| self.level[l.var() as usize] == 0 && self.value(l) == Some(true))
        {
            if let Some(c) = canonical {
                self.log(|| ProofStep::Delete(c));
            }
            return; // satisfied at root
        }
        match lits.len() {
            0 => self.unsat_at_root = true,
            1 => {
                if !self.enqueue(lits[0], INVALID) || self.propagate().is_some() {
                    self.unsat_at_root = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[lits[0].index()].push(idx);
                self.watches[lits[1].index()].push(idx);
                self.clauses.push(lits);
            }
        }
    }

    /// Removes every attached clause containing `lit` and rebuilds the
    /// watch lists. Intended for scope-aware clause GC in incremental
    /// sessions: once a scope's selector is fixed false at the root, every
    /// clause guarded by it — and every lemma learned under it, which
    /// carries the negated selector — is permanently satisfied and can be
    /// dropped. Deletions are recorded in the proof trace so DRAT replay
    /// stays aligned (a key the checker cannot match is a conservative
    /// no-op there). Returns the number of clauses removed.
    pub fn retire_clauses_with(&mut self, lit: Lit) -> usize {
        self.cancel_until(0);
        let old = std::mem::take(&mut self.clauses);
        let before = old.len();
        for w in &mut self.watches {
            w.clear();
        }
        for c in old {
            if c.contains(&lit) {
                if self.proof.is_some() {
                    let mut key = c;
                    key.sort();
                    key.dedup();
                    self.log(|| ProofStep::Delete(key));
                }
            } else {
                let idx = self.clauses.len();
                self.watches[c[0].index()].push(idx);
                self.watches[c[1].index()].push(idx);
                self.clauses.push(c);
            }
        }
        // Clause indices moved, so no stored antecedent may survive. Root
        // assignments keep their values; level-0 reasons are never
        // traversed by conflict analysis.
        for r in &mut self.reason {
            *r = INVALID;
        }
        self.prop_head = 0;
        before - self.clauses.len()
    }

    /// Enqueues an assignment; returns `false` on immediate conflict.
    fn enqueue(&mut self, l: Lit, reason: usize) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var() as usize;
                let value = !l.is_neg();
                self.assign[v] = Some(value);
                if self.phase[v] != value {
                    self.search.open.phase_flips += 1;
                }
                if reason != INVALID {
                    self.search.open.propagations += 1;
                }
                self.phase[v] = value;
                self.reason[v] = reason;
                self.level[v] = self.decision_level();
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            let false_lit = p.negate();
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                // Normalize: watched literals are clause[0] and clause[1].
                {
                    let clause = &mut self.clauses[ci];
                    if clause[0] == false_lit {
                        clause.swap(0, 1);
                    }
                }
                let first = self.clauses[ci][0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    let lk = self.clauses[ci][k];
                    if self.value(lk) != Some(false) {
                        self.clauses[ci].swap(1, k);
                        self.watches[lk.index()].push(ci);
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, ci) {
                    // Conflict: restore remaining watchers.
                    self.watches[false_lit.index()].extend_from_slice(&watchers);
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit.index()].extend_from_slice(&watchers);
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// 1UIP conflict analysis; returns (learned clause, backjump level).
    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for asserting literal
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();
        // synthlint: allow(unpolled-loop) — 1UIP resolution walks the finite trail backwards
        loop {
            // The reason side of the current conflict/antecedent.
            let start = usize::from(p.is_some());
            for k in start..self.clauses[conflict].len() {
                let q = self.clauses[conflict][k];
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Select next literal to expand: last trail literal seen.
            // synthlint: allow(unpolled-loop) — scans the trail for a seen literal; bounded by trail length
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var() as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found").var() as usize;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.expect("found").negate();
                break;
            }
            conflict = self.reason[pv];
            debug_assert_ne!(conflict, INVALID);
            seen[pv] = false;
        }
        // Backjump level: second-highest level in the learned clause.
        let bj = learned[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level in position 1 for watching.
        if learned.len() > 1 {
            let pos = learned[1..]
                .iter()
                .position(|l| self.level[l.var() as usize] == bj)
                .expect("bj literal exists")
                + 1;
            learned.swap(1, pos);
        }
        (learned, bj)
    }

    /// Integrates a theory-conflict clause: backjumps just far enough for
    /// the clause to become unit (or free) and attaches it. Returns `false`
    /// when the clause is conflicting at the root level (unsat).
    fn learn_theory_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        lits.sort();
        lits.dedup();
        // Theory lemmas are axioms of the propositional abstraction: the
        // trace records them as theory-lemma steps — replayed like inputs
        // (their justification lives in the theory solver, not in
        // resolution) but tagged so certificate provenance is auditable.
        if self.proof.is_some() {
            let logged = lits.clone();
            self.log(|| ProofStep::TheoryLemma(logged));
        }
        if lits.is_empty() {
            self.unsat_at_root = true;
            return false;
        }
        // Sort by assignment level, highest first (unassigned counts as
        // current level — should not happen for conflict clauses).
        let lvl = |me: &SatSolver, l: Lit| -> u32 {
            if me.assign[l.var() as usize].is_some() {
                me.level[l.var() as usize]
            } else {
                me.decision_level()
            }
        };
        lits.sort_by_key(|&l| std::cmp::Reverse(lvl(self, l)));
        let top = lvl(self, lits[0]);
        if lits.len() == 1 || top == 0 {
            self.cancel_until(0);
            self.prop_head = 0;
            self.insert_clause(lits, false); // already traced above
            return !self.unsat_at_root;
        }
        let second = lvl(self, lits[1]);
        let target = if second == top {
            top.saturating_sub(1)
        } else {
            second
        };
        self.cancel_until(target);
        self.prop_head = self.trail.len();
        let idx = self.clauses.len();
        self.watches[lits[0].index()].push(idx);
        self.watches[lits[1].index()].push(idx);
        let first = lits[0];
        let now_unit =
            lits[1..].iter().all(|&l| self.value(l) == Some(false)) && self.value(first).is_none();
        self.clauses.push(lits);
        if now_unit && !self.enqueue(first, idx) {
            // Cannot happen (first was unassigned), but stay safe.
            self.unsat_at_root = self.decision_level() == 0;
            return !self.unsat_at_root;
        }
        true
    }

    fn cancel_until(&mut self, lvl: u32) {
        // synthlint: allow(unpolled-loop) — pops the trail down to a level; bounded by trail length
        while self.decision_level() > lvl {
            let lim = self.trail_lim.pop().expect("level");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail");
                self.assign[l.var() as usize] = None;
                self.reason[l.var() as usize] = INVALID;
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        if lvl == 0 {
            self.prop_head = self.prop_head.min(self.trail.len());
        }
    }

    fn pick_branch(&self) -> Option<Var> {
        let mut best: Option<(Var, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v].is_none() {
                let a = self.activity[v];
                match best {
                    Some((_, ba)) if ba >= a => {}
                    _ => best = Some((v as Var, a)),
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Solves the current clause set.
    ///
    /// `max_conflicts` bounds the search effort; `None` means unbounded.
    /// Returns [`SatResult::Sat`] with a full model, [`SatResult::Unsat`],
    /// or — only when the conflict budget runs out — `Unsat` is *not*
    /// returned; instead the caller gets `None` via [`SatSolver::solve_budgeted`].
    pub fn solve(&mut self, max_conflicts: Option<u64>) -> SatResult {
        self.solve_budgeted(max_conflicts)
            .expect("conflict budget exhausted; use solve_budgeted for budgeted solving")
    }

    /// Like [`SatSolver::solve`] but returns `None` when the conflict budget
    /// is exhausted instead of panicking.
    pub fn solve_budgeted(&mut self, max_conflicts: Option<u64>) -> Option<SatResult> {
        self.solve_with_theory(max_conflicts, |_| None)
    }

    /// DPLL(T)-style solving: `theory` is consulted with the current
    /// assignment after propagation settles (and always on a full model).
    /// Returning `Some(clause)` reports a theory conflict; the clause is
    /// added and the search restarts from the root level.
    ///
    /// The callback sees `assign[var] = Some(value)` for the current
    /// partial assignment.
    pub fn solve_with_theory(
        &mut self,
        max_conflicts: Option<u64>,
        theory: impl FnMut(&[Option<bool>]) -> Option<Vec<Lit>>,
    ) -> Option<SatResult> {
        self.solve_under(&[], max_conflicts, theory)
    }

    /// [`SatSolver::solve_with_theory`] with a cancellation hook: `poll` is
    /// consulted every [`POLL_CONFLICT_STRIDE`] conflicts and a `false`
    /// return abandons the search (`None`, root level restored). This is how
    /// a daemon cancel reaches the middle of a conflict chunk instead of
    /// waiting out up to `max_conflicts` of CDCL churn.
    pub fn solve_with_theory_polled(
        &mut self,
        max_conflicts: Option<u64>,
        poll: impl FnMut() -> bool,
        theory: impl FnMut(&[Option<bool>]) -> Option<Vec<Lit>>,
    ) -> Option<SatResult> {
        self.solve_under_polled(&[], max_conflicts, poll, theory)
    }

    /// [`SatSolver::solve_with_theory`] under *assumptions*: the given
    /// literals are installed as pseudo-decisions (one per decision level,
    /// in order) before any real branching, MiniSat-style. `Unsat` then
    /// means "unsatisfiable together with the assumptions" — the clause
    /// database itself may still be satisfiable, and the solver stays
    /// usable for later calls with different assumptions. This is the
    /// engine under [`crate::SmtSession`] scopes: scope selectors are
    /// assumed true while the scope is open.
    ///
    /// Learned clauses may mention negated assumption literals but are
    /// derived by resolution from the clause database alone, so the DRAT
    /// trace stays checkable; an unsat-under-assumptions answer certifies
    /// by replaying the trace with one extra `Input` unit per assumption.
    pub fn solve_under(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: Option<u64>,
        theory: impl FnMut(&[Option<bool>]) -> Option<Vec<Lit>>,
    ) -> Option<SatResult> {
        self.solve_under_polled(assumptions, max_conflicts, || true, theory)
    }

    /// [`SatSolver::solve_under`] with a cancellation hook; see
    /// [`SatSolver::solve_with_theory_polled`] for the polling contract.
    pub fn solve_under_polled(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: Option<u64>,
        mut poll: impl FnMut() -> bool,
        mut theory: impl FnMut(&[Option<bool>]) -> Option<Vec<Lit>>,
    ) -> Option<SatResult> {
        if self.unsat_at_root {
            return Some(SatResult::Unsat);
        }
        self.cancel_until(0);
        self.prop_head = 0;
        if self.propagate().is_some() {
            self.unsat_at_root = true;
            return Some(SatResult::Unsat);
        }
        let mut conflicts_this_call: u64 = 0;
        let mut restart_unit = 0u32;
        let mut restart_budget = luby(restart_unit) * 128;
        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.conflicts_total += 1;
                    conflicts_this_call += 1;
                    self.search.open.conflicts += 1;
                    self.search.episode_conflicts += 1;
                    if let Some(max) = max_conflicts {
                        if conflicts_this_call > max {
                            self.cancel_until(0);
                            return None;
                        }
                    }
                    if conflicts_this_call.is_multiple_of(POLL_CONFLICT_STRIDE) && !poll() {
                        self.cancel_until(0);
                        return None;
                    }
                    if self.decision_level() == 0 {
                        self.unsat_at_root = true;
                        return Some(SatResult::Unsat);
                    }
                    let (mut learned, bj) = self.analyze(conflict);
                    // Levels are still pre-backjump here, so the LBD of the
                    // learned clause is computable exactly at learn time.
                    self.search_record_learned(&learned);
                    if self.sabotage_learning {
                        // Seeded soundness bug (tests only): assert the
                        // wrong polarity of the 1UIP literal.
                        learned[0] = learned[0].negate();
                    }
                    if self.proof.is_some() {
                        let logged = learned.clone();
                        self.log(|| ProofStep::Learn(logged));
                    }
                    self.cancel_until(bj);
                    self.prop_head = self.trail.len();
                    if learned.len() == 1 {
                        if !self.enqueue(learned[0], INVALID) {
                            self.unsat_at_root = true;
                            return Some(SatResult::Unsat);
                        }
                    } else {
                        let idx = self.clauses.len();
                        self.watches[learned[0].index()].push(idx);
                        self.watches[learned[1].index()].push(idx);
                        let asserting = learned[0];
                        self.clauses.push(learned);
                        let ok = self.enqueue(asserting, idx);
                        debug_assert!(ok || self.sabotage_learning);
                    }
                    self.var_inc *= 1.05;
                    restart_budget = restart_budget.saturating_sub(1);
                    if restart_budget == 0 {
                        restart_unit += 1;
                        restart_budget = luby(restart_unit) * 128;
                        self.cancel_until(0);
                        self.prop_head = 0;
                        self.search_record_restart();
                    }
                    if self.search.open.conflicts >= SEARCH_SAMPLE_CONFLICTS {
                        self.search_close_interval();
                    }
                }
                None => {
                    // Install pending assumptions first, one per level (so a
                    // restart or backjump re-installs them naturally). A
                    // falsified assumption ends the search: unsat *under the
                    // assumptions*, with the root database untouched.
                    if (self.decision_level() as usize) < assumptions.len() {
                        let a = assumptions[self.decision_level() as usize];
                        match self.value(a) {
                            Some(false) => {
                                self.cancel_until(0);
                                return Some(SatResult::Unsat);
                            }
                            Some(true) => {
                                // Already implied: open an empty level to
                                // keep level k ↔ assumption k aligned.
                                self.trail_lim.push(self.trail.len());
                            }
                            None => {
                                self.trail_lim.push(self.trail.len());
                                let ok = self.enqueue(a, INVALID);
                                debug_assert!(ok);
                            }
                        }
                        continue;
                    }
                    // Propagation settled: consult the theory before
                    // extending the assignment.
                    if let Some(clause) = theory(&self.assign) {
                        if !self.learn_theory_clause(clause) {
                            return Some(SatResult::Unsat);
                        }
                        continue;
                    }
                    match self.pick_branch() {
                        None => {
                            let model: Vec<bool> =
                                self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                            return Some(SatResult::Sat(model));
                        }
                        Some(v) => {
                            self.search.open.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let lit = Lit::new(v, !self.phase[v as usize]);
                            let ok = self.enqueue(lit, INVALID);
                            debug_assert!(ok);
                        }
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,…).
fn luby(i: u32) -> u64 {
    // Find the finite subsequence containing index i.
    let mut k = 1u32;
    // synthlint: allow(unpolled-loop) — Luby index arithmetic; bounded by the u64 bit width
    while (1u64 << k) - 1 < u64::from(i) + 1 {
        k += 1;
    }
    let mut i = u64::from(i) + 1;
    let mut kk = k;
    // synthlint: allow(unpolled-loop) — strictly decreasing subsequence index; terminates in ≤ 64 rounds
    while i != (1u64 << kk) - 1 {
        i -= (1u64 << (kk - 1)) - 1;
        kk = 1;
        // synthlint: allow(unpolled-loop) — Luby index arithmetic; bounded by the u64 bit width
        while (1u64 << kk) - 1 < i {
            kk += 1;
        }
    }
    1u64 << (kk - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_model(clauses: &[Vec<Lit>], model: &[bool]) {
        for c in clauses {
            assert!(
                c.iter().any(|l| model[l.var() as usize] != l.is_neg()),
                "clause {c:?} falsified by model"
            );
        }
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![Lit::pos(a)]);
        match s.solve(None) {
            SatResult::Sat(m) => assert!(m[a as usize]),
            SatResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![Lit::pos(a)]);
        s.add_clause(vec![Lit::neg(a)]);
        assert_eq!(s.solve(None), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = SatSolver::new();
        s.add_clause(vec![]);
        assert_eq!(s.solve(None), SatResult::Unsat);
    }

    #[test]
    fn no_clauses_sat() {
        let mut s = SatSolver::new();
        s.new_var();
        assert!(matches!(s.solve(None), SatResult::Sat(_)));
    }

    #[test]
    fn tautology_ignored() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![Lit::pos(a), Lit::neg(a)]);
        assert!(matches!(s.solve(None), SatResult::Sat(_)));
    }

    #[test]
    fn chain_implication() {
        // a, a->b, b->c, c->d ⟹ d
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(vec![Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            s.add_clause(vec![Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        match s.solve(None) {
            SatResult::Sat(m) => assert!(vars.iter().all(|&v| m[v as usize])),
            SatResult::Unsat => panic!("sat expected"),
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs (i, j) with i < j
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p_{i,h}
        let mut s = SatSolver::new();
        let mut p = [[0; 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        // each pigeon in some hole
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)).collect());
        }
        // no two pigeons share a hole
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(vec![Lit::neg(p[i][h]), Lit::neg(p[j][h])]);
                }
            }
        }
        assert_eq!(s.solve(None), SatResult::Unsat);
    }

    #[test]
    fn search_intervals_account_for_every_conflict_and_lbd() {
        let mut s = SatSolver::new();
        pigeonhole(6, 5, &mut s);
        assert_eq!(s.solve(None), SatResult::Unsat);
        let conflicts = s.conflicts();
        assert!(conflicts > 0);
        let intervals = s.take_search_intervals(true);
        assert!(!intervals.is_empty());
        // Every conflict lands in exactly one drained interval.
        let total: u64 = intervals.iter().map(|i| i.conflicts).sum();
        assert_eq!(total, conflicts);
        let decisions: u64 = intervals.iter().map(|i| i.decisions).sum();
        let propagations: u64 = intervals.iter().map(|i| i.propagations).sum();
        assert!(decisions > 0, "pigeonhole needs branching");
        assert!(propagations > 0, "pigeonhole needs propagation");
        for iv in &intervals {
            // One raw LBD per learned clause, and the aggregates match.
            assert_eq!(iv.lbds.len() as u64, iv.lbd_count);
            assert_eq!(iv.lbds.iter().map(|&l| u64::from(l)).sum::<u64>(), iv.lbd_sum);
            // LBD of any learned clause is at least 1, so sum >= count.
            assert!(iv.lbd_sum >= iv.lbd_count);
            // Only the terminal root-level conflict learns nothing.
            assert!(iv.conflicts - iv.lbd_count <= 1);
        }
        // The final interval saw the clause DB grow past the input clauses.
        assert!(intervals.last().unwrap().db_clauses as usize >= s.num_clauses());
        // Drain is a take: a second call returns nothing new.
        assert!(s.take_search_intervals(true).is_empty());
    }

    #[test]
    fn search_intervals_record_restart_episodes() {
        let mut s = SatSolver::new();
        pigeonhole(8, 7, &mut s);
        assert_eq!(s.solve(None), SatResult::Unsat);
        let intervals = s.take_search_intervals(true);
        let restarts: u64 = intervals.iter().map(|i| i.restarts).sum();
        let episodes: usize = intervals.iter().map(|i| i.episodes.len()).sum();
        assert_eq!(restarts as usize, episodes, "one episode record per restart");
        assert!(restarts > 0, "PHP(8,7) should outlast the first Luby budget");
        for ep in intervals.iter().flat_map(|i| &i.episodes) {
            // The Luby unit is 128 conflicts, so a closed episode saw at
            // least that many, and learned a clause per conflict.
            assert!(ep.conflicts >= 128, "short episode: {ep:?}");
            assert_eq!(ep.lbd_count, ep.conflicts);
            assert!(ep.lbd_sum >= ep.lbd_count);
        }
    }

    #[test]
    fn incremental_blocking() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        let mut models = 0;
        while let SatResult::Sat(m) = s.solve(None) {
            models += 1;
            // block this model
            let block: Vec<Lit> = (0..2).map(|v| Lit::new(v as Var, m[v])).collect();
            s.add_clause(block);
            assert!(models <= 4, "too many models");
        }
        assert_eq!(models, 3); // (T,T), (T,F), (F,T)
    }

    #[test]
    fn random_3sat_vs_bruteforce() {
        // Deterministic LCG; compare with brute force for n ≤ 10.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for trial in 0..60 {
            let n = 4 + (next() % 6) as usize; // 4..9 vars
            let m = n * 4;
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..m {
                let mut c: Vec<Lit> = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n as u64) as Var;
                    let negated = next() % 2 == 0;
                    c.push(Lit::new(v, negated));
                }
                clauses.push(c);
            }
            // brute force
            let mut brute_sat = false;
            'outer: for bits in 0u32..(1 << n) {
                let model: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                for c in &clauses {
                    if !c.iter().any(|l| model[l.var() as usize] != l.is_neg()) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = SatSolver::new();
            for _ in 0..n {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c.clone());
            }
            match s.solve(None) {
                SatResult::Sat(model) => {
                    assert!(brute_sat, "trial {trial}: solver sat, brute unsat");
                    check_model(&clauses, &model);
                }
                SatResult::Unsat => {
                    assert!(!brute_sat, "trial {trial}: solver unsat, brute sat");
                }
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs (i, j) with i < j
    fn budget_exhaustion_returns_none_or_result() {
        let mut s = SatSolver::new();
        let mut p = vec![[0; 4]; 5];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)).collect());
        }
        for h in 0..4 {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    s.add_clause(vec![Lit::neg(p[i][h]), Lit::neg(p[j][h])]);
                }
            }
        }
        // Tiny budget: must either finish (Unsat) or politely give up.
        match s.solve_budgeted(Some(3)) {
            None | Some(SatResult::Unsat) => {}
            Some(SatResult::Sat(_)) => panic!("pigeonhole cannot be sat"),
        }
        // Full solve still works afterwards.
        assert_eq!(s.solve(None), SatResult::Unsat);
    }

    fn pigeonhole(pigeons: usize, holes: usize, s: &mut SatSolver) {
        let mut p = vec![vec![0; holes]; pigeons];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)).collect());
        }
        for i in 0..pigeons {
            for j in (i + 1)..pigeons {
                for (&a, &b) in p[i].iter().zip(&p[j]) {
                    s.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
    }

    #[test]
    fn unsat_proof_certifies() {
        let mut s = SatSolver::new();
        s.enable_proof();
        pigeonhole(4, 3, &mut s);
        assert_eq!(s.solve(None), SatResult::Unsat);
        let stats = crate::drat::check_refutation(s.proof_steps()).expect("valid refutation");
        assert!(stats.learned > 0, "expected learned clauses: {stats:?}");
    }

    #[test]
    fn sat_model_satisfies_traced_clauses() {
        let mut s = SatSolver::new();
        s.enable_proof();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(vec![Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            s.add_clause(vec![Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        match s.solve(None) {
            SatResult::Sat(m) => assert!(crate::drat::model_satisfies(s.proof_steps(), &m)),
            SatResult::Unsat => panic!("sat expected"),
        }
    }

    #[test]
    fn seeded_clause_learning_bug_is_caught() {
        // Same instance as `unsat_proof_certifies`, but with the learning
        // mutation seeded: the trace must be rejected. This is the
        // end-to-end demonstration that a soundness bug in the CDCL loop
        // cannot slip past the certifier.
        let mut s = SatSolver::new();
        s.enable_proof();
        s.seed_clause_learning_bug();
        pigeonhole(4, 3, &mut s);
        match s.solve_budgeted(Some(200_000)) {
            Some(SatResult::Unsat) => {
                assert!(
                    crate::drat::check_refutation(s.proof_steps()).is_err(),
                    "corrupted derivation must not certify"
                );
            }
            // The mutation may instead surface as a bogus model or budget
            // exhaustion; a bogus model is caught by the model check.
            Some(SatResult::Sat(m)) => {
                assert!(
                    !crate::drat::model_satisfies(s.proof_steps(), &m),
                    "pigeonhole has no model; a claimed one must fail the check"
                );
            }
            None => {}
        }
    }

    #[test]
    fn proof_trace_is_deterministic() {
        let run = || {
            let mut s = SatSolver::new();
            s.enable_proof();
            pigeonhole(4, 3, &mut s);
            let _ = s.solve(None);
            crate::drat::drat_text(s.proof_steps())
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.lines().any(|l| l.starts_with("i ")));
    }

    #[test]
    fn assumptions_scope_the_answer() {
        // DB: a ∨ b. Under assumption ¬a the model must set b; under
        // assumptions ¬a ∧ ¬b the query is unsat, but the DB itself stays
        // satisfiable for later calls.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        match s.solve_under(&[Lit::neg(a)], None, |_| None) {
            Some(SatResult::Sat(m)) => {
                assert!(!m[a as usize] && m[b as usize]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(
            s.solve_under(&[Lit::neg(a), Lit::neg(b)], None, |_| None),
            Some(SatResult::Unsat)
        );
        // Not root-unsat: a plain solve still finds a model.
        assert!(matches!(s.solve(None), SatResult::Sat(_)));
        // And the same assumptions still answer unsat on the reused solver.
        assert_eq!(
            s.solve_under(&[Lit::neg(b), Lit::neg(a)], None, |_| None),
            Some(SatResult::Unsat)
        );
    }

    #[test]
    fn assumption_unsat_certifies_with_assumption_units() {
        // Pigeonhole guarded by a selector: unsat only under the selector.
        let mut s = SatSolver::new();
        s.enable_proof();
        let sel = s.new_var();
        let mut p = [[0; 3]; 4];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            let mut c: Vec<Lit> = vec![Lit::neg(sel)];
            c.extend(row.iter().map(|&v| Lit::pos(v)));
            s.add_clause(c);
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                for (&x, &y) in p[i].iter().zip(&p[j]) {
                    s.add_clause(vec![Lit::neg(sel), Lit::neg(x), Lit::neg(y)]);
                }
            }
        }
        assert_eq!(
            s.solve_under(&[Lit::pos(sel)], None, |_| None),
            Some(SatResult::Unsat)
        );
        // The trace refutes once the assumption is added as an input unit.
        let mut steps = s.proof_steps().to_vec();
        steps.push(ProofStep::Input(vec![Lit::pos(sel)]));
        crate::drat::check_refutation(&steps).expect("assumption-unsat trace certifies");
        // Without the selector the instance is satisfiable.
        assert!(matches!(s.solve(None), SatResult::Sat(_)));
    }

    #[test]
    fn retire_clauses_drops_guarded_scope() {
        let mut s = SatSolver::new();
        s.enable_proof();
        let sel = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        // Guarded scope: sel → (a ∧ ¬b); global: a ∨ b.
        s.add_clause(vec![Lit::neg(sel), Lit::pos(a)]);
        s.add_clause(vec![Lit::neg(sel), Lit::neg(b)]);
        s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        let before = s.num_clauses();
        assert_eq!(before, 3);
        // Pop the scope: fix the selector false, then retire its clauses.
        s.add_clause(vec![Lit::neg(sel)]);
        let removed = s.retire_clauses_with(Lit::neg(sel));
        assert_eq!(removed, 2);
        assert_eq!(s.num_clauses(), 1);
        // The remaining database still solves and its model respects a ∨ b.
        match s.solve(None) {
            SatResult::Sat(m) => assert!(m[a as usize] || m[b as usize]),
            SatResult::Unsat => panic!("sat expected"),
        }
        // The trace (with deletions) still replays for a model check.
        match s.solve(None) {
            SatResult::Sat(m) => assert!(crate::drat::model_satisfies(s.proof_steps(), &m)),
            SatResult::Unsat => unreachable!(),
        }
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }

    #[test]
    fn lit_encoding() {
        let l = Lit::pos(5);
        assert_eq!(l.var(), 5);
        assert!(!l.is_neg());
        assert_eq!(l.negate().var(), 5);
        assert!(l.negate().is_neg());
        assert_eq!(l.negate().negate(), l);
        assert_eq!(Lit::new(3, true), Lit::neg(3));
    }
}
