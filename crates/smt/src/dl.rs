//! An incremental difference-logic theory engine: the specialized fast
//! path for the octagonal/difference constraints that dominate INV-track
//! verification conditions.
//!
//! Constraints `x - y ≤ w` become weighted edges `y → x` of a constraint
//! graph over one node per variable plus a distinguished *zero node* for
//! unary bounds (`x ≤ c` is `x - 0 ≤ c`). The asserted conjunction is
//! satisfiable over the integers iff the graph has no negative-weight
//! cycle, and shortest-path potentials `π` (with `π(x) ≤ π(y) + w` for
//! every edge) give an integral model `x = π(x) - π(zero)` directly — no
//! branch-and-bound needed, which is why DL-dispatched queries skip the
//! simplex entirely.
//!
//! Incrementality (Cotton & Maler, "Fast and flexible difference constraint
//! propagation"): asserting an edge that the current potentials already
//! satisfy is free; a violated new edge triggers a localized relaxation
//! from its head, and a negative cycle exists iff that relaxation wraps
//! around to the edge's own tail. Retraction only *loosens* the constraint
//! system, so the potentials stay feasible and retracting is O(1) — the
//! property that makes the engine cheap under the churn of DPLL(T)
//! assignment sync. Conflicts latch the engine (potentials may be stale);
//! the first check after the assertion set changes re-validates with a
//! full budgeted Bellman–Ford pass.
//!
//! Per ordered node pair the engine keeps *all* asserted bounds in a
//! [`BTreeMap`] keyed by weight; the effective edge is the tightest, and
//! the atom justifying it is the explanation entering conflict cores —
//! exactly the bookkeeping [`IncrementalLra`](crate::IncrementalLra) uses
//! for simplex bounds, transplanted to graph edges.
//!
//! Arithmetic is `i128` throughout: atom bounds are `i64`, so negated
//! bounds (`-w - 1`) and path sums (at most `nodes · max|w|`) stay far
//! from the `i128` range ends and never wrap.

use crate::inc_lra::LinearAtom;
use crate::theory::{TheoryCertificate, TheorySolver};
use crate::BigInt;
use std::collections::BTreeMap;

/// One registered atom, pre-compiled to difference form `x_p - x_q ⋈ w`
/// over graph nodes (`0` is the zero node, variable `i` is node `i + 1`).
#[derive(Clone, Copy, Debug)]
struct DlAtom {
    /// Node of the positively-signed variable.
    p: u32,
    /// Node of the negatively-signed variable (or the zero node).
    q: u32,
    /// The bound: `x_p - x_q ≤ w` (`= w` when `is_eq`).
    w: i64,
    is_eq: bool,
}

/// A directed constraint edge `tail → head` of weight `w`, encoding
/// `x_head - x_tail ≤ w`.
#[derive(Clone, Copy, Debug)]
struct Edge {
    tail: u32,
    head: u32,
    w: i128,
}

/// An assertion-trail entry: atom index and its polarity before the first
/// change inside the current frame.
type TrailEntry = (usize, Option<bool>);

/// Relaxation steps between cancellation polls during revalidation.
const POLL_STRIDE: u64 = 64;

/// The incremental difference-logic engine. See the module docs for the
/// algorithm; see [`TheorySolver`] for the interface contract.
#[derive(Clone, Debug)]
pub struct DifferenceLogic {
    /// Number of graph nodes (variables + 1 for the zero node).
    nodes: usize,
    atoms: Vec<DlAtom>,
    /// `asserted[atom] = Some(polarity)` mirrors the boolean assignment.
    asserted: Vec<Option<bool>>,
    /// Active bounds per ordered pair `(tail, head)`: weight → asserting
    /// atom ids (multiplicity = length). The effective edge has the
    /// smallest key; the last id under it is the justification.
    bounds: BTreeMap<(u32, u32), BTreeMap<i128, Vec<usize>>>,
    /// Outgoing adjacency: for each tail, the heads with at least one
    /// bound ever registered (kept sorted; pairs are only deactivated,
    /// never removed, so this is registration-stable).
    out: Vec<Vec<u32>>,
    /// Shortest-path potentials; feasible (`π(head) ≤ π(tail) + w` for
    /// every active effective edge) whenever `conflict` and `dirty` are
    /// both clear.
    pi: Vec<i128>,
    /// Latched conflict core from the last failed check.
    conflict: Option<Vec<usize>>,
    /// Kind tag of the latched conflict (for [`TheoryCertificate`]).
    conflict_kind: &'static str,
    /// Set when the potentials can no longer be trusted (an assert landed
    /// while a conflict was latched, or a retract may have resolved one):
    /// the next check runs a full Bellman–Ford revalidation.
    dirty: bool,
    /// Open trail frames for push/pop; each records the pre-frame polarity
    /// of every atom first touched inside it.
    frames: Vec<(u64, Vec<TrailEntry>)>,
    /// Monotone frame counter (frame ids are never reused, so stale stamps
    /// cannot alias a reopened frame).
    next_frame: u64,
    /// `stamp[atom]`: id of the frame that already recorded this atom.
    stamp: Vec<u64>,
    /// Lifetime count of successful label relaxations (potential
    /// improvements) across incremental repair and full revalidation — the
    /// engine's unit of search work for analytics.
    relaxations_total: u64,
}

impl DifferenceLogic {
    /// Builds the engine for `atoms` over variables `0..num_vars`.
    ///
    /// # Panics
    ///
    /// Panics if any atom lies outside the difference-logic fragment; gate
    /// construction on [`fits_dl`](crate::theory::fits_dl).
    pub fn new(num_vars: usize, atoms: &[LinearAtom]) -> DifferenceLogic {
        let mut dl = DifferenceLogic {
            nodes: num_vars + 1,
            atoms: Vec::with_capacity(atoms.len()),
            asserted: Vec::with_capacity(atoms.len()),
            bounds: BTreeMap::new(),
            out: vec![Vec::new(); num_vars + 1],
            pi: vec![0; num_vars + 1],
            conflict: None,
            conflict_kind: "neg-cycle",
            dirty: false,
            frames: Vec::new(),
            next_frame: 0,
            stamp: Vec::with_capacity(atoms.len()),
            relaxations_total: 0,
        };
        for atom in atoms {
            dl.try_add_atom(atom)
                .expect("atom outside the difference-logic fragment");
        }
        dl
    }

    /// Registers an atom, returning `None` (and registering nothing) when
    /// it does not fit the fragment or mentions an unregistered variable.
    pub fn try_add_atom(&mut self, atom: &LinearAtom) -> Option<usize> {
        let (coeffs, is_eq, rhs) = atom;
        let node = |v: usize| -> u32 { (v + 1) as u32 };
        let (p, q) = match coeffs.as_slice() {
            [(v, 1)] => (node(*v), 0),
            [(v, -1)] => (0, node(*v)),
            [(u, 1), (v, -1)] if u != v => (node(*u), node(*v)),
            [(u, -1), (v, 1)] if u != v => (node(*v), node(*u)),
            _ => return None,
        };
        if p.max(q) as usize >= self.nodes {
            return None;
        }
        self.atoms.push(DlAtom {
            p,
            q,
            w: *rhs,
            is_eq: *is_eq,
        });
        self.asserted.push(None);
        self.stamp.push(u64::MAX);
        Some(self.atoms.len() - 1)
    }

    /// The full integral model, in variable order. Only meaningful right
    /// after a successful [`check`](TheorySolver::check).
    pub fn model(&self) -> Vec<BigInt> {
        (0..self.nodes - 1)
            .map(|v| BigInt::from(self.pi[v + 1] - self.pi[0]))
            .collect()
    }

    /// Records `idx`'s pre-change polarity in the innermost open frame
    /// (first touch per frame only).
    fn note(&mut self, idx: usize) {
        if let Some((id, entries)) = self.frames.last_mut() {
            if self.stamp[idx] != *id {
                self.stamp[idx] = *id;
                entries.push((idx, self.asserted[idx]));
            }
        }
    }

    /// The edge constraints asserted by `(atom, polarity)`. Disequalities
    /// assert no edges (they are handled by pinned-bounds detection here
    /// and by disequality splitting in the full-model check).
    fn edges_of(atom: &DlAtom, polarity: bool) -> [Option<Edge>; 2] {
        let (p, q, w) = (atom.p, atom.q, atom.w as i128);
        let fwd = Edge {
            tail: q,
            head: p,
            w,
        };
        match (atom.is_eq, polarity) {
            (false, true) => [Some(fwd), None],
            // ¬(e ≤ w) ⇔ e ≥ w + 1 ⇔ -e ≤ -w - 1 over the integers.
            (false, false) => [
                Some(Edge {
                    tail: p,
                    head: q,
                    w: -w - 1,
                }),
                None,
            ],
            (true, true) => [
                Some(fwd),
                Some(Edge {
                    tail: p,
                    head: q,
                    w: -w,
                }),
            ],
            (true, false) => [None, None],
        }
    }

    /// The effective (tightest) weight and justifying atom of the edge
    /// `tail → head`, if any bound on it is active.
    fn effective(&self, tail: u32, head: u32) -> Option<(i128, usize)> {
        let cell = self.bounds.get(&(tail, head))?;
        let (&w, ids) = cell.iter().next()?;
        Some((w, *ids.last().expect("non-empty bound cell")))
    }

    /// Activates one edge bound, justifed by `atom_idx`; propagates
    /// incrementally when it tightens the effective edge.
    fn add_edge(&mut self, e: Edge, atom_idx: usize) {
        let cell = self.bounds.entry((e.tail, e.head)).or_default();
        let was_effective = cell.keys().next().copied();
        cell.entry(e.w).or_default().push(atom_idx);
        let adj = &mut self.out[e.tail as usize];
        if let Err(pos) = adj.binary_search(&e.head) {
            adj.insert(pos, e.head);
        }
        if self.conflict.is_some() || self.dirty {
            // Cannot propagate from an untrusted base; revalidate lazily.
            self.dirty = true;
            return;
        }
        if was_effective.is_some_and(|prev| prev <= e.w) {
            return; // not the new tightest bound: nothing changed
        }
        if let Err(core) = self.relax_from(e, atom_idx) {
            self.conflict = Some(core);
            self.conflict_kind = "neg-cycle";
        }
    }

    /// Deactivates one edge bound. Pure loosening: the potentials stay
    /// feasible, so no propagation is needed; a latched conflict may have
    /// been resolved, so it is cleared and the engine marked dirty.
    fn remove_edge(&mut self, e: Edge, atom_idx: usize) {
        if let Some(cell) = self.bounds.get_mut(&(e.tail, e.head)) {
            if let Some(ids) = cell.get_mut(&e.w) {
                if let Some(pos) = ids.iter().position(|&a| a == atom_idx) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    cell.remove(&e.w);
                }
            }
        }
        if self.conflict.take().is_some() {
            self.dirty = true;
        }
    }

    /// Incremental propagation after tightening `e` (Cotton–Maler). On
    /// success the potentials are repaired in place; on a negative cycle
    /// its justifying atoms are returned and the potentials are left stale
    /// (the caller latches the conflict; the next check after a retraction
    /// revalidates from scratch).
    fn relax_from(&mut self, e: Edge, atom_idx: usize) -> Result<(), Vec<usize>> {
        if self.pi[e.tail as usize] + e.w >= self.pi[e.head as usize] {
            return Ok(()); // already satisfied by the current potentials
        }
        // parent[n] = (predecessor, justifying atom) of the relaxation
        // that last improved n, for cycle extraction.
        let mut parent: BTreeMap<u32, (u32, usize)> = BTreeMap::new();
        self.pi[e.head as usize] = self.pi[e.tail as usize] + e.w;
        self.relaxations_total += 1;
        parent.insert(e.head, (e.tail, atom_idx));
        let mut queue: Vec<u32> = vec![e.head];
        // Cotton–Maler relaxation: with a feasible base, every improvement
        // chain either dies out (the rest of the graph has no negative
        // cycle) or wraps to the new edge's tail, detected on pop.
        // synthlint: allow(unpolled-loop) — terminates by the Cotton–Maler argument above; budget polling happens in recompute, the slow path
        while let Some(n) = queue.pop() {
            if n == e.tail {
                // The wave wrapped around to the new edge's tail: a
                // negative cycle through `e`.
                return Err(trace_core(&parent, e.tail, Some(e.head), atom_idx));
            }
            let heads: Vec<u32> = self.out[n as usize].clone();
            for h in heads {
                let Some((we, ja)) = self.effective(n, h) else {
                    continue;
                };
                let cand = self.pi[n as usize] + we;
                if cand < self.pi[h as usize] {
                    self.pi[h as usize] = cand;
                    self.relaxations_total += 1;
                    parent.insert(h, (n, ja));
                    queue.push(h);
                }
            }
        }
        Ok(())
    }

    /// Detects the disequality conflicts visible without splitting: an
    /// asserted `e ≠ w` whose active bounds pin `e` to exactly `w`.
    fn pinned_diseq(&self) -> Option<Vec<usize>> {
        for (idx, atom) in self.atoms.iter().enumerate() {
            if self.asserted[idx] != Some(false) || !atom.is_eq {
                continue;
            }
            let w = atom.w as i128;
            let Some((up, ja)) = self.effective(atom.q, atom.p) else {
                continue;
            };
            let Some((lo, jb)) = self.effective(atom.p, atom.q) else {
                continue;
            };
            // x_p - x_q ∈ [-lo, up]; pinned to the forbidden value iff
            // both bounds equal w.
            if up == w && lo == -w {
                let mut core = vec![idx];
                for a in [ja, jb] {
                    if !core.contains(&a) {
                        core.push(a);
                    }
                }
                return Some(core);
            }
        }
        None
    }

    /// Full Bellman–Ford revalidation over all active effective edges,
    /// restarting the potentials from zero (which also keeps their
    /// magnitude bounded by `nodes · max|w|`). Returns `None` when
    /// `max_steps` or `poll` ran out mid-pass, leaving the engine dirty.
    fn recompute(
        &mut self,
        max_steps: u64,
        poll: &mut dyn FnMut() -> bool,
    ) -> Option<Result<(), Vec<usize>>> {
        self.pi.iter_mut().for_each(|p| *p = 0);
        let edges: Vec<(Edge, usize)> = self
            .bounds
            .iter()
            .filter_map(|(&(tail, head), cell)| {
                cell.iter().next().map(|(&w, ids)| {
                    (
                        Edge { tail, head, w },
                        *ids.last().expect("non-empty bound cell"),
                    )
                })
            })
            .collect();
        let mut steps: u64 = 0;
        let mut parent: BTreeMap<u32, (u32, usize)> = BTreeMap::new();
        // Bellman–Ford with an implicit virtual source (the all-zero
        // start): `nodes` full passes settle every improvement unless a
        // negative cycle exists, which a further improving pass witnesses.
        for round in 0..=self.nodes {
            let mut improved: Option<u32> = None;
            for &(e, atom) in &edges {
                steps += 1;
                if steps.is_multiple_of(POLL_STRIDE) && (!poll() || steps > max_steps) {
                    self.dirty = true; // pass incomplete: stay untrusted
                    return None;
                }
                let cand = self.pi[e.tail as usize] + e.w;
                if cand < self.pi[e.head as usize] {
                    self.pi[e.head as usize] = cand;
                    self.relaxations_total += 1;
                    parent.insert(e.head, (e.tail, atom));
                    improved = Some(e.head);
                }
            }
            match improved {
                None => return Some(Ok(())),
                Some(witness) if round == self.nodes => {
                    // An improvement after `nodes` settled passes proves a
                    // negative cycle somewhere in the parent graph.
                    let core = trace_core(&parent, witness, None, usize::MAX);
                    let core = if core.is_empty() {
                        // Extraction found no closed cycle from this
                        // witness (possible only in degenerate parent
                        // states); fall back to the full active edge set,
                        // which provably contains the cycle.
                        edges.iter().map(|&(_, a)| a).collect()
                    } else {
                        core
                    };
                    return Some(Err(core));
                }
                Some(_) => {}
            }
        }
        unreachable!("the final round either settles or witnesses a cycle")
    }

    /// Deactivates `idx`'s edges and clears its polarity (callers manage
    /// the trail; this is the raw state change shared by retract and pop).
    fn apply_retract(&mut self, idx: usize) {
        let Some(polarity) = self.asserted[idx].take() else {
            return;
        };
        let atom = self.atoms[idx];
        for edge in Self::edges_of(&atom, polarity).into_iter().flatten() {
            self.remove_edge(edge, idx);
        }
        // Disequalities assert no edges, so `remove_edge` never sees them;
        // clear a latched pinned-diseq conflict here instead.
        if atom.is_eq && !polarity && self.conflict.take().is_some() {
            self.dirty = true;
        }
    }

    /// Asserts `idx` at `polarity` without recording a trail entry (shared
    /// by the public assert and pop's replay).
    fn apply_assert(&mut self, idx: usize, polarity: bool) {
        if self.asserted[idx].is_some() {
            self.apply_retract(idx);
        }
        self.asserted[idx] = Some(polarity);
        let atom = self.atoms[idx];
        for edge in Self::edges_of(&atom, polarity).into_iter().flatten() {
            self.add_edge(edge, idx);
        }
        // A freshly asserted disequality can be conflicting immediately if
        // the current bounds already pin it; detection is deferred to the
        // next `check`, which always re-derives pins from the bound maps.
    }
}

/// Walks the parent map from `start`, collecting justifying atoms. Stops
/// with success when `stop` is reached (adding `extra` to close the cycle
/// through the newly added edge), or when a node repeats (a parent-graph
/// cycle, itself a negative cycle — the standard Bellman–Ford argument).
/// Returns an empty vector if the chain dead-ends first.
fn trace_core(
    parent: &BTreeMap<u32, (u32, usize)>,
    start: u32,
    stop: Option<u32>,
    extra: usize,
) -> Vec<usize> {
    let mut seen: Vec<u32> = vec![start];
    let mut hops: Vec<usize> = Vec::new();
    let mut n = start;
    // synthlint: allow(unpolled-loop) — each iteration visits a distinct node (the repeat check below fires otherwise), so the walk is bounded by the node count
    loop {
        let Some(&(prev, atom)) = parent.get(&n) else {
            return Vec::new(); // dead end: no closed cycle via this chain
        };
        hops.push(atom);
        n = prev;
        if stop == Some(n) {
            let mut core = hops;
            if extra != usize::MAX && !core.contains(&extra) {
                core.push(extra);
            }
            core.dedup();
            return core;
        }
        if let Some(i) = seen.iter().position(|&m| m == n) {
            // Nodes seen[i..] form a cycle; its edge atoms are the hops
            // taken since first visiting seen[i].
            let mut core: Vec<usize> = hops[i..].to_vec();
            core.sort_unstable();
            core.dedup();
            return core;
        }
        seen.push(n);
    }
}

impl TheorySolver for DifferenceLogic {
    fn name(&self) -> &'static str {
        "dl"
    }

    fn add_var(&mut self) -> usize {
        self.nodes += 1;
        self.pi.push(0);
        self.out.push(Vec::new());
        self.nodes - 2 // dense variable index (node id minus the zero node)
    }

    fn num_vars(&self) -> usize {
        self.nodes - 1
    }

    fn add_atom(&mut self, atom: &LinearAtom) -> Option<usize> {
        self.try_add_atom(atom)
    }

    fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    fn assert_atom(&mut self, idx: usize, polarity: bool) {
        if self.asserted[idx] == Some(polarity) {
            return;
        }
        self.note(idx);
        self.apply_assert(idx, polarity);
    }

    fn retract_atom(&mut self, idx: usize) {
        if self.asserted[idx].is_none() {
            return;
        }
        self.note(idx);
        self.apply_retract(idx);
    }

    fn polarity(&self, idx: usize) -> Option<bool> {
        self.asserted[idx]
    }

    fn push(&mut self) {
        let id = self.next_frame;
        self.next_frame += 1;
        self.frames.push((id, Vec::new()));
    }

    fn pop(&mut self) {
        let Some((_, entries)) = self.frames.pop() else {
            return;
        };
        for (idx, prev) in entries.into_iter().rev() {
            // Replay without noting: the enclosing frame's view of these
            // atoms (recorded before the popped frame opened, if it
            // touched them at all) is already correct.
            match prev {
                Some(pol) => {
                    if self.asserted[idx] != Some(pol) {
                        self.apply_assert(idx, pol);
                    }
                }
                None => self.apply_retract(idx),
            }
        }
    }

    fn check(
        &mut self,
        max_steps: u64,
        poll: &mut dyn FnMut() -> bool,
    ) -> Option<Result<(), Vec<usize>>> {
        if let Some(core) = &self.conflict {
            return Some(Err(core.clone()));
        }
        if self.dirty {
            match self.recompute(max_steps, poll)? {
                Ok(()) => self.dirty = false,
                Err(core) => {
                    self.conflict = Some(core.clone());
                    self.conflict_kind = "neg-cycle";
                    return Some(Err(core));
                }
            }
        }
        if let Some(core) = self.pinned_diseq() {
            self.conflict = Some(core.clone());
            self.conflict_kind = "pinned-diseq";
            return Some(Err(core));
        }
        Some(Ok(()))
    }

    fn explain_conflict(&self) -> Option<TheoryCertificate> {
        self.conflict.as_ref().map(|atoms| TheoryCertificate {
            kind: self.conflict_kind,
            atoms: atoms.clone(),
        })
    }

    fn search_work(&self) -> u64 {
        self.relaxations_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unlimited(dl: &mut DifferenceLogic) -> Result<(), Vec<usize>> {
        dl.check(u64::MAX, &mut || true)
            .expect("unlimited check cannot give up")
    }

    /// x - y ≤ -1 (x < y), y - z ≤ -1, z - x ≤ -1: a classic 3-cycle.
    #[test]
    fn three_cycle_conflict() {
        let atoms: Vec<LinearAtom> = vec![
            (vec![(0, 1), (1, -1)], false, -1),
            (vec![(1, 1), (2, -1)], false, -1),
            (vec![(2, 1), (0, -1)], false, -1),
        ];
        let mut dl = DifferenceLogic::new(3, &atoms);
        dl.assert_atom(0, true);
        dl.assert_atom(1, true);
        assert!(unlimited(&mut dl).is_ok());
        dl.assert_atom(2, true);
        let core = unlimited(&mut dl).expect_err("negative 3-cycle");
        let mut sorted = core.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "core must cite the whole cycle");
        let cert = dl.explain_conflict().expect("latched certificate");
        assert_eq!(cert.kind, "neg-cycle");
        // Retracting any cycle edge restores feasibility.
        dl.retract_atom(1);
        assert!(unlimited(&mut dl).is_ok());
    }

    /// Zero-weight cycles (x ≤ y ∧ y ≤ x) are satisfiable — equality, not
    /// conflict — and the model must realize it.
    #[test]
    fn zero_weight_cycle_is_sat() {
        let atoms: Vec<LinearAtom> = vec![
            (vec![(0, 1), (1, -1)], false, 0),
            (vec![(1, 1), (0, -1)], false, 0),
        ];
        let mut dl = DifferenceLogic::new(2, &atoms);
        dl.assert_atom(0, true);
        dl.assert_atom(1, true);
        assert!(unlimited(&mut dl).is_ok());
        let m = dl.model();
        assert_eq!(m[0], m[1], "x = y is forced by the zero cycle");
    }

    /// Strict vs non-strict: over the integers `¬(e ≤ 0)` is `e ≥ 1`, not
    /// `e ≥ 0`. Both atoms negated (`x > y ∧ y > x`) must conflict, while
    /// both asserted (`x ≤ y ∧ y ≤ x`) is satisfiable — a naive non-strict
    /// negation would wrongly accept the former.
    #[test]
    fn strict_negation_semantics() {
        let atoms: Vec<LinearAtom> = vec![
            (vec![(0, 1), (1, -1)], false, 0),  // x - y <= 0
            (vec![(1, 1), (0, -1)], false, 0),  // y - x <= 0
            (vec![(1, 1), (0, -1)], false, -1), // y - x <= -1 (y < x)
        ];
        let mut dl = DifferenceLogic::new(2, &atoms);
        dl.assert_atom(0, false); // x ≥ y + 1
        dl.assert_atom(1, false); // y ≥ x + 1
        let core = unlimited(&mut dl).expect_err("x > y and y > x");
        assert_eq!(core.len(), 2);
        // Flip to the non-strict polarities: x ≤ y and y ≤ x is sat.
        dl.assert_atom(0, true);
        dl.assert_atom(1, true);
        assert!(unlimited(&mut dl).is_ok());
        assert_eq!(dl.model()[0], dl.model()[1]);
        // Mixed strict/non-strict: x ≤ y together with y < x conflicts
        // (weights 0 and -1 sum to a negative cycle).
        dl.assert_atom(2, true);
        let core = unlimited(&mut dl).expect_err("x <= y and y < x");
        assert!(core.contains(&2));
    }

    /// Unary bounds route through the zero node: x ≤ 3 ∧ x ≥ 5 conflicts,
    /// and the model respects one-sided bounds exactly.
    #[test]
    fn unary_bounds_via_zero_node() {
        let atoms: Vec<LinearAtom> = vec![
            (vec![(0, 1)], false, 3),  // x <= 3
            (vec![(0, -1)], false, -5), // -x <= -5, i.e. x >= 5
        ];
        let mut dl = DifferenceLogic::new(1, &atoms);
        dl.assert_atom(0, true);
        assert!(unlimited(&mut dl).is_ok());
        assert!(dl.model()[0] <= BigInt::from(3));
        dl.assert_atom(1, true);
        let core = unlimited(&mut dl).expect_err("x <= 3 and x >= 5");
        let mut sorted = core;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
        dl.retract_atom(0);
        assert!(unlimited(&mut dl).is_ok());
        assert!(dl.model()[0] >= BigInt::from(5));
    }

    /// Equality asserts both directions; its negation participates via
    /// pinned-bounds detection.
    #[test]
    fn equality_and_pinned_disequality() {
        let atoms: Vec<LinearAtom> = vec![
            (vec![(0, 1), (1, -1)], true, 4), // x - y = 4
            (vec![(0, 1), (1, -1)], false, 4), // x - y <= 4
            (vec![(1, 1), (0, -1)], false, -4), // y - x <= -4 (x - y >= 4)
        ];
        let mut dl = DifferenceLogic::new(2, &atoms);
        dl.assert_atom(0, true);
        assert!(unlimited(&mut dl).is_ok());
        let m = dl.model();
        assert_eq!(&m[0] - &m[1], BigInt::from(4));
        dl.retract_atom(0);
        // Pin x - y to 4 through bounds, then assert the disequality.
        dl.assert_atom(1, true);
        dl.assert_atom(2, true);
        assert!(unlimited(&mut dl).is_ok());
        dl.assert_atom(0, false); // x - y ≠ 4
        let core = unlimited(&mut dl).expect_err("pinned disequality");
        let mut sorted = core;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert_eq!(dl.explain_conflict().expect("latched").kind, "pinned-diseq");
        dl.retract_atom(2);
        assert!(unlimited(&mut dl).is_ok());
    }

    /// Push/pop must restore the exact assertion state, including across
    /// polarity flips and conflicts inside the frame.
    #[test]
    fn push_pop_restores_exact_state() {
        let atoms: Vec<LinearAtom> = vec![
            (vec![(0, 1), (1, -1)], false, -1), // x - y <= -1
            (vec![(1, 1), (0, -1)], false, -1), // y - x <= -1
            (vec![(0, 1)], false, 10),          // x <= 10
        ];
        let mut dl = DifferenceLogic::new(2, &atoms);
        dl.assert_atom(0, true);
        dl.assert_atom(2, true);
        assert!(unlimited(&mut dl).is_ok());
        dl.push();
        dl.assert_atom(1, true); // completes the negative cycle
        dl.assert_atom(2, false); // and flips x <= 10 to x >= 11
        assert!(unlimited(&mut dl).is_err());
        dl.pop();
        assert_eq!(dl.polarity(0), Some(true));
        assert_eq!(dl.polarity(1), None);
        assert_eq!(dl.polarity(2), Some(true));
        assert!(unlimited(&mut dl).is_ok());
        assert!(dl.model()[0] <= BigInt::from(10));
        // Nested frames unwind independently.
        dl.push();
        dl.retract_atom(0);
        dl.push();
        dl.assert_atom(1, true);
        dl.pop();
        assert_eq!(dl.polarity(1), None);
        assert_eq!(dl.polarity(0), None);
        dl.pop();
        assert_eq!(dl.polarity(0), Some(true));
        assert!(unlimited(&mut dl).is_ok());
    }

    /// The budget surfaces as `None` and leaves the engine re-checkable.
    #[test]
    fn budget_exhaustion_is_recoverable() {
        let n = 40usize;
        let mut atoms: Vec<LinearAtom> = Vec::new();
        for i in 0..n - 1 {
            atoms.push((vec![(i, 1), (i + 1, -1)], false, -1)); // x_i < x_{i+1}
        }
        atoms.push((vec![(n - 1, 1), (0, -1)], false, -1)); // wrap: negative cycle
        let mut dl = DifferenceLogic::new(n, &atoms);
        for i in 0..atoms.len() {
            dl.assert_atom(i, true);
        }
        // Force the full revalidation path with a tiny budget.
        dl.dirty = true;
        dl.conflict = None;
        assert_eq!(dl.check(1, &mut || true), None, "budget must bite");
        let verdict = dl.check(u64::MAX, &mut || true).expect("budget is ample");
        assert!(verdict.is_err(), "the wrapped chain is a negative cycle");
    }

    /// Extreme bounds exercise the i128 arithmetic (negating i64::MIN-ish
    /// weights and long path sums must not wrap).
    #[test]
    fn extreme_weights_do_not_overflow() {
        let atoms: Vec<LinearAtom> = vec![
            (vec![(0, 1)], false, i64::MIN),      // x <= i64::MIN
            (vec![(0, -1)], false, i64::MIN),     // -x <= i64::MIN: x >= -i64::MIN
            (vec![(0, 1), (1, -1)], true, i64::MAX), // x - y = i64::MAX
        ];
        let mut dl = DifferenceLogic::new(2, &atoms);
        dl.assert_atom(0, true);
        dl.assert_atom(2, true);
        assert!(unlimited(&mut dl).is_ok());
        let m = dl.model();
        assert_eq!(&m[0] - &m[1], BigInt::from(i64::MAX));
        assert!(m[0] <= BigInt::from(i64::MIN));
        // x ≥ 2^63 (as -x ≤ i64::MIN) against x ≤ i64::MIN: conflict.
        dl.assert_atom(1, true);
        assert!(unlimited(&mut dl).is_err());
    }
}
