//! Persistent SMT sessions with scoped assertions — the incremental engine
//! under the CEGIS loops.
//!
//! A [`SmtSession`] keeps one CDCL SAT core, one Tseitin/atom encoding
//! cache, and one warm simplex tableau alive across queries. Assertions are
//! grouped into scopes ([`SmtSession::push`] / [`SmtSession::pop`]),
//! implemented MiniSat-style with *selector literals*: scope `k` gets a
//! fresh selector variable `s_k`, every clause asserted inside the scope is
//! guarded as `¬s_k ∨ C`, and a query solves under the assumptions
//! `s_1 … s_k` of the open scopes. Popping a scope fixes `¬s_k` at the root
//! — permanently satisfying (and, under [`ClauseGcPolicy::DropPopped`],
//! retiring) every clause guarded by it, *including* lemmas learned while
//! it was open, which carry `¬s_k` by construction.
//!
//! What persists across queries and pops:
//!
//! * learned clauses, VSIDS activities, and saved phases of the SAT core —
//!   a CEGIS re-query only pays for the delta, not a re-search;
//! * the hash-consed `Term → Lit` encoding cache and atom table (cache hits
//!   surface as the `smt.encode_cache_hits` metric);
//! * purification results: each distinct integer `ite` is lifted to a fresh
//!   variable once, with its defining side constraints asserted globally
//!   (they are definitional, so they must outlive the scope that first
//!   mentioned them);
//! * the incremental rational simplex: new variables and linear forms grow
//!   the warm tableau in place ([`IncrementalLra::add_var`] /
//!   [`IncrementalLra::add_atom`]);
//! * the static-lemma dedup set, so eager theory lemmas are emitted once.
//!
//! Certification (`cfg.certify`) works exactly as in the one-shot
//! [`SmtSolver`](crate::SmtSolver): `sat` models are re-evaluated with
//! exact integer arithmetic against the conjunction of the *active*
//! assertions, and `unsat` answers replay the DRAT trace — extended with
//! one input unit per open-scope selector, which is precisely the statement
//! "unsat under these assumptions".

use crate::drat::ProofStep;
use crate::inc_lra::LinearAtom;
use crate::solver::{
    add_static_lemmas, certify_sat_model, certify_unsat_steps, poll_budget, retry_rung_counter,
    Atom, ClauseGcPolicy, Encoder, Model, Purifier, SmtConfig, SmtError, SmtResult, TheoryChecker,
    TheoryOutcome, Validity, THEORY_PIVOT_CAP,
};
use crate::theory::{TheorySelect, TheorySolver};
use crate::{DifferenceLogic, IncrementalLra, Lit, SatResult};
use std::collections::{BTreeMap, HashSet};
use sygus_ast::trace::Stage;
use sygus_ast::{Sort, Symbol, Term};

/// One open assertion scope.
struct Scope {
    /// The selector literal assumed true while the scope is open.
    selector: Lit,
    /// Purified main terms asserted in this scope (for sat certification).
    asserted: Vec<Term>,
}

/// A persistent incremental SMT solver with `push`/`pop` assertion scopes.
///
/// # Examples
///
/// ```
/// use smtkit::{SmtConfig, SmtResult, SmtSession};
/// use sygus_ast::Term;
/// let x = Term::int_var("x");
/// let mut s = SmtSession::new(SmtConfig::default());
/// s.assert_term(&Term::ge(x.clone(), Term::int(0))).unwrap();
/// s.push();
/// s.assert_term(&Term::lt(x.clone(), Term::int(0))).unwrap();
/// assert_eq!(s.check_sat().unwrap(), SmtResult::Unsat);
/// s.pop();
/// assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
/// ```
pub struct SmtSession {
    cfg: SmtConfig,
    pur: Purifier,
    enc: Encoder,
    /// Root-scope assertions (purified) plus every purification side
    /// constraint, for sat-model certification.
    base_asserts: Vec<Term>,
    scopes: Vec<Scope>,
    /// First-come integer-variable indexing shared by all queries.
    index: BTreeMap<Symbol, usize>,
    /// Warm theory state, grown as new atoms appear. Under
    /// [`TheorySelect::Auto`] the session starts on the difference-logic
    /// engine and migrates (once, permanently) to the warm simplex the
    /// first time an atom outside the DL fragment is registered.
    inc: Box<dyn TheorySolver>,
    /// Every registered atom in registration order — the replay source for
    /// engine migration.
    lin_atoms: Vec<LinearAtom>,
    /// How many of `enc.atom_list` have been registered with `inc`.
    synced_atoms: usize,
    /// Sorted literal pairs of static lemmas already emitted.
    lemma_seen: HashSet<(Lit, Lit)>,
    /// Clauses learned during earlier checks that are still attached.
    learned_live: usize,
    /// Completed `check_sat` calls.
    checks: u64,
}

impl SmtSession {
    /// Creates a session. Bumps the `smt.sessions` metric on the budget's
    /// tracer.
    pub fn new(cfg: SmtConfig) -> SmtSession {
        cfg.budget.tracer().metrics().bump("smt.sessions");
        let inc: Box<dyn TheorySolver> = if cfg.theory == TheorySelect::Simplex {
            Box::new(IncrementalLra::new(0, &[]))
        } else {
            Box::new(DifferenceLogic::new(0, &[]))
        };
        SmtSession {
            enc: Encoder::new(cfg.certify),
            pur: Purifier::new(),
            base_asserts: Vec::new(),
            scopes: Vec::new(),
            index: BTreeMap::new(),
            inc,
            lin_atoms: Vec::new(),
            synced_atoms: 0,
            lemma_seen: HashSet::new(),
            learned_live: 0,
            checks: 0,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SmtConfig {
        &self.cfg
    }

    /// The number of open scopes.
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Opens a new assertion scope. Bumps the `smt.scopes_pushed` metric.
    pub fn push(&mut self) {
        let v = self.enc.sat.new_var();
        self.scopes.push(Scope {
            selector: Lit::pos(v),
            asserted: Vec::new(),
        });
        // Keep the theory engine's assertion frames aligned with the
        // selector scopes (the callback resync makes this redundant for
        // correctness, but it bounds the engine's trail and keeps the
        // TheorySolver contract honest for engines that rely on it).
        self.inc.push();
        self.cfg.budget.tracer().metrics().bump("smt.scopes_pushed");
    }

    /// Closes the innermost scope, discarding its assertions. The scope's
    /// selector is fixed false at the root, permanently satisfying every
    /// clause guarded by it (including lemmas learned while it was open);
    /// under [`ClauseGcPolicy::DropPopped`] those clauses are then retired
    /// from the SAT core, with matching deletions in the DRAT trace.
    ///
    /// A `pop` with no open scope is a no-op.
    pub fn pop(&mut self) {
        let Some(scope) = self.scopes.pop() else {
            return;
        };
        let dead = scope.selector.negate();
        self.enc.sat.add_clause(vec![dead]);
        self.inc.pop();
        if self.cfg.clause_gc == ClauseGcPolicy::DropPopped {
            let removed = self.enc.sat.retire_clauses_with(dead);
            self.learned_live = self.learned_live.saturating_sub(removed);
        }
    }

    /// Asserts a boolean term in the current (innermost) scope.
    ///
    /// Purification side constraints introduced here are asserted globally
    /// regardless of the current scope: they only *define* fresh variables,
    /// and the encoding cache lets a later scope reuse them.
    ///
    /// # Errors
    ///
    /// [`SmtError::Unsupported`] for non-QF_LIA input. After an error the
    /// session stays usable, but fragments of the failed term's encoding
    /// may remain cached.
    pub fn assert_term(&mut self, t: &Term) -> Result<(), SmtError> {
        if t.sort() != Sort::Bool {
            return Err(SmtError::Unsupported("assertion must be boolean".into()));
        }
        let hits_before = self.enc.cache_hits;
        let main = self.pur.purify_bool(t)?;
        let side: Vec<Term> = self.pur.side.drain(..).collect();
        for s in side {
            let l = self.enc.encode(&s)?;
            self.enc.sat.add_clause(vec![l]);
            self.base_asserts.push(s);
        }
        let l = self.enc.encode(&main)?;
        match self.scopes.last_mut() {
            None => {
                self.enc.sat.add_clause(vec![l]);
                self.base_asserts.push(main);
            }
            Some(scope) => {
                let guard = scope.selector.negate();
                scope.asserted.push(main);
                self.enc.sat.add_clause(vec![guard, l]);
            }
        }
        // New atoms may relate to old ones; emit only the fresh lemmas.
        add_static_lemmas(&mut self.enc, &mut self.lemma_seen);
        let hits = self.enc.cache_hits - hits_before;
        if hits > 0 {
            self.cfg
                .budget
                .tracer()
                .metrics()
                .add("smt.encode_cache_hits", hits);
        }
        Ok(())
    }

    /// Checks satisfiability of the active assertions (root scope plus all
    /// open scopes), with the same retry ladder, metrics, and certification
    /// contract as [`SmtSolver::check`](crate::SmtSolver::check).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmtSolver::check`](crate::SmtSolver::check).
    pub fn check_sat(&mut self) -> Result<SmtResult, SmtError> {
        self.cfg.budget.note_smt_query();
        let tracer = self.cfg.budget.tracer().clone();
        // Session queries have no single formula; the active clause count
        // is the closest "query size" for the progress line.
        tracer
            .progress()
            .note_smt_check(self.enc.sat.num_clauses() as u64);
        let span = tracer.span(Stage::Smt);
        if self.checks > 0 && self.learned_live > 0 {
            // Work carried over from earlier queries of this session.
            tracer
                .metrics()
                .add("smt.clauses_retained", self.learned_live as u64);
        }
        let clauses_before = self.enc.sat.num_clauses();
        let mut escalation: u32 = 0;
        let result = loop {
            let factor = 1u64 << (2 * escalation.min(16));
            let lia_budget = self.cfg.lia_budget.max(1).saturating_mul(factor);
            let rounds = self.cfg.max_theory_rounds.max(1).saturating_mul(factor);
            match self.check_once(lia_budget, rounds) {
                Err(SmtError::ResourceLimit(which)) => {
                    if escalation >= self.cfg.retry_escalations || self.cfg.budget.check().is_err()
                    {
                        break Err(SmtError::ResourceLimit(which));
                    }
                    escalation += 1;
                    self.cfg.budget.note_smt_retry();
                    tracer.metrics().bump(retry_rung_counter(escalation));
                }
                other => break other,
            }
        };
        // Everything added during the search (learned, blocking, and theory
        // lemma clauses) is retained for the next query.
        self.learned_live += self.enc.sat.num_clauses().saturating_sub(clauses_before);
        self.checks += 1;
        let answer = match &result {
            Ok(SmtResult::Sat(_)) => "sat",
            Ok(SmtResult::Unsat) => "unsat",
            Err(_) => "unknown",
        };
        tracer.metrics().bump(match answer {
            "sat" => "smt.sat",
            "unsat" => "smt.unsat",
            _ => "smt.unknown",
        });
        let depth = self.scopes.len();
        drop(span.with_detail(|| format!("answer={answer} rung={escalation} scopes={depth}")));
        result
    }

    /// Checks validity of `formula` given the active assertions: pushes a
    /// scope, asserts `¬formula`, checks, and pops. `Valid` means the
    /// active assertions entail `formula`; `Invalid` carries a model of the
    /// assertions falsifying it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmtSession::check_sat`].
    pub fn check_valid(&mut self, formula: &Term) -> Result<Validity, SmtError> {
        self.push();
        let result = self
            .assert_term(&Term::not(formula.clone()))
            .and_then(|()| self.check_sat());
        self.pop();
        match result? {
            SmtResult::Unsat => Ok(Validity::Valid),
            SmtResult::Sat(m) => Ok(Validity::Invalid(m)),
        }
    }

    /// Registers encoder atoms that appeared since the last check with the
    /// warm theory state, growing the engine in place. An atom outside the
    /// current engine's fragment migrates the session to the simplex engine
    /// (replaying every registered atom; asserted state is rebuilt by the
    /// callback resync on the next check).
    fn sync_theory(&mut self) {
        while self.synced_atoms < self.enc.atom_list.len() {
            let atom = self.enc.atom_list[self.synced_atoms].clone();
            for &(s, _) in &atom.coeffs {
                if !self.index.contains_key(&s) {
                    let id = self.inc.add_var();
                    debug_assert_eq!(id, self.index.len());
                    self.index.insert(s, id);
                }
            }
            let lin: LinearAtom = (
                atom.coeffs.iter().map(|&(s, c)| (self.index[&s], c)).collect(),
                atom.is_eq,
                atom.rhs,
            );
            match self.inc.add_atom(&lin) {
                Some(idx) => debug_assert_eq!(idx, self.synced_atoms),
                None => {
                    self.cfg.budget.tracer().metrics().bump("theory.dl_migrations");
                    let mut lra = IncrementalLra::new(self.index.len(), &self.lin_atoms);
                    let idx = IncrementalLra::add_atom(&mut lra, &lin);
                    debug_assert_eq!(idx, self.synced_atoms);
                    // Mirror the open selector scopes so later session pops
                    // stay paired with engine frames.
                    for _ in 0..self.scopes.len() {
                        TheorySolver::push(&mut lra);
                    }
                    self.inc = Box::new(lra);
                }
            }
            self.lin_atoms.push(lin);
            self.synced_atoms += 1;
        }
    }

    /// The conjunction certified against a sat model: all global assertions
    /// (side constraints included) plus the asserted terms of open scopes.
    fn active_formula(&self) -> Term {
        Term::and(
            self.base_asserts
                .iter()
                .chain(self.scopes.iter().flat_map(|s| s.asserted.iter()))
                .cloned(),
        )
    }

    /// One attempt of the lazy DPLL(T) loop under explicit limits — the
    /// session twin of the one-shot solver's `check_once`, driving
    /// [`crate::SatSolver::solve_under`] with the open-scope selectors as
    /// assumptions.
    fn check_once(
        &mut self,
        lia_budget: u64,
        max_theory_rounds: u64,
    ) -> Result<SmtResult, SmtError> {
        poll_budget(&self.cfg.budget)?;
        self.sync_theory();
        let active = self.active_formula();
        let assumptions: Vec<Lit> = self.scopes.iter().map(|s| s.selector).collect();

        // Split disjoint field borrows: the SAT core is driven mutably while
        // the theory callback owns the warm simplex state.
        let cfg = &self.cfg;
        let enc = &mut self.enc;
        let inc = &mut self.inc;
        let index = &self.index;

        let checker = TheoryChecker {
            index: index.clone(),
            cfg,
            lia_budget,
        };
        let min_checker = TheoryChecker {
            index: index.clone(),
            cfg,
            lia_budget: (lia_budget / 64).max(200),
        };

        let atom_vars: Vec<(u32, Atom)> = enc
            .atom_list
            .iter()
            .map(|a| (enc.atoms[a], a.clone()))
            .collect();
        // Dispatch metrics: which engine serves this check (sessions under
        // Auto start on DL and may have migrated to simplex by now).
        let use_dl = inc.name() == "dl";
        if cfg.theory != TheorySelect::Simplex && !atom_vars.is_empty() {
            cfg.budget.tracer().metrics().bump(if use_dl {
                "theory.dl_dispatched"
            } else {
                "theory.dl_fallbacks"
            });
        }
        let deadline_hit = std::cell::Cell::new(false);
        // Search-analytics accumulators (see the solver's check_once): the
        // callback is too hot for the counter mutex, so it writes cells
        // that get flushed at conflict-chunk boundaries. Sessions reuse
        // the engine across checks, so the work counter is differenced
        // from the engine's lifetime total.
        let theory_checks = std::cell::Cell::new(0u64);
        let theory_conflicts = std::cell::Cell::new(0u64);
        let theory_cert_lits = std::cell::Cell::new(0u64);
        let theory_work_seen = std::cell::Cell::new(inc.search_work());
        let theory_work_flushed = std::cell::Cell::new(inc.search_work());
        let mut theory_cb = |assign: &[Option<bool>]| -> Option<Vec<Lit>> {
            if deadline_hit.get() {
                return None;
            }
            if poll_budget(&cfg.budget).is_err() {
                deadline_hit.set(true);
                return None;
            }
            let t_theory = use_dl.then(std::time::Instant::now);
            for (i, &(v, _)) in atom_vars.iter().enumerate() {
                match assign.get(v as usize).copied().flatten() {
                    Some(b) => inc.assert_atom(i, b),
                    None => inc.retract_atom(i),
                }
            }
            let verdict = inc.check(THEORY_PIVOT_CAP, &mut || poll_budget(&cfg.budget).is_ok());
            theory_checks.set(theory_checks.get() + 1);
            theory_work_seen.set(inc.search_work());
            if let Some(t) = t_theory {
                cfg.budget
                    .tracer()
                    .metrics()
                    .stage(Stage::Dl)
                    .record_micros(t.elapsed().as_micros() as u64);
            }
            match verdict {
                None => {
                    // The eager check gave up (deadline, or a pathological
                    // pivot sequence): report no conflict and let the
                    // authoritative budgeted full-model check decide.
                    if poll_budget(&cfg.budget).is_err() {
                        deadline_hit.set(true);
                    }
                    None
                }
                Some(Ok(())) => None,
                Some(Err(core)) => {
                    theory_conflicts.set(theory_conflicts.get() + 1);
                    theory_cert_lits.set(theory_cert_lits.get() + core.len() as u64);
                    Some(
                        core.iter()
                            .map(|&i| {
                                let pol = inc.polarity(i).expect("core atoms are asserted");
                                Lit::new(atom_vars[i].0, pol)
                            })
                            .collect(),
                    )
                }
            }
        };
        let flush_theory = |m: &sygus_ast::trace::MetricsRegistry| {
            let checks = theory_checks.take();
            if checks > 0 {
                m.add("search.theory_checks_total", checks);
            }
            let conflicts = theory_conflicts.take();
            if conflicts > 0 {
                m.add("search.theory_conflicts_total", conflicts);
            }
            let lits = theory_cert_lits.take();
            if lits > 0 {
                m.add("search.theory_cert_lits_total", lits);
            }
            let delta = theory_work_seen.get() - theory_work_flushed.get();
            theory_work_flushed.set(theory_work_seen.get());
            if delta > 0 {
                let name = if use_dl {
                    "search.dl_relaxations_total"
                } else {
                    "search.simplex_pivots_total"
                };
                m.add(name, delta);
            }
        };

        let mut rounds: u64 = 0;
        loop {
            poll_budget(&cfg.budget)?;
            let _ = cfg.budget.charge_fuel(1);
            cfg.budget.tracer().metrics().bump("smt.theory_rounds");
            rounds += 1;
            if rounds > max_theory_rounds {
                return Err(SmtError::ResourceLimit("theory rounds"));
            }
            if std::env::var_os("SMTKIT_DEBUG").is_some() {
                eprintln!("[dbg] session round {rounds}: sat solve");
            }
            // Solve the propositional abstraction in conflict chunks so the
            // deadline is honored; within a chunk the conflict-stride poll
            // lets cancellation land mid-search.
            let poll_handle = cfg.budget.clone();
            let bool_model = loop {
                let step = enc.sat.solve_under_polled(
                    &assumptions,
                    Some(20_000),
                    || poll_handle.exceeded().is_none(),
                    &mut theory_cb,
                );
                // Chunk boundary: drain search intervals and theory cells
                // (terminal answers close the open tail).
                let done = step.is_some();
                crate::search::drain_search(&mut enc.sat, cfg.budget.tracer().metrics(), done);
                flush_theory(cfg.budget.tracer().metrics());
                match step {
                    Some(SatResult::Unsat) => {
                        if cfg.certify {
                            // The refutation is conditional on the open
                            // scopes: certify the trace extended with one
                            // input unit per assumed selector.
                            let mut steps = enc.sat.proof_steps().to_vec();
                            steps.extend(
                                assumptions.iter().map(|&a| ProofStep::Input(vec![a])),
                            );
                            certify_unsat_steps(cfg, &steps)?;
                        }
                        return Ok(SmtResult::Unsat);
                    }
                    Some(SatResult::Sat(m)) => break m,
                    None => poll_budget(&cfg.budget)?,
                }
            };
            let asserted: Vec<(usize, bool)> = enc
                .atom_list
                .iter()
                .enumerate()
                .map(|(i, atom)| {
                    let v = enc.atoms[atom];
                    (i, bool_model[v as usize])
                })
                .collect();
            let lits: Vec<(&Atom, bool)> = asserted
                .iter()
                .map(|&(i, pol)| (&enc.atom_list[i], pol))
                .collect();
            if std::env::var_os("SMTKIT_DEBUG").is_some() {
                eprintln!("[dbg] session round {rounds}: full theory check");
            }
            match checker.check(&lits)? {
                TheoryOutcome::Sat(point) => {
                    let mut model = Model::default();
                    for (&s, &vi) in index {
                        model.ints.insert(s, point[vi].clone());
                    }
                    for (&s, &v) in &enc.bool_vars {
                        model.bools.insert(s, bool_model[v as usize]);
                    }
                    if std::env::var_os("SMTKIT_DEBUG").is_some() {
                        eprintln!("[dbg] session round {rounds}: certify sat model");
                    }
                    certify_sat_model(cfg, &active, &model)?;
                    model.ints.retain(|s, _| !s.as_str().starts_with("ite!"));
                    return Ok(SmtResult::Sat(model));
                }
                TheoryOutcome::Unsat => {
                    if std::env::var_os("SMTKIT_DEBUG").is_some() {
                        eprintln!("[dbg] session round {rounds}: theory conflict, minimizing");
                    }
                    cfg.budget.tracer().metrics().bump("smt.conflicts");
                    cfg.budget.tracer().progress().note_smt_conflict();
                    let mut core: Vec<(usize, bool)> = asserted.clone();
                    if cfg.minimize_cores && core.len() > 1 {
                        let unsat_prefix = |k: usize| -> Result<bool, SmtError> {
                            poll_budget(&cfg.budget)?;
                            let lits: Vec<(&Atom, bool)> = asserted[..k]
                                .iter()
                                .map(|&(i, pol)| (&enc.atom_list[i], pol))
                                .collect();
                            Ok(matches!(min_checker.check(&lits), Ok(TheoryOutcome::Unsat)))
                        };
                        let (mut lo, mut hi) = (1usize, asserted.len());
                        if unsat_prefix(hi)? {
                            // synthlint: allow(unpolled-loop) — O(log n) core binary search; every probe re-checks the theory under the budget
                            while lo < hi {
                                let mid = lo + (hi - lo) / 2;
                                if unsat_prefix(mid)? {
                                    hi = mid;
                                } else {
                                    lo = mid + 1;
                                }
                            }
                            core = asserted[..lo].to_vec();
                        }
                        if core.len() <= 40 {
                            let mut i = core.len();
                            while i > 0 {
                                i -= 1;
                                poll_budget(&cfg.budget)?;
                                if core.len() <= 1 {
                                    break;
                                }
                                let mut trial = core.clone();
                                trial.remove(i);
                                let trial_lits: Vec<(&Atom, bool)> = trial
                                    .iter()
                                    .map(|&(k, pol)| (&enc.atom_list[k], pol))
                                    .collect();
                                if matches!(
                                    min_checker.check(&trial_lits),
                                    Ok(TheoryOutcome::Unsat)
                                ) {
                                    core = trial;
                                }
                            }
                        }
                    }
                    // Theory lemmas are scope-independent (they speak about
                    // atom semantics), so they are added unguarded and
                    // survive pops.
                    let clause: Vec<Lit> = core
                        .iter()
                        .map(|&(i, pol)| {
                            let v = enc.atoms[&enc.atom_list[i]];
                            Lit::new(v, pol)
                        })
                        .collect();
                    // Full-model conflicts count as theory conflicts with
                    // the blocking clause as certificate (cold path).
                    let m = cfg.budget.tracer().metrics();
                    m.add("search.theory_conflicts_total", 1);
                    m.add("search.theory_cert_lits_total", clause.len() as u64);
                    enc.sat.add_clause(clause);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SmtResult, SmtSolver};

    fn x() -> Term {
        Term::int_var("x")
    }

    fn y() -> Term {
        Term::int_var("y")
    }

    fn session() -> SmtSession {
        SmtSession::new(SmtConfig::default())
    }

    #[test]
    fn push_pop_reuses_session_across_checks() {
        let mut s = session();
        s.assert_term(&Term::ge(x(), Term::int(0))).unwrap();
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
        s.push();
        s.assert_term(&Term::lt(x(), Term::int(0))).unwrap();
        assert_eq!(s.check_sat().unwrap(), SmtResult::Unsat);
        s.pop();
        assert_eq!(s.depth(), 0);
        // Popping the contradictory scope restores satisfiability.
        match s.check_sat().unwrap() {
            SmtResult::Sat(m) => assert!(m.ints[&Symbol::from("x")] >= 0.into()),
            SmtResult::Unsat => panic!("expected sat after pop"),
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        // x + y <= 5 ∧ x >= 2 ∧ y >= 2  (sat), then additionally y >= 4 (unsat).
        let base = [
            Term::le(Term::add(x(), y()), Term::int(5)),
            Term::ge(x(), Term::int(2)),
            Term::ge(y(), Term::int(2)),
        ];
        let extra = Term::ge(y(), Term::int(4));

        let mut s = session();
        for t in &base {
            s.assert_term(t).unwrap();
        }
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
        s.push();
        s.assert_term(&extra).unwrap();
        assert_eq!(s.check_sat().unwrap(), SmtResult::Unsat);
        s.pop();
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));

        // One-shot agreement on both configurations.
        let one = SmtSolver::new();
        assert!(matches!(
            one.check(&Term::and(base.iter().cloned())).unwrap(),
            SmtResult::Sat(_)
        ));
        assert_eq!(
            one.check(&Term::and(base.iter().cloned().chain([extra])))
                .unwrap(),
            SmtResult::Unsat
        );
    }

    #[test]
    fn clauses_are_retained_across_checks() {
        let mut s = session();
        s.assert_term(&Term::le(Term::add(x(), y()), Term::int(3)))
            .unwrap();
        s.assert_term(&Term::ge(Term::sub(x(), y()), Term::int(1)))
            .unwrap();
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
        let live = s.learned_live;
        s.push();
        s.assert_term(&Term::ge(y(), Term::int(0))).unwrap();
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
        // The second check starts from the first check's clause database.
        assert!(s.learned_live >= live);
        assert_eq!(s.checks, 2);
    }

    #[test]
    fn gc_policies_agree_on_answers() {
        for policy in [ClauseGcPolicy::DropPopped, ClauseGcPolicy::RetainAll] {
            let cfg = SmtConfig::builder().clause_gc(policy).build();
            let mut s = SmtSession::new(cfg);
            s.assert_term(&Term::ge(x(), Term::int(0))).unwrap();
            for round in 0..4 {
                s.push();
                s.assert_term(&Term::eq(x(), Term::int(round))).unwrap();
                assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
                s.assert_term(&Term::lt(x(), Term::int(round))).unwrap();
                assert_eq!(s.check_sat().unwrap(), SmtResult::Unsat);
                s.pop();
            }
            assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
        }
    }

    #[test]
    fn ground_false_in_scope_recovers_after_pop() {
        let mut s = session();
        s.push();
        s.assert_term(&Term::ff()).unwrap();
        assert_eq!(s.check_sat().unwrap(), SmtResult::Unsat);
        s.pop();
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
    }

    #[test]
    fn check_valid_scopes_do_not_leak() {
        let mut s = session();
        s.assert_term(&Term::ge(x(), Term::int(0))).unwrap();
        assert_eq!(
            s.check_valid(&Term::ge(x(), Term::int(0))).unwrap(),
            Validity::Valid
        );
        match s.check_valid(&Term::ge(x(), Term::int(1))).unwrap() {
            Validity::Invalid(m) => assert_eq!(m.ints[&Symbol::from("x")], 0.into()),
            Validity::Valid => panic!("x >= 1 is not entailed"),
        }
        // The negated queries must not have polluted the session.
        assert_eq!(s.depth(), 0);
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
        assert_eq!(
            s.check_valid(&Term::ge(x(), Term::int(0))).unwrap(),
            Validity::Valid
        );
    }

    #[test]
    fn nested_scopes_unwind_in_order() {
        let mut s = session();
        s.assert_term(&Term::ge(x(), Term::int(0))).unwrap();
        s.push();
        s.assert_term(&Term::le(x(), Term::int(10))).unwrap();
        s.push();
        s.assert_term(&Term::gt(x(), Term::int(10))).unwrap();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.check_sat().unwrap(), SmtResult::Unsat);
        s.pop();
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
        s.pop();
        match s.check_sat().unwrap() {
            SmtResult::Sat(m) => assert!(m.ints[&Symbol::from("x")] >= 0.into()),
            SmtResult::Unsat => panic!("root scope is satisfiable"),
        }
    }

    #[test]
    fn purification_side_constraints_survive_pops() {
        // ite(x >= 0, x, -x) is purified once; the defining constraints must
        // keep holding after the scope that introduced the term is popped.
        let abs_x = Term::ite(
            Term::ge(x(), Term::int(0)),
            x(),
            Term::sub(Term::int(0), x()),
        );
        let mut s = session();
        s.push();
        s.assert_term(&Term::ge(abs_x.clone(), Term::int(5))).unwrap();
        assert!(matches!(s.check_sat().unwrap(), SmtResult::Sat(_)));
        s.pop();
        s.push();
        // Reuses the cached purification of abs_x.
        s.assert_term(&Term::le(abs_x, Term::int(0))).unwrap();
        match s.check_sat().unwrap() {
            SmtResult::Sat(m) => assert_eq!(m.ints[&Symbol::from("x")], 0.into()),
            SmtResult::Unsat => panic!("|x| <= 0 has the model x = 0"),
        }
        s.pop();
    }
}
