//! A general simplex solver for quantifier-free linear rational arithmetic,
//! in the style of Dutertre and de Moura's *A Fast Linear-Arithmetic Solver
//! for DPLL(T)*: variables carry optional lower/upper bounds, linear forms
//! are named by slack variables, and `check` repairs violated basic-variable
//! bounds by pivoting (with Bland's rule, so termination is guaranteed).

use crate::Rat;
use std::collections::BTreeMap;

/// Result of a simplex feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexResult {
    /// The bounds are satisfiable; query values via [`Simplex::value`].
    Sat,
    /// The bounds are unsatisfiable.
    Unsat,
}

/// Which bound of a variable participates in an infeasibility explanation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BoundSide {
    /// The lower bound.
    Lower,
    /// The upper bound.
    Upper,
}

#[derive(Clone, Debug, Default)]
struct VarState {
    lower: Option<Rat>,
    upper: Option<Rat>,
    value: Rat,
    /// Index into `rows` if basic.
    row: Option<usize>,
}

#[derive(Clone, Debug)]
struct Row {
    basic: usize,
    /// Coefficients over *nonbasic* variables.
    coeffs: BTreeMap<usize, Rat>,
}

/// A simplex tableau over rational arithmetic.
///
/// # Examples
///
/// ```
/// use smtkit::{Rat, Simplex, SimplexResult};
/// // x + y >= 4, x - y >= 2, x <= 1  — unsat
/// let mut s = Simplex::new(2);
/// let s1 = s.add_row(&[(0, Rat::from(1)), (1, Rat::from(1))]);
/// let s2 = s.add_row(&[(0, Rat::from(1)), (1, Rat::from(-1))]);
/// s.set_lower(s1, Rat::from(4));
/// s.set_lower(s2, Rat::from(2));
/// s.set_upper(0, Rat::from(1));
/// assert_eq!(s.check(), SimplexResult::Unsat);
/// ```
#[derive(Clone, Debug)]
pub struct Simplex {
    vars: Vec<VarState>,
    rows: Vec<Row>,
    /// Lifetime pivot count across every check (search analytics).
    pivots_total: u64,
}

impl Simplex {
    /// Creates a tableau with `num_vars` unconstrained problem variables
    /// (ids `0..num_vars`).
    pub fn new(num_vars: usize) -> Simplex {
        Simplex {
            vars: (0..num_vars).map(|_| VarState::default()).collect(),
            rows: Vec::new(),
            pivots_total: 0,
        }
    }

    /// Lifetime pivots performed across every check on this tableau (a
    /// monotone work measure; budget-aborted checks still count theirs).
    pub fn pivots_total(&self) -> u64 {
        self.pivots_total
    }

    /// The total number of variables (problem + slack).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Appends a fresh unconstrained variable to a (possibly warm) tableau
    /// and returns its id. The variable starts nonbasic at value zero with
    /// no bounds, so the current basis, assignment, and all existing rows
    /// are untouched — incremental sessions use this to grow the problem
    /// between checks without rebuilding the tableau.
    pub fn add_var(&mut self) -> usize {
        let v = self.vars.len();
        self.vars.push(VarState::default());
        v
    }

    /// Introduces a slack variable `s = Σ coeffs` and returns its id. The
    /// coefficient list must mention only existing variables; mentions of
    /// basic variables are substituted by their row definitions.
    pub fn add_row(&mut self, coeffs: &[(usize, Rat)]) -> usize {
        let s = self.vars.len();
        self.vars.push(VarState::default());
        // Express the row over nonbasic variables only.
        let mut flat: BTreeMap<usize, Rat> = BTreeMap::new();
        for (v, c) in coeffs {
            if c.is_zero() {
                continue;
            }
            match self.vars[*v].row {
                Some(ri) => {
                    let inner: Vec<(usize, Rat)> = self.rows[ri]
                        .coeffs
                        .iter()
                        .map(|(&k, q)| (k, q.clone()))
                        .collect();
                    for (k, q) in inner {
                        let add = c * &q;
                        let e = flat.entry(k).or_insert_with(Rat::zero);
                        *e = &*e + &add;
                    }
                }
                None => {
                    let e = flat.entry(*v).or_insert_with(Rat::zero);
                    *e = &*e + c;
                }
            }
        }
        flat.retain(|_, c| !c.is_zero());
        // β(s) = Σ c_k β(x_k)
        let mut val = Rat::zero();
        for (k, c) in &flat {
            val = &val + &(c * &self.vars[*k].value);
        }
        self.vars[s].value = val;
        self.vars[s].row = Some(self.rows.len());
        self.rows.push(Row {
            basic: s,
            coeffs: flat,
        });
        s
    }

    /// The current assignment of a variable.
    pub fn value(&self, v: usize) -> &Rat {
        &self.vars[v].value
    }

    /// Tightens the lower bound of `v` (keeps the stronger of old and new).
    pub fn set_lower(&mut self, v: usize, b: Rat) {
        let cur = &self.vars[v].lower;
        if cur.as_ref().is_none_or(|c| b > *c) {
            self.vars[v].lower = Some(b.clone());
            if self.vars[v].row.is_none() && self.vars[v].value < b {
                self.update_nonbasic(v, b);
            }
        }
    }

    /// Tightens the upper bound of `v`.
    pub fn set_upper(&mut self, v: usize, b: Rat) {
        let cur = &self.vars[v].upper;
        if cur.as_ref().is_none_or(|c| b < *c) {
            self.vars[v].upper = Some(b.clone());
            if self.vars[v].row.is_none() && self.vars[v].value > b {
                self.update_nonbasic(v, b);
            }
        }
    }

    /// Sets a nonbasic variable's value and propagates to dependent basics.
    fn update_nonbasic(&mut self, v: usize, newval: Rat) {
        let delta = &newval - &self.vars[v].value;
        if delta.is_zero() {
            return;
        }
        self.vars[v].value = newval;
        for row in &self.rows {
            if let Some(c) = row.coeffs.get(&v) {
                let b = row.basic;
                self.vars[b].value = &self.vars[b].value + &(c * &delta);
            }
        }
    }

    fn below_lower(&self, v: usize) -> bool {
        matches!(&self.vars[v].lower, Some(l) if self.vars[v].value < *l)
    }

    fn above_upper(&self, v: usize) -> bool {
        matches!(&self.vars[v].upper, Some(u) if self.vars[v].value > *u)
    }

    /// Pivot: make nonbasic `xj` basic in row `ri`, making the old basic
    /// variable nonbasic, then set the old basic variable to `target`.
    fn pivot_and_update(&mut self, ri: usize, xj: usize, target: Rat) {
        let xi = self.rows[ri].basic;
        debug_assert_eq!(
            self.vars[xi].row,
            Some(ri),
            "pivot row out of sync with its basic variable"
        );
        debug_assert!(
            self.vars[xj].row.is_none(),
            "entering variable must be nonbasic"
        );
        let aij = self.rows[ri].coeffs[&xj].clone();
        debug_assert!(!aij.is_zero(), "pivot coefficient must be nonzero");
        // θ = (target - β(xi)) / aij ; new β(xj) = β(xj) + θ
        let theta = &(&target - &self.vars[xi].value) / &aij;
        self.vars[xi].value = target;
        let new_xj_val = &self.vars[xj].value + &theta;
        self.vars[xj].value = new_xj_val;
        // Update other basic values that depend on xj.
        for (k, row) in self.rows.iter().enumerate() {
            if k == ri {
                continue;
            }
            if let Some(c) = row.coeffs.get(&xj) {
                let b = row.basic;
                self.vars[b].value = &self.vars[b].value + &(c * &theta);
            }
        }
        // Rewrite row ri: xi = Σ a_k x_k  ⇒  xj = (1/aij)·xi − Σ_{k≠j} (a_k/aij)·x_k
        let old: BTreeMap<usize, Rat> = std::mem::take(&mut self.rows[ri].coeffs);
        let inv = aij.recip();
        let mut newrow: BTreeMap<usize, Rat> = BTreeMap::new();
        newrow.insert(xi, inv.clone());
        for (k, c) in &old {
            if *k != xj {
                newrow.insert(*k, -&(&inv * c));
            }
        }
        self.rows[ri].basic = xj;
        self.rows[ri].coeffs = newrow.clone();
        self.vars[xj].row = Some(ri);
        self.vars[xi].row = None;
        // Substitute xj in all other rows.
        for k in 0..self.rows.len() {
            if k == ri {
                continue;
            }
            if let Some(c) = self.rows[k].coeffs.remove(&xj) {
                for (v, q) in &newrow {
                    let add = &c * q;
                    let e = self.rows[k].coeffs.entry(*v).or_insert_with(Rat::zero);
                    *e = &*e + &add;
                }
                self.rows[k].coeffs.retain(|_, q| !q.is_zero());
            }
        }
    }

    /// Checks feasibility of the current bounds.
    pub fn check(&mut self) -> SimplexResult {
        match self.check_explained() {
            Ok(()) => SimplexResult::Sat,
            Err(_) => SimplexResult::Unsat,
        }
    }

    /// Checks feasibility; on infeasibility returns the Farkas explanation:
    /// the set of variable bounds that jointly contradict (for a violated
    /// basic row, the basic variable's bound plus the blocking bound of
    /// every nonbasic variable in its row).
    pub fn check_explained(&mut self) -> Result<(), Vec<(usize, BoundSide)>> {
        self.check_budgeted(u64::MAX, &mut || true)
            .expect("an unlimited simplex check cannot give up")
    }

    /// [`Simplex::check_explained`] under a pivot budget: gives up (`None`)
    /// after `max_pivots` pivots, or when `poll` returns `false` (consulted
    /// every 64 pivots). Bland's rule guarantees termination, but on
    /// adversarial tableaus the rational coefficients can grow without
    /// bound, making each pivot arbitrarily expensive — this is the hook
    /// that keeps a single feasibility check from outliving the run's
    /// deadline. A `Some` answer is exact; `None` says nothing.
    pub fn check_budgeted(
        &mut self,
        max_pivots: u64,
        poll: &mut dyn FnMut() -> bool,
    ) -> Option<Result<(), Vec<(usize, BoundSide)>>> {
        // Immediately contradictory interval on any variable.
        for (v, st) in self.vars.iter().enumerate() {
            if let (Some(l), Some(u)) = (&st.lower, &st.upper) {
                if l > u {
                    return Some(Err(vec![(v, BoundSide::Lower), (v, BoundSide::Upper)]));
                }
            }
        }
        let mut pivots: u64 = 0;
        loop {
            if pivots >= max_pivots || (pivots.is_multiple_of(64) && !poll()) {
                return None;
            }
            pivots += 1;
            self.pivots_total += 1;
            // Bland's rule: smallest violated basic variable.
            let violated = self
                .rows
                .iter()
                .map(|r| r.basic)
                .filter(|&b| self.below_lower(b) || self.above_upper(b))
                .min();
            let Some(xi) = violated else {
                return Some(Ok(()));
            };
            let ri = self.vars[xi].row.expect("basic var has a row");
            if self.below_lower(xi) {
                let target = self.vars[xi].lower.clone().expect("violated lower");
                // Need to increase xi: find xj with (a>0, xj can increase) or
                // (a<0, xj can decrease); Bland: smallest xj.
                let xj = self.rows[ri]
                    .coeffs
                    .iter()
                    .filter(|(&j, c)| {
                        (c.is_positive() && !self.at_upper(j))
                            || (c.is_negative() && !self.at_lower(j))
                    })
                    .map(|(&j, _)| j)
                    .min();
                match xj {
                    Some(xj) => self.pivot_and_update(ri, xj, target),
                    None => {
                        // xi is stuck below its lower bound: every positive
                        // coefficient is at its upper bound, every negative
                        // one at its lower bound.
                        #[cfg(debug_assertions)]
                        {
                            // Farkas certificate: the row's maximum value
                            // under the blocking bounds still misses lb(xi).
                            let mut max = Rat::zero();
                            for (&j, c) in &self.rows[ri].coeffs {
                                let b = if c.is_positive() {
                                    self.vars[j].upper.clone()
                                } else {
                                    self.vars[j].lower.clone()
                                };
                                let b = b.expect("blocking bound must exist");
                                max = &max + &(c * &b);
                            }
                            let lb = self.vars[xi].lower.clone().expect("violated lower");
                            debug_assert!(
                                max < lb,
                                "lower-bound explanation is not a Farkas certificate"
                            );
                        }
                        let mut expl = vec![(xi, BoundSide::Lower)];
                        for (&j, c) in &self.rows[ri].coeffs {
                            expl.push((
                                j,
                                if c.is_positive() {
                                    BoundSide::Upper
                                } else {
                                    BoundSide::Lower
                                },
                            ));
                        }
                        return Some(Err(expl));
                    }
                }
            } else {
                let target = self.vars[xi].upper.clone().expect("violated upper");
                let xj = self.rows[ri]
                    .coeffs
                    .iter()
                    .filter(|(&j, c)| {
                        (c.is_positive() && !self.at_lower(j))
                            || (c.is_negative() && !self.at_upper(j))
                    })
                    .map(|(&j, _)| j)
                    .min();
                match xj {
                    Some(xj) => self.pivot_and_update(ri, xj, target),
                    None => {
                        #[cfg(debug_assertions)]
                        {
                            // Dual certificate: the row's minimum value under
                            // the blocking bounds still exceeds ub(xi).
                            let mut min = Rat::zero();
                            for (&j, c) in &self.rows[ri].coeffs {
                                let b = if c.is_positive() {
                                    self.vars[j].lower.clone()
                                } else {
                                    self.vars[j].upper.clone()
                                };
                                let b = b.expect("blocking bound must exist");
                                min = &min + &(c * &b);
                            }
                            let ub = self.vars[xi].upper.clone().expect("violated upper");
                            debug_assert!(
                                min > ub,
                                "upper-bound explanation is not a Farkas certificate"
                            );
                        }
                        let mut expl = vec![(xi, BoundSide::Upper)];
                        for (&j, c) in &self.rows[ri].coeffs {
                            expl.push((
                                j,
                                if c.is_positive() {
                                    BoundSide::Lower
                                } else {
                                    BoundSide::Upper
                                },
                            ));
                        }
                        return Some(Err(expl));
                    }
                }
            }
        }
    }

    /// The current bounds of `v`.
    pub fn bounds(&self, v: usize) -> (Option<&Rat>, Option<&Rat>) {
        (self.vars[v].lower.as_ref(), self.vars[v].upper.as_ref())
    }

    /// Overwrites the bounds of `v` without feasibility repair. Intended
    /// for *loosening* during backtracking: any assignment feasible for
    /// tighter bounds stays feasible for looser ones. Tightening through
    /// this method leaves the assignment possibly violating the new bound
    /// until the next [`Simplex::check`].
    pub fn set_bounds_raw(&mut self, v: usize, lower: Option<Rat>, upper: Option<Rat>) {
        self.vars[v].lower = lower;
        self.vars[v].upper = upper;
    }

    fn at_upper(&self, v: usize) -> bool {
        matches!(&self.vars[v].upper, Some(u) if self.vars[v].value >= *u)
    }

    fn at_lower(&self, v: usize) -> bool {
        matches!(&self.vars[v].lower, Some(l) if self.vars[v].value <= *l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rat {
        Rat::from(n)
    }

    fn rq(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    #[test]
    fn unconstrained_is_sat() {
        let mut s = Simplex::new(3);
        assert_eq!(s.check(), SimplexResult::Sat);
    }

    #[test]
    fn single_bounds() {
        let mut s = Simplex::new(1);
        s.set_lower(0, r(3));
        s.set_upper(0, r(5));
        assert_eq!(s.check(), SimplexResult::Sat);
        let v = s.value(0).clone();
        assert!(v >= r(3) && v <= r(5));
    }

    #[test]
    fn contradictory_interval() {
        let mut s = Simplex::new(1);
        s.set_lower(0, r(5));
        s.set_upper(0, r(3));
        assert_eq!(s.check(), SimplexResult::Unsat);
    }

    #[test]
    fn system_sat_with_witness() {
        // x + y <= 10, x >= 3, y >= 4
        let mut s = Simplex::new(2);
        let sum = s.add_row(&[(0, r(1)), (1, r(1))]);
        s.set_upper(sum, r(10));
        s.set_lower(0, r(3));
        s.set_lower(1, r(4));
        assert_eq!(s.check(), SimplexResult::Sat);
        let x = s.value(0).clone();
        let y = s.value(1).clone();
        assert!(x >= r(3));
        assert!(y >= r(4));
        assert!(&x + &y <= r(10));
        // slack equals the sum
        assert_eq!(s.value(sum), &(&x + &y));
    }

    #[test]
    fn system_unsat() {
        // x + y >= 4, x - y >= 2, x <= 1
        let mut s = Simplex::new(2);
        let p = s.add_row(&[(0, r(1)), (1, r(1))]);
        let q = s.add_row(&[(0, r(1)), (1, r(-1))]);
        s.set_lower(p, r(4));
        s.set_lower(q, r(2));
        s.set_upper(0, r(1));
        assert_eq!(s.check(), SimplexResult::Unsat);
    }

    #[test]
    fn pivot_budget_gives_up_instead_of_answering() {
        // The same system as `system_sat_with_witness`, which needs pivots
        // to repair: a zero-pivot budget must give up, not guess.
        let mut s = Simplex::new(2);
        let sum = s.add_row(&[(0, r(1)), (1, r(1))]);
        s.set_upper(sum, r(10));
        s.set_lower(0, r(3));
        s.set_lower(1, r(4));
        assert!(s.check_budgeted(0, &mut || true).is_none());
        // A cancelled poll gives up the same way.
        assert!(s.check_budgeted(u64::MAX, &mut || false).is_none());
        // With headroom the answer is exact and matches the unlimited path.
        assert_eq!(
            s.check_budgeted(u64::MAX, &mut || true),
            Some(Ok(()))
        );
    }

    #[test]
    fn equalities_via_two_bounds() {
        // x + 2y = 7, x - y = 1 → x = 3, y = 2
        let mut s = Simplex::new(2);
        let a = s.add_row(&[(0, r(1)), (1, r(2))]);
        let b = s.add_row(&[(0, r(1)), (1, r(-1))]);
        s.set_lower(a, r(7));
        s.set_upper(a, r(7));
        s.set_lower(b, r(1));
        s.set_upper(b, r(1));
        assert_eq!(s.check(), SimplexResult::Sat);
        assert_eq!(s.value(0), &r(3));
        assert_eq!(s.value(1), &r(2));
    }

    #[test]
    fn rational_solution() {
        // 2x = 1 → x = 1/2
        let mut s = Simplex::new(1);
        let a = s.add_row(&[(0, r(2))]);
        s.set_lower(a, r(1));
        s.set_upper(a, r(1));
        assert_eq!(s.check(), SimplexResult::Sat);
        assert_eq!(s.value(0), &rq(1, 2));
    }

    #[test]
    fn incremental_tightening_to_unsat() {
        let mut s = Simplex::new(2);
        let d = s.add_row(&[(0, r(1)), (1, r(-1))]);
        s.set_lower(d, r(0)); // x >= y
        assert_eq!(s.check(), SimplexResult::Sat);
        s.set_lower(1, r(10)); // y >= 10
        s.set_upper(0, r(5)); // x <= 5
        assert_eq!(s.check(), SimplexResult::Unsat);
    }

    #[test]
    fn row_mentioning_basic_var() {
        // Build s1 = x + y, make it basic via checking, then s2 = s1 + x must
        // still behave as 2x + y.
        let mut s = Simplex::new(2);
        let s1 = s.add_row(&[(0, r(1)), (1, r(1))]);
        s.set_lower(s1, r(2));
        assert_eq!(s.check(), SimplexResult::Sat);
        let s2 = s.add_row(&[(s1, r(1)), (0, r(1))]);
        s.set_upper(s2, r(3));
        s.set_lower(0, r(1));
        s.set_lower(1, r(1));
        assert_eq!(s.check(), SimplexResult::Sat);
        let x = s.value(0).clone();
        let y = s.value(1).clone();
        let two_x_plus_y = &(&x + &x) + &y;
        assert!(two_x_plus_y <= r(3));
        assert!(&x + &y >= r(2));
    }

    #[test]
    fn degenerate_zero_row() {
        // s = 0·x: the slack is constantly 0; bound 1 ≤ s is unsat.
        let mut s = Simplex::new(1);
        let z = s.add_row(&[]);
        s.set_lower(z, r(1));
        assert_eq!(s.check(), SimplexResult::Unsat);
    }

    #[test]
    fn many_constraints_feasible() {
        // Chain: x0 <= x1 <= ... <= x5, x0 >= 0, x5 <= 3
        let n = 6;
        let mut s = Simplex::new(n);
        for i in 0..n - 1 {
            let d = s.add_row(&[(i + 1, r(1)), (i, r(-1))]);
            s.set_lower(d, r(0));
        }
        s.set_lower(0, r(0));
        s.set_upper(n - 1, r(3));
        assert_eq!(s.check(), SimplexResult::Sat);
        for i in 0..n - 1 {
            assert!(s.value(i) <= s.value(i + 1), "chain order at {i}");
        }
    }
}
