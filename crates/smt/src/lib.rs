//! `smtkit`: a from-scratch SMT solver for quantifier-free conditional
//! linear integer arithmetic (QF_LIA), serving as the "background decision
//! procedure" (Definition 2.2) of the DryadSynth reproduction.
//!
//! Layers, bottom-up:
//!
//! * [`BigInt`] / [`Rat`]: exact arbitrary-precision arithmetic;
//! * [`SatSolver`]: a CDCL SAT core;
//! * [`Simplex`]: general simplex over the rationals;
//! * [`check_lia`]: branch-and-bound integer feasibility;
//! * [`SmtSolver`]: the lazy DPLL(T) loop tying it together, with a
//!   [`Term`](sygus_ast::Term)-level API: satisfiability checking with model
//!   extraction and validity checking with counterexamples;
//! * [`SmtSession`]: a persistent solver with `push`/`pop` assertion scopes
//!   that retains learned clauses, the encoding cache, and the warm simplex
//!   tableau across queries — the incremental engine under the CEGIS loops.

#![warn(missing_docs)]

mod bigint;
mod dl;
pub mod drat;
mod inc_lra;
mod lia;
mod rat;
mod sat;
pub mod search;
mod session;
mod simplex;
mod solver;
pub mod theory;

pub use bigint::BigInt;
pub use dl::DifferenceLogic;
pub use drat::{check_refutation, drat_text, model_satisfies, DratError, DratStats, ProofStep};
pub use inc_lra::{IncrementalLra, LinearAtom};
pub use lia::{check_lia, check_lia_polled, LiaResult, LinCon, Rel};
pub use rat::Rat;
pub use sat::{
    Lit, RestartEpisode, SatResult, SatSolver, SearchInterval, Var, SEARCH_SAMPLE_CONFLICTS,
};
pub use search::drain_search;
pub use session::SmtSession;
pub use simplex::{BoundSide, Simplex, SimplexResult};
pub use solver::{
    ClauseGcPolicy, Model, SmtConfig, SmtConfigBuilder, SmtError, SmtResult, SmtSolver, Validity,
};
pub use theory::{
    fits_dl, process_default_theory, set_process_default_theory, TheoryCertificate, TheorySelect,
    TheorySolver,
};
// The shared resource-governance handle (defined next to the AST so every
// layer can use it without a dependency cycle).
pub use sygus_ast::runtime::{Budget, BudgetError};
