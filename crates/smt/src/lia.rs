//! Linear *integer* arithmetic feasibility: branch-and-bound on top of the
//! rational simplex.

use crate::{BigInt, Rat, Simplex};
use std::fmt;

/// Relation of a linear constraint `Σ cᵢ·xᵢ ⋈ rhs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

/// A linear integer constraint `Σ coeffs ⋈ rhs` over variables `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinCon {
    /// `(variable, coefficient)` pairs; variables may repeat (summed).
    pub coeffs: Vec<(usize, BigInt)>,
    /// The relation.
    pub rel: Rel,
    /// The right-hand side.
    pub rhs: BigInt,
}

impl LinCon {
    /// Builds a constraint from `i64` parts (convenience for tests and
    /// encoders).
    pub fn new(coeffs: &[(usize, i64)], rel: Rel, rhs: i64) -> LinCon {
        LinCon {
            coeffs: coeffs.iter().map(|&(v, c)| (v, BigInt::from(c))).collect(),
            rel,
            rhs: BigInt::from(rhs),
        }
    }

    /// Evaluates the constraint on an integer point.
    pub fn holds_on(&self, point: &[BigInt]) -> bool {
        let mut sum = BigInt::zero();
        for (v, c) in &self.coeffs {
            sum += &(c * &point[*v]);
        }
        match self.rel {
            Rel::Le => sum <= self.rhs,
            Rel::Ge => sum >= self.rhs,
            Rel::Eq => sum == self.rhs,
        }
    }
}

impl fmt::Display for LinCon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (v, c)) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}·x{v}")?;
        }
        let rel = match self.rel {
            Rel::Le => "<=",
            Rel::Ge => ">=",
            Rel::Eq => "=",
        };
        write!(f, " {rel} {}", self.rhs)
    }
}

/// Result of an integer feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiaResult {
    /// Satisfiable with the given integer point (indexed by variable).
    Sat(Vec<BigInt>),
    /// Unsatisfiable.
    Unsat,
    /// The node budget ran out before a decision was reached.
    Unknown,
}

/// Checks integer feasibility of `constraints` over variables `0..num_vars`
/// by branch-and-bound, exploring at most `node_budget` subproblems.
///
/// Returns [`LiaResult::Unknown`] only when the budget is exhausted; `Sat`
/// and `Unsat` answers are exact.
///
/// # Examples
///
/// ```
/// use smtkit::{check_lia, LiaResult, LinCon, Rel};
/// // 2x = 2y + 1 has no integer solution.
/// let cons = vec![LinCon::new(&[(0, 2), (1, -2)], Rel::Eq, 1)];
/// assert_eq!(check_lia(2, &cons, 1000), LiaResult::Unsat);
/// ```
pub fn check_lia(num_vars: usize, constraints: &[LinCon], node_budget: u64) -> LiaResult {
    check_lia_polled(num_vars, constraints, node_budget, &mut || true)
}

/// Per-node cap on simplex pivots during branch-and-bound. Node repair
/// normally takes a handful of pivots; the cap only fires on adversarial
/// tableaus with exploding rational coefficients, where a node is answered
/// `Unknown` instead of pivoting for minutes.
const NODE_PIVOT_CAP: u64 = 20_000;

/// [`check_lia`] with a cancellation hook: `poll` is consulted between
/// branch-and-bound nodes and periodically inside each node's simplex
/// repair; returning `false` makes the remaining search answer
/// [`LiaResult::Unknown`]. `Sat`/`Unsat` answers remain exact.
pub fn check_lia_polled(
    num_vars: usize,
    constraints: &[LinCon],
    node_budget: u64,
    poll: &mut dyn FnMut() -> bool,
) -> LiaResult {
    // GCD tightening: merge repeated variables, divide by the coefficient
    // gcd, and round the right-hand side toward feasibility. This both cuts
    // off rational-only solutions (e.g. `2x - 2y = 1` becomes unsat
    // immediately) and keeps branch-and-bound from chasing them forever.
    let mut tightened: Vec<LinCon> = Vec::with_capacity(constraints.len());
    for con in constraints {
        let mut merged: std::collections::BTreeMap<usize, BigInt> = Default::default();
        for (v, c) in &con.coeffs {
            let e = merged.entry(*v).or_default();
            *e += c;
        }
        merged.retain(|_, c| !c.is_zero());
        if merged.is_empty() {
            // Ground constraint: 0 ⋈ rhs.
            let holds = match con.rel {
                Rel::Le => BigInt::zero() <= con.rhs,
                Rel::Ge => BigInt::zero() >= con.rhs,
                Rel::Eq => con.rhs.is_zero(),
            };
            if holds {
                continue;
            }
            return LiaResult::Unsat;
        }
        let mut g = BigInt::zero();
        for c in merged.values() {
            g = g.gcd(c);
        }
        let rhs = if g == BigInt::one() {
            con.rhs.clone()
        } else {
            match con.rel {
                Rel::Le => con.rhs.div_floor(&g),
                Rel::Ge => con.rhs.div_ceil(&g),
                Rel::Eq => {
                    let (q, r) = con.rhs.div_rem(&g);
                    if !r.is_zero() {
                        return LiaResult::Unsat;
                    }
                    q
                }
            }
        };
        tightened.push(LinCon {
            coeffs: merged.into_iter().map(|(v, c)| (v, &c / &g)).collect(),
            rel: con.rel,
            rhs,
        });
    }
    // Fuse complementary bounds into equalities: `e ≥ r` and `e ≤ r` on
    // the same linear form become `e = r`, which unlocks the equality
    // reduction below (and detects empty windows early).
    let tightened = fuse_bounds(tightened);

    // Gaussian elimination of equalities with a ±1 coefficient: every
    // purification variable (v = e) disappears here, which shrinks the
    // branch-and-bound search space dramatically and removes the usual
    // sources of fractional wandering.
    let (tightened, subs, num_vars) = reduce_equalities(tightened, num_vars, poll);
    // Re-run ground/gcd checks on the substituted system.
    let mut cleaned: Vec<LinCon> = Vec::with_capacity(tightened.len());
    for con in &tightened {
        let mut merged: std::collections::BTreeMap<usize, BigInt> = Default::default();
        for (v, c) in &con.coeffs {
            let e = merged.entry(*v).or_default();
            *e += c;
        }
        merged.retain(|_, c| !c.is_zero());
        if merged.is_empty() {
            let holds = match con.rel {
                Rel::Le => BigInt::zero() <= con.rhs,
                Rel::Ge => BigInt::zero() >= con.rhs,
                Rel::Eq => con.rhs.is_zero(),
            };
            if holds {
                continue;
            }
            return LiaResult::Unsat;
        }
        cleaned.push(LinCon {
            coeffs: merged.into_iter().collect(),
            rel: con.rel,
            rhs: con.rhs.clone(),
        });
    }
    let tightened = cleaned;

    // Build the base tableau once; branching clones it and adds a single
    // bound, so each node is repaired with a few dual-simplex pivots
    // instead of re-solved from scratch.
    let mut sx = Simplex::new(num_vars);
    for con in &tightened {
        let coeffs: Vec<(usize, Rat)> = con
            .coeffs
            .iter()
            .map(|(v, c)| (*v, Rat::from(c.clone())))
            .collect();
        let slack = sx.add_row(&coeffs);
        let rhs = Rat::from(con.rhs.clone());
        match con.rel {
            Rel::Le => sx.set_upper(slack, rhs),
            Rel::Ge => sx.set_lower(slack, rhs),
            Rel::Eq => {
                sx.set_lower(slack, rhs.clone());
                sx.set_upper(slack, rhs);
            }
        }
    }
    let mut budget = node_budget;
    match branch(num_vars, sx, &mut budget, 0, poll) {
        LiaResult::Sat(mut point) => {
            // Reconstruct eliminated variables in reverse order.
            for (v, coeffs, konst) in subs.iter().rev() {
                let mut val = konst.clone();
                for (w, c) in coeffs {
                    val += &(c * &point[*w]);
                }
                point[*v] = val;
            }
            // A `Sat` answer is a certificate: after reconstructing the
            // eliminated variables, the point must satisfy every original
            // (pre-tightening) constraint exactly.
            debug_assert!(
                constraints.iter().all(|c| c.holds_on(&point)),
                "branch-and-bound returned a point violating an input constraint"
            );
            LiaResult::Sat(point)
        }
        other => other,
    }
}

/// Canonicalizes each constraint to a sign-normalized linear form and fuses
/// per-form bounds: the tightest lower and upper bound survive; a closed
/// window of width zero becomes an equality.
fn fuse_bounds(cons: Vec<LinCon>) -> Vec<LinCon> {
    use std::collections::BTreeMap;
    type Form = Vec<(usize, BigInt)>;
    // form → (best lower, best upper, equalities' rhs list)
    type Window = (Option<BigInt>, Option<BigInt>, Vec<BigInt>);
    let mut forms: BTreeMap<Form, Window> = BTreeMap::new();
    for con in cons {
        let mut merged: BTreeMap<usize, BigInt> = BTreeMap::new();
        for (v, c) in &con.coeffs {
            let e = merged.entry(*v).or_default();
            *e += c;
        }
        merged.retain(|_, c| !c.is_zero());
        let mut form: Form = merged.into_iter().collect();
        let mut rel = con.rel;
        let mut rhs = con.rhs.clone();
        // Sign-normalize: first coefficient positive.
        if form.first().is_some_and(|(_, c)| c.is_negative()) {
            for (_, c) in form.iter_mut() {
                *c = -&*c;
            }
            rhs = -&rhs;
            rel = match rel {
                Rel::Le => Rel::Ge,
                Rel::Ge => Rel::Le,
                Rel::Eq => Rel::Eq,
            };
        }
        let entry = forms.entry(form).or_insert((None, None, Vec::new()));
        match rel {
            Rel::Ge => {
                if entry.0.as_ref().is_none_or(|b| rhs > *b) {
                    entry.0 = Some(rhs);
                }
            }
            Rel::Le => {
                if entry.1.as_ref().is_none_or(|b| rhs < *b) {
                    entry.1 = Some(rhs);
                }
            }
            Rel::Eq => entry.2.push(rhs),
        }
    }
    let mut out = Vec::new();
    for (form, (lower, upper, eqs)) in forms {
        for r in &eqs {
            out.push(LinCon {
                coeffs: form.clone(),
                rel: Rel::Eq,
                rhs: r.clone(),
            });
        }
        match (&lower, &upper) {
            (Some(l), Some(u)) if l == u => {
                out.push(LinCon {
                    coeffs: form.clone(),
                    rel: Rel::Eq,
                    rhs: l.clone(),
                });
                continue;
            }
            _ => {}
        }
        if let Some(l) = lower {
            out.push(LinCon {
                coeffs: form.clone(),
                rel: Rel::Ge,
                rhs: l,
            });
        }
        if let Some(u) = upper {
            out.push(LinCon {
                coeffs: form.clone(),
                rel: Rel::Le,
                rhs: u,
            });
        }
    }
    out
}

/// Integer equality reduction (omega-test style). Two moves, applied to
/// fixpoint:
///
/// 1. an equality with a ±1 coefficient defines that variable — substitute
///    it away;
/// 2. an equality whose first two variables have coefficients `a, b`
///    (neither ±1) is reparametrized through the extended gcd: with
///    `a·s + b·t = g`, substituting `x := s·w + (b/g)·u` and
///    `y := t·w − (a/g)·u` (fresh `w, u`) turns `a·x + b·y` into `g·w`,
///    shrinking the equality by one variable per step.
///
/// Returns the reduced system, the substitutions `(var, coeffs, const)` in
/// elimination order (later entries may reference fresh variables), and the
/// new variable count.
/// Bit-length ceiling on the coefficients produced by equality reduction.
/// Repeated extended-gcd substitutions can square coefficient sizes per
/// step; past this cap each further step costs more than the elimination
/// saves, so reduction stops and the remaining equalities are left for
/// branch-and-bound (which handles them soundly, just more slowly).
const REDUCE_COEFF_BIT_CAP: usize = 512;

#[allow(clippy::type_complexity)]
fn reduce_equalities(
    mut cons: Vec<LinCon>,
    mut num_vars: usize,
    poll: &mut dyn FnMut() -> bool,
) -> (
    Vec<LinCon>,
    Vec<(usize, Vec<(usize, BigInt)>, BigInt)>,
    usize,
) {
    let mut subs: Vec<(usize, Vec<(usize, BigInt)>, BigInt)> = Vec::new();
    // Pair reparametrizations can widen *other* equalities (they introduce
    // two fresh variables), so the loop has no simple termination measure;
    // cap the total step count outright.
    let mut steps_left = 16 + 8 * cons.len();
    // Keep every constraint's coefficient list merged (no duplicate
    // variables) so the ±1 test below sees true coefficients.
    fn merge_coeffs(con: &mut LinCon) {
        let mut m: std::collections::BTreeMap<usize, BigInt> = Default::default();
        for (v, c) in &con.coeffs {
            let e = m.entry(*v).or_default();
            *e += c;
        }
        m.retain(|_, c| !c.is_zero());
        con.coeffs = m.into_iter().collect();
    }
    for con in cons.iter_mut() {
        merge_coeffs(con);
    }
    loop {
        // Stopping early is always sound — unsubstituted equalities simply
        // stay in the system — so bail once the coefficients blow past the
        // bit cap (the substitution products grow multiplicatively) or the
        // caller's budget is gone.
        let oversized = cons.iter().any(|c| {
            c.rhs.bits() > REDUCE_COEFF_BIT_CAP
                || c.coeffs.iter().any(|(_, k)| k.bits() > REDUCE_COEFF_BIT_CAP)
        });
        if oversized || steps_left == 0 || !poll() {
            break;
        }
        steps_left -= 1;
        // Find an equality with a ±1 coefficient.
        let Some((ci, var, positive)) = cons.iter().enumerate().find_map(|(ci, c)| {
            if c.rel != Rel::Eq {
                return None;
            }
            c.coeffs.iter().find_map(|(v, k)| {
                if *k == BigInt::one() {
                    Some((ci, *v, true))
                } else if *k == -&BigInt::one() {
                    Some((ci, *v, false))
                } else {
                    None
                }
            })
        }) else {
            // No unit coefficient anywhere: try the extended-gcd pair
            // reparametrization on some multi-variable equality.
            if !reduce_one_pair(&mut cons, &mut subs, &mut num_vars) {
                break;
            }
            for con in cons.iter_mut() {
                merge_coeffs(con);
            }
            continue;
        };
        let eq = cons.remove(ci);
        // var = rhs' − Σ other coeffs  (sign-adjusted when coeff was −1):
        //   +v + Σ a·x = r  ⇒  v = r − Σ a·x
        //   −v + Σ a·x = r  ⇒  v = Σ a·x − r
        let mut expr: Vec<(usize, BigInt)> = Vec::new();
        for (w, c) in &eq.coeffs {
            if *w == var {
                continue;
            }
            let coef = if positive { -c } else { c.clone() };
            expr.push((*w, coef));
        }
        let konst = if positive { eq.rhs.clone() } else { -&eq.rhs };
        // Substitute into the remaining constraints.
        for con in cons.iter_mut() {
            let k: BigInt = con
                .coeffs
                .iter()
                .filter(|(w, _)| *w == var)
                .map(|(_, c)| c.clone())
                .fold(BigInt::zero(), |a, b| &a + &b);
            if k.is_zero() {
                continue;
            }
            con.coeffs.retain(|(w, _)| *w != var);
            for (w, c) in &expr {
                con.coeffs.push((*w, &k * c));
            }
            con.rhs = &con.rhs - &(&k * &konst);
            merge_coeffs(con);
        }
        subs.push((var, expr, konst));
    }
    (cons, subs, num_vars)
}

/// One extended-gcd step (move 2 of [`reduce_equalities`]). Returns whether
/// a reparametrization was performed.
#[allow(clippy::type_complexity)]
fn reduce_one_pair(
    cons: &mut [LinCon],
    subs: &mut Vec<(usize, Vec<(usize, BigInt)>, BigInt)>,
    num_vars: &mut usize,
) -> bool {
    let target = cons
        .iter()
        .position(|c| c.rel == Rel::Eq && c.coeffs.len() >= 2);
    let Some(ti) = target else {
        return false;
    };
    let (x, a) = cons[ti].coeffs[0].clone();
    let (y, b) = cons[ti].coeffs[1].clone();
    let (g, sc, tc) = BigInt::extended_gcd(&a, &b);
    if g.is_zero() {
        return false;
    }
    let w = *num_vars;
    let u = *num_vars + 1;
    *num_vars += 2;
    let b_g = &b / &g;
    let a_g = &a / &g;
    // x := s·w + (b/g)·u ;  y := t·w − (a/g)·u
    let x_expr = vec![(w, sc.clone()), (u, b_g.clone())];
    let y_expr = vec![(w, tc.clone()), (u, -&a_g)];
    for con in cons.iter_mut() {
        let kx: BigInt = con
            .coeffs
            .iter()
            .filter(|(v, _)| *v == x)
            .map(|(_, c)| c.clone())
            .fold(BigInt::zero(), |acc, c| &acc + &c);
        let ky: BigInt = con
            .coeffs
            .iter()
            .filter(|(v, _)| *v == y)
            .map(|(_, c)| c.clone())
            .fold(BigInt::zero(), |acc, c| &acc + &c);
        if kx.is_zero() && ky.is_zero() {
            continue;
        }
        con.coeffs.retain(|(v, _)| *v != x && *v != y);
        for (v, c) in &x_expr {
            con.coeffs.push((*v, &kx * c));
        }
        for (v, c) in &y_expr {
            con.coeffs.push((*v, &ky * c));
        }
    }
    subs.push((x, x_expr, BigInt::zero()));
    subs.push((y, y_expr, BigInt::zero()));
    true
}

/// Recursion cap for branch-and-bound: beyond this the search degrades to
/// `Unknown` instead of risking stack exhaustion.
const MAX_BRANCH_DEPTH: usize = 220;

fn branch(
    num_vars: usize,
    mut sx: Simplex,
    budget: &mut u64,
    depth: usize,
    poll: &mut dyn FnMut() -> bool,
) -> LiaResult {
    if *budget == 0 || depth > MAX_BRANCH_DEPTH || !poll() {
        return LiaResult::Unknown;
    }
    *budget -= 1;
    match sx.check_budgeted(NODE_PIVOT_CAP, poll) {
        None => return LiaResult::Unknown,
        Some(Err(_)) => return LiaResult::Unsat,
        Some(Ok(())) => {}
    }
    let relax: Vec<Rat> = (0..num_vars).map(|v| sx.value(v).clone()).collect();
    // Find a fractional variable.
    let frac = relax.iter().position(|q| !q.is_integer());
    match frac {
        None => LiaResult::Sat(relax.into_iter().map(|q| q.floor()).collect()),
        Some(v) => {
            let fl = relax[v].floor();
            let ce = relax[v].ceil();
            // Left branch: v <= floor (clone keeps the repaired tableau).
            let mut left_sx = sx.clone();
            left_sx.set_upper(v, Rat::from(fl));
            match branch(num_vars, left_sx, budget, depth + 1, poll) {
                LiaResult::Sat(m) => return LiaResult::Sat(m),
                LiaResult::Unknown => return LiaResult::Unknown,
                LiaResult::Unsat => {}
            }
            // Right branch: v >= ceil (reuse the current tableau).
            sx.set_lower(v, Rat::from(ce));
            branch(num_vars, sx, budget, depth + 1, poll)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_i64(m: &[BigInt]) -> Vec<i64> {
        m.iter().map(|b| b.to_i64().expect("fits i64")).collect()
    }

    #[test]
    fn trivially_sat() {
        assert!(matches!(check_lia(2, &[], 100), LiaResult::Sat(_)));
    }

    #[test]
    fn cancelled_poll_answers_unknown() {
        let cons = vec![
            LinCon::new(&[(0, 1)], Rel::Ge, 3),
            LinCon::new(&[(0, 1)], Rel::Le, 5),
        ];
        let verdict = check_lia_polled(1, &cons, 100, &mut || false);
        assert_eq!(verdict, LiaResult::Unknown);
    }

    #[test]
    fn simple_bounds_sat() {
        let cons = vec![
            LinCon::new(&[(0, 1)], Rel::Ge, 3),
            LinCon::new(&[(0, 1)], Rel::Le, 5),
        ];
        match check_lia(1, &cons, 100) {
            LiaResult::Sat(m) => {
                let v = as_i64(&m)[0];
                assert!((3..=5).contains(&v));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn parity_unsat() {
        // 2x - 2y = 1 is rationally sat but integrally unsat.
        let cons = vec![LinCon::new(&[(0, 2), (1, -2)], Rel::Eq, 1)];
        assert_eq!(check_lia(2, &cons, 1000), LiaResult::Unsat);
    }

    #[test]
    fn fractional_forced_to_integer() {
        // 2x = 6 → x = 3
        let cons = vec![LinCon::new(&[(0, 2)], Rel::Eq, 6)];
        match check_lia(1, &cons, 100) {
            LiaResult::Sat(m) => assert_eq!(as_i64(&m), vec![3]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branch_needed() {
        // 3 <= 2x <= 5 → x = 2
        let cons = vec![
            LinCon::new(&[(0, 2)], Rel::Ge, 3),
            LinCon::new(&[(0, 2)], Rel::Le, 5),
        ];
        match check_lia(1, &cons, 100) {
            LiaResult::Sat(m) => assert_eq!(as_i64(&m), vec![2]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tight_window_unsat() {
        // 5 < 3x < 6 has no integer solution: 3x >= 6 and 3x <= 5 branches.
        let cons = vec![
            LinCon::new(&[(0, 3)], Rel::Ge, 6), // 3x >= 6 → x >= 2
            LinCon::new(&[(0, 3)], Rel::Le, 5), // 3x <= 5 → x <= 1
        ];
        assert_eq!(check_lia(1, &cons, 100), LiaResult::Unsat);
    }

    #[test]
    fn two_var_system() {
        // x + y = 7, x - y = 3 → x = 5, y = 2
        let cons = vec![
            LinCon::new(&[(0, 1), (1, 1)], Rel::Eq, 7),
            LinCon::new(&[(0, 1), (1, -1)], Rel::Eq, 3),
        ];
        match check_lia(2, &cons, 100) {
            LiaResult::Sat(m) => assert_eq!(as_i64(&m), vec![5, 2]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn knapsack_like() {
        // 3x + 5y = 14, x,y >= 0 → (3, 1)
        let cons = vec![
            LinCon::new(&[(0, 3), (1, 5)], Rel::Eq, 14),
            LinCon::new(&[(0, 1)], Rel::Ge, 0),
            LinCon::new(&[(1, 1)], Rel::Ge, 0),
        ];
        match check_lia(2, &cons, 10_000) {
            LiaResult::Sat(m) => {
                let m = as_i64(&m);
                assert_eq!(3 * m[0] + 5 * m[1], 14);
                assert!(m[0] >= 0 && m[1] >= 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn solution_satisfies_all_constraints() {
        let cons = vec![
            LinCon::new(&[(0, 7), (1, -3), (2, 1)], Rel::Le, 11),
            LinCon::new(&[(0, 1), (1, 1), (2, 1)], Rel::Ge, 5),
            LinCon::new(&[(0, 2), (1, 1)], Rel::Eq, 4),
            LinCon::new(&[(2, 1)], Rel::Le, 10),
            LinCon::new(&[(2, 1)], Rel::Ge, -10),
        ];
        match check_lia(3, &cons, 10_000) {
            LiaResult::Sat(m) => {
                for c in &cons {
                    assert!(c.holds_on(&m), "violated: {c}");
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repeated_variable_coefficients_merge() {
        // x + x <= 3 → x <= 1 (integers)
        let cons = vec![
            LinCon::new(&[(0, 1), (0, 1)], Rel::Le, 3),
            LinCon::new(&[(0, 1)], Rel::Ge, 1),
        ];
        match check_lia(1, &cons, 100) {
            LiaResult::Sat(m) => assert_eq!(as_i64(&m), vec![1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        let cons = vec![
            LinCon::new(&[(0, 1)], Rel::Ge, 3),
            LinCon::new(&[(0, 1)], Rel::Le, 5),
        ];
        assert_eq!(check_lia(1, &cons, 0), LiaResult::Unknown);
    }

    #[test]
    fn gcd_tightening_decides_parity_without_branching() {
        // 2x - 2y = 1 is cut off by gcd reasoning even with zero budget.
        let cons = vec![LinCon::new(&[(0, 2), (1, -2)], Rel::Eq, 1)];
        assert_eq!(check_lia(2, &cons, 0), LiaResult::Unsat);
    }

    #[test]
    fn gcd_tightening_inequalities() {
        // 3x >= 4 ∧ 3x <= 5 → x >= 2 ∧ x <= 1 → unsat, no branching needed.
        let cons = vec![
            LinCon::new(&[(0, 3)], Rel::Ge, 4),
            LinCon::new(&[(0, 3)], Rel::Le, 5),
        ];
        assert_eq!(check_lia(1, &cons, 1), LiaResult::Unsat);
    }

    #[test]
    fn ground_constraints() {
        // 0 <= -1 after merging x - x.
        let cons = vec![LinCon::new(&[(0, 1), (0, -1)], Rel::Le, -1)];
        assert_eq!(check_lia(1, &cons, 10), LiaResult::Unsat);
        let ok = vec![LinCon::new(&[(0, 1), (0, -1)], Rel::Le, 0)];
        assert!(matches!(check_lia(1, &ok, 10), LiaResult::Sat(_)));
    }

    #[test]
    fn holds_on_eval() {
        let c = LinCon::new(&[(0, 2), (1, -1)], Rel::Le, 3);
        assert!(c.holds_on(&[BigInt::from(1), BigInt::from(0)]));
        assert!(!c.holds_on(&[BigInt::from(5), BigInt::from(0)]));
    }
}

#[cfg(test)]
mod pair_reduction_tests {
    use super::*;

    #[test]
    fn non_unit_equality_pair_reduced() {
        // 3x = 2y with 1 ≤ x ≤ 4 forces x ∈ {2, 4} (x must be even).
        let cons = vec![
            LinCon::new(&[(0, 3), (1, -2)], Rel::Eq, 0),
            LinCon::new(&[(0, 1)], Rel::Ge, 1),
            LinCon::new(&[(0, 1)], Rel::Le, 4),
        ];
        match check_lia(2, &cons, 5_000) {
            LiaResult::Sat(m) => {
                for c in &cons {
                    assert!(c.holds_on(&m), "violated {c}");
                }
                let x = m[0].to_i64().unwrap();
                assert!(x == 2 || x == 4, "x = {x}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_unit_equality_infeasible_window() {
        // 3x = 2y, 1 ≤ x ≤ 1: x = 1 is odd ⇒ unsat.
        let cons = vec![
            LinCon::new(&[(0, 3), (1, -2)], Rel::Eq, 0),
            LinCon::new(&[(0, 1)], Rel::Ge, 1),
            LinCon::new(&[(0, 1)], Rel::Le, 1),
        ];
        assert_eq!(check_lia(2, &cons, 5_000), LiaResult::Unsat);
    }

    #[test]
    fn bound_pair_becomes_equality() {
        // 3x − 2y ≥ 1 and 3x − 2y ≤ 1 fuse to an equality with no integer
        // solution parity issue: 3x − 2y = 1 has x=1,y=1.
        let cons = vec![
            LinCon::new(&[(0, 3), (1, -2)], Rel::Ge, 1),
            LinCon::new(&[(0, 3), (1, -2)], Rel::Le, 1),
        ];
        match check_lia(2, &cons, 5_000) {
            LiaResult::Sat(m) => {
                for c in &cons {
                    assert!(c.holds_on(&m), "violated {c}");
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn three_var_equality_chain() {
        // 6a + 10b + 15c = 1 has integer solutions (gcd(6,10,15) = 1).
        let cons = vec![LinCon::new(&[(0, 6), (1, 10), (2, 15)], Rel::Eq, 1)];
        match check_lia(3, &cons, 20_000) {
            LiaResult::Sat(m) => {
                assert!(cons[0].holds_on(&m), "violated");
            }
            other => panic!("{other:?}"),
        }
    }
}
