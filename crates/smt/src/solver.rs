//! The term-level SMT solver: lazy DPLL(T) over the CDCL SAT core and the
//! branch-and-bound LIA theory solver.
//!
//! Pipeline: integer `ite`s are purified out of atoms with fresh variables,
//! the boolean skeleton is Tseitin-encoded with comparison atoms mapped to
//! SAT variables, and each propositional model's asserted theory literals
//! are checked by [`check_lia`]; theory conflicts come back as (greedily
//! minimized) blocking clauses.

use crate::theory::{fits_dl, TheorySelect, TheorySolver};
use crate::{check_lia_polled, BigInt, LiaResult, LinCon, Lit, Rel, SatResult, SatSolver};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Instant;
use sygus_ast::runtime::{Budget, BudgetError};
use sygus_ast::trace::Stage;
use sygus_ast::{Env, LinearExpr, Op, Sort, Symbol, Term, TermNode, Value};

/// Configuration for [`SmtSolver`].
///
/// Construct through [`SmtConfig::builder`] (or struct-update from
/// `SmtConfig::default()`). Direct exhaustive struct-literal construction
/// is **deprecated** as an API pattern: every new knob (most recently
/// [`theory`](SmtConfig::theory)) is a breaking change for such callers,
/// while builder and struct-update callers pick up defaults silently.
#[derive(Clone, Debug)]
pub struct SmtConfig {
    /// Shared resource governor: deadline, cancellation, and fuel. Queries
    /// past the deadline (or on a cancelled budget) fail with
    /// [`SmtError::Timeout`]; an exhausted fuel/memory allowance fails with
    /// [`SmtError::ResourceLimit`]. The budget also accumulates the query
    /// and retry-ladder telemetry surfaced by `--stats`.
    pub budget: Budget,
    /// Branch-and-bound node budget per theory check — the base rung of the
    /// retry ladder.
    pub lia_budget: u64,
    /// Maximum lazy-loop iterations (theory conflict rounds) — the base
    /// rung of the retry ladder.
    pub max_theory_rounds: u64,
    /// How many geometric retry-ladder escalations to take on
    /// [`SmtError::ResourceLimit`] before reporting it (each rung multiplies
    /// `lia_budget` and `max_theory_rounds` by 4). Escalation stops early
    /// when the budget itself is exhausted.
    pub retry_escalations: u32,
    /// Whether to greedily minimize theory conflicts before blocking.
    pub minimize_cores: bool,
    /// Maximum depth of lazy disequality splitting per theory check.
    pub max_diseq_split: usize,
    /// Whether to certify answers before reporting them: `unsat` is
    /// replayed through the independent DRAT/RUP checker ([`crate::drat`])
    /// and `sat` models are re-evaluated on the asserted formula with exact
    /// integer arithmetic. A failed certificate surfaces as
    /// [`SmtError::Certification`] — never as a wrong answer.
    pub certify: bool,
    /// Whether consumers that *can* keep a persistent [`crate::SmtSession`]
    /// (the CEGIS loops) should do so. Off means every query is solved from
    /// scratch — useful for A/B timing and as a bisection lever.
    pub session_reuse: bool,
    /// What a session does with clauses guarded by a popped scope.
    pub clause_gc: ClauseGcPolicy,
    /// Which theory engine serves the eager DPLL(T) partial checks:
    /// [`TheorySelect::Auto`] dispatches queries whose atoms all fit the
    /// difference-logic fragment to the specialized constraint-graph engine
    /// and everything else to the warm simplex. `Default` reads the
    /// process-wide default ([`crate::process_default_theory`]), which
    /// binaries set from `--theory`.
    pub theory: TheorySelect,
}

/// What [`crate::SmtSession::pop`] does with the clauses of the popped
/// scope (guarded inputs and lemmas learned under the scope's selector).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClauseGcPolicy {
    /// Drop them: once the selector is fixed false the clauses are
    /// permanently satisfied and only slow down propagation. Deletions are
    /// recorded in the DRAT trace.
    #[default]
    DropPopped,
    /// Keep them attached. Sound (they are satisfied, never unit) and
    /// occasionally useful for debugging trace differences, at the cost of
    /// watch-list bloat in long-running sessions.
    RetainAll,
}

impl Default for SmtConfig {
    fn default() -> SmtConfig {
        SmtConfig {
            budget: Budget::unlimited(),
            lia_budget: 12_000,
            max_theory_rounds: 100_000,
            retry_escalations: 2,
            minimize_cores: true,
            max_diseq_split: 24,
            certify: true,
            session_reuse: true,
            clause_gc: ClauseGcPolicy::DropPopped,
            theory: crate::process_default_theory(),
        }
    }
}

impl SmtConfig {
    /// Starts a builder over the default configuration, so new knobs can be
    /// added without widening positional constructors:
    /// `SmtConfig::builder().certify(true).retry_ladder(12_000, 100_000, 2).build()`.
    pub fn builder() -> SmtConfigBuilder {
        SmtConfigBuilder {
            cfg: SmtConfig::default(),
        }
    }
}

/// Builder for [`SmtConfig`]; obtained from [`SmtConfig::builder`].
#[derive(Clone, Debug)]
pub struct SmtConfigBuilder {
    cfg: SmtConfig,
}

impl SmtConfigBuilder {
    /// Sets the resource governor.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// Configures the whole retry ladder in one call: the base
    /// branch-and-bound node budget, the base theory-round cap, and how
    /// many geometric escalations to take on resource exhaustion.
    pub fn retry_ladder(mut self, lia_budget: u64, max_theory_rounds: u64, escalations: u32) -> Self {
        self.cfg.lia_budget = lia_budget;
        self.cfg.max_theory_rounds = max_theory_rounds;
        self.cfg.retry_escalations = escalations;
        self
    }

    /// Sets whether theory cores are greedily minimized before blocking.
    pub fn minimize_cores(mut self, on: bool) -> Self {
        self.cfg.minimize_cores = on;
        self
    }

    /// Sets the maximum lazy disequality-splitting depth per theory check.
    pub fn max_diseq_split(mut self, depth: usize) -> Self {
        self.cfg.max_diseq_split = depth;
        self
    }

    /// Sets whether answers are certified before being reported.
    pub fn certify(mut self, on: bool) -> Self {
        self.cfg.certify = on;
        self
    }

    /// Sets whether CEGIS consumers keep persistent sessions.
    pub fn session_reuse(mut self, on: bool) -> Self {
        self.cfg.session_reuse = on;
        self
    }

    /// Sets the popped-scope clause GC policy for sessions.
    pub fn clause_gc(mut self, policy: ClauseGcPolicy) -> Self {
        self.cfg.clause_gc = policy;
        self
    }

    /// Sets the theory-engine selection for eager partial checks. Tests
    /// that need a specific engine must use this rather than
    /// [`crate::set_process_default_theory`] (the process default is shared
    /// across threads).
    pub fn theory(mut self, sel: TheorySelect) -> Self {
        self.cfg.theory = sel;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SmtConfig {
        self.cfg
    }
}

/// An error from the SMT solver. `Sat`/`Unsat`/`Valid` answers are exact;
/// errors mean "no answer", never a wrong one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmtError {
    /// The formula uses features outside QF_LIA (e.g. uninstantiated
    /// function applications or nonlinear multiplication).
    Unsupported(String),
    /// A budget (LIA nodes, theory rounds, disequality splits) ran out.
    ResourceLimit(&'static str),
    /// The configured deadline passed.
    Timeout,
    /// An answer was produced but failed its independent certificate check
    /// (DRAT/RUP replay for `unsat`, exact model evaluation for `sat`).
    /// This indicates a solver bug; the answer is withheld.
    Certification(String),
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtError::Unsupported(what) => write!(f, "unsupported formula: {what}"),
            SmtError::ResourceLimit(which) => write!(f, "resource limit reached: {which}"),
            SmtError::Timeout => f.write_str("deadline exceeded"),
            SmtError::Certification(why) => write!(f, "answer failed certification: {why}"),
        }
    }
}

impl std::error::Error for SmtError {}

/// A first-order model: integer values for integer variables and booleans
/// for boolean variables. Variables absent from the maps are unconstrained
/// (read them as 0 / false).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    /// Integer variable assignments.
    pub ints: BTreeMap<Symbol, BigInt>,
    /// Boolean variable assignments.
    pub bools: BTreeMap<Symbol, bool>,
}

impl Model {
    /// The integer value of `v` (0 when unconstrained).
    pub fn int(&self, v: Symbol) -> BigInt {
        self.ints.get(&v).cloned().unwrap_or_default()
    }

    /// The boolean value of `v` (false when unconstrained).
    pub fn boolean(&self, v: Symbol) -> bool {
        self.bools.get(&v).copied().unwrap_or(false)
    }

    /// Converts to an evaluation [`Env`]; `None` if an integer does not fit
    /// in `i64`.
    pub fn to_env(&self) -> Option<Env> {
        let mut env = Env::new();
        for (&s, b) in &self.ints {
            env.bind(s, Value::Int(b.to_i64()?));
        }
        for (&s, &b) in &self.bools {
            env.bind(s, Value::Bool(b));
        }
        Some(env)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (s, v) in &self.ints {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{s} = {v}")?;
        }
        for (s, v) in &self.bools {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{s} = {v}")?;
        }
        write!(f, "}}")
    }
}

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmtResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

/// Result of a validity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Validity {
    /// The formula holds for all assignments.
    Valid,
    /// A counterexample assignment falsifying the formula.
    Invalid(Model),
}

/// The QF_LIA SMT solver (the paper's background decision procedure).
///
/// # Examples
///
/// ```
/// use smtkit::{SmtSolver, SmtResult, Validity};
/// use sygus_ast::Term;
/// let x = Term::int_var("x");
/// let solver = SmtSolver::new();
/// // x > 3 ∧ x < 5 has the single solution x = 4.
/// let f = Term::and([Term::gt(x.clone(), Term::int(3)), Term::lt(x.clone(), Term::int(5))]);
/// match solver.check(&f).unwrap() {
///     SmtResult::Sat(m) => assert_eq!(m.int("x".into()).to_i64(), Some(4)),
///     SmtResult::Unsat => unreachable!(),
/// }
/// // x >= x is valid.
/// assert_eq!(solver.check_valid(&Term::ge(x.clone(), x.clone())).unwrap(), Validity::Valid);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SmtSolver {
    cfg: SmtConfig,
}

// ---------------------------------------------------------------------------
// Atom canonicalization
// ---------------------------------------------------------------------------

/// Canonical integer atom: `Σ coeffs·vars ⋈ rhs` with `⋈ ∈ {≤, =}`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Atom {
    pub(crate) coeffs: Vec<(Symbol, i64)>,
    pub(crate) is_eq: bool,
    pub(crate) rhs: i64,
}

impl Atom {
    /// Positive occurrence as a [`LinCon`] over the given variable indexing.
    fn to_lincon(&self, index: &BTreeMap<Symbol, usize>) -> LinCon {
        LinCon {
            coeffs: self
                .coeffs
                .iter()
                .map(|&(s, c)| (index[&s], BigInt::from(c)))
                .collect(),
            rel: if self.is_eq { Rel::Eq } else { Rel::Le },
            rhs: BigInt::from(self.rhs),
        }
    }

    /// Negated occurrence: `¬(e ≤ r)` is `e ≥ r+1`; `¬(e = r)` has no single
    /// constraint (handled by disequality splitting), signalled by `None`.
    fn negated_lincon(&self, index: &BTreeMap<Symbol, usize>) -> Option<LinCon> {
        if self.is_eq {
            return None;
        }
        Some(LinCon {
            coeffs: self
                .coeffs
                .iter()
                .map(|&(s, c)| (index[&s], BigInt::from(c)))
                .collect(),
            rel: Rel::Ge,
            rhs: &BigInt::from(self.rhs) + &BigInt::one(),
        })
    }
}

/// Converts a comparison term into a canonical [`Atom`].
pub(crate) fn canonical_atom(op: Op, lhs: &Term, rhs: &Term) -> Result<Atom, SmtError> {
    let unsupported = |t: &Term| SmtError::Unsupported(format!("non-linear atom side: {t}"));
    let l = LinearExpr::from_term(lhs).map_err(|_| unsupported(lhs))?;
    let r = LinearExpr::from_term(rhs).map_err(|_| unsupported(rhs))?;
    let diff = l
        .checked_sub(&r)
        .map_err(|_| SmtError::Unsupported("coefficient overflow in atom".into()))?;
    let konst = diff.constant();
    // `Σ c·x + konst ⋈ 0`  ⇒  `Σ c·x ⋈ -konst` (rel and sign fixed below)
    let coeffs: Vec<(Symbol, i64)> = diff.iter().collect();
    let negate = |cs: &[(Symbol, i64)]| -> Result<Vec<(Symbol, i64)>, SmtError> {
        cs.iter()
            .map(|&(s, c)| {
                c.checked_neg()
                    .map(|n| (s, n))
                    .ok_or_else(|| SmtError::Unsupported("coefficient overflow".into()))
            })
            .collect()
    };
    let ovf = || SmtError::Unsupported("constant overflow in atom".into());
    // GCD tightening: dividing by the coefficient gcd (with floor on the
    // bound) is integer-equivalent but rationally stronger, which lets the
    // incremental rational engine catch integer conflicts early.
    fn tighten(mut atom: Atom) -> Atom {
        let mut g: i64 = 0;
        for &(_, c) in &atom.coeffs {
            g = gcd_i64(g, c);
        }
        if g > 1 {
            if atom.is_eq {
                if atom.rhs % g != 0 {
                    // Unsatisfiable equality: canonical ground-false atom.
                    return Atom {
                        coeffs: Vec::new(),
                        is_eq: true,
                        rhs: 1,
                    };
                }
                atom.rhs /= g;
            } else {
                atom.rhs = atom.rhs.div_euclid(g);
            }
            for c in &mut atom.coeffs {
                c.1 /= g;
            }
        }
        atom
    }
    fn gcd_i64(a: i64, b: i64) -> i64 {
        let (mut a, mut b) = (a.abs(), b.abs());
        // synthlint: allow(unpolled-loop) — Euclid on i64; at most ~47 iterations
        while b != 0 {
            let r = a % b;
            a = b;
            b = r;
        }
        a
    }
    let atom = match op {
        // e + konst <= 0  ⇔  e <= -konst
        Op::Le => Atom {
            coeffs,
            is_eq: false,
            rhs: konst.checked_neg().ok_or_else(ovf)?,
        },
        // e + konst < 0 over Z ⇔ e <= -konst - 1
        Op::Lt => Atom {
            coeffs,
            is_eq: false,
            rhs: konst
                .checked_neg()
                .and_then(|k| k.checked_sub(1))
                .ok_or_else(ovf)?,
        },
        // e + konst >= 0 ⇔ -e <= konst
        Op::Ge => Atom {
            coeffs: negate(&coeffs)?,
            is_eq: false,
            rhs: konst,
        },
        // e + konst > 0 ⇔ -e <= konst - 1
        Op::Gt => Atom {
            coeffs: negate(&coeffs)?,
            is_eq: false,
            rhs: konst.checked_sub(1).ok_or_else(ovf)?,
        },
        Op::Eq => Atom {
            coeffs,
            is_eq: true,
            rhs: konst.checked_neg().ok_or_else(ovf)?,
        },
        _ => unreachable!("caller checked comparison"),
    };
    Ok(tighten(atom))
}

// ---------------------------------------------------------------------------
// Purification: lift integer `ite` out of atoms
// ---------------------------------------------------------------------------

pub(crate) struct Purifier {
    pub(crate) side: Vec<Term>,
    cache: HashMap<Term, Term>,
}

impl Purifier {
    pub(crate) fn new() -> Purifier {
        Purifier {
            side: Vec::new(),
            cache: HashMap::new(),
        }
    }

    /// Rewrites an *integer* term so it contains no `ite`; encountered `ite`s
    /// become fresh variables constrained in `self.side`.
    fn purify_int(&mut self, t: &Term) -> Result<Term, SmtError> {
        if let Some(hit) = self.cache.get(t) {
            return Ok(hit.clone());
        }
        let result = match t.node() {
            TermNode::IntConst(_) | TermNode::Var(_, _) => t.clone(),
            TermNode::BoolConst(_) => {
                return Err(SmtError::Unsupported("boolean in integer position".into()))
            }
            TermNode::App(op, args) => match op {
                Op::Ite => {
                    let c = self.purify_bool(&args[0])?;
                    let a = self.purify_int(&args[1])?;
                    let b = self.purify_int(&args[2])?;
                    let fresh = Symbol::fresh("ite");
                    let v = Term::var(fresh, Sort::Int);
                    self.side
                        .push(Term::implies(c.clone(), Term::eq(v.clone(), a)));
                    self.side
                        .push(Term::implies(Term::not(c), Term::eq(v.clone(), b)));
                    v
                }
                Op::Add | Op::Sub | Op::Neg | Op::Mul => {
                    let new_args: Result<Vec<Term>, SmtError> =
                        args.iter().map(|a| self.purify_int(a)).collect();
                    Term::app(*op, new_args?)
                }
                Op::Apply(f, _) => {
                    return Err(SmtError::Unsupported(format!(
                        "uninterpreted function application `{f}`"
                    )))
                }
                _ => {
                    return Err(SmtError::Unsupported(format!(
                        "boolean operator `{op}` in integer position"
                    )))
                }
            },
        };
        self.cache.insert(t.clone(), result.clone());
        Ok(result)
    }

    /// Rewrites a boolean term, purifying the integer sides of its atoms.
    pub(crate) fn purify_bool(&mut self, t: &Term) -> Result<Term, SmtError> {
        match t.node() {
            TermNode::BoolConst(_) | TermNode::Var(_, Sort::Bool) => Ok(t.clone()),
            TermNode::Var(_, Sort::Int) | TermNode::IntConst(_) => {
                Err(SmtError::Unsupported("integer in boolean position".into()))
            }
            TermNode::App(op, args) => match op {
                Op::And | Op::Or | Op::Not | Op::Implies => {
                    let new_args: Result<Vec<Term>, SmtError> =
                        args.iter().map(|a| self.purify_bool(a)).collect();
                    Ok(Term::app(*op, new_args?))
                }
                Op::Ite => {
                    // Boolean-valued ite (condition + boolean branches).
                    let c = self.purify_bool(&args[0])?;
                    let a = self.purify_bool(&args[1])?;
                    let b = self.purify_bool(&args[2])?;
                    Ok(Term::app(Op::Ite, vec![c, a, b]))
                }
                Op::Eq if args[0].sort() == Sort::Bool => {
                    let a = self.purify_bool(&args[0])?;
                    let b = self.purify_bool(&args[1])?;
                    Ok(Term::app(Op::Eq, vec![a, b]))
                }
                Op::Eq | Op::Le | Op::Lt | Op::Ge | Op::Gt => {
                    let a = self.purify_int(&args[0])?;
                    let b = self.purify_int(&args[1])?;
                    Ok(Term::app(*op, vec![a, b]))
                }
                Op::Apply(f, _) => Err(SmtError::Unsupported(format!(
                    "uninterpreted predicate application `{f}`"
                ))),
                _ => Err(SmtError::Unsupported(format!(
                    "integer operator `{op}` in boolean position"
                ))),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Tseitin encoding
// ---------------------------------------------------------------------------

pub(crate) struct Encoder {
    pub(crate) sat: SatSolver,
    /// Canonical atom → SAT var.
    pub(crate) atoms: HashMap<Atom, u32>,
    pub(crate) atom_list: Vec<Atom>,
    pub(crate) bool_vars: HashMap<Symbol, u32>,
    cache: HashMap<Term, Lit>,
    true_lit: Lit,
    /// Term/atom encodings served from cache (the amortization a session
    /// buys; surfaced as the `smt.encode_cache_hits` metric).
    pub(crate) cache_hits: u64,
}

impl Encoder {
    pub(crate) fn new(log_proof: bool) -> Encoder {
        let mut sat = SatSolver::new();
        if log_proof {
            // Must precede the very first clause (the true-literal unit) or
            // the DRAT replay sees an incomplete database.
            sat.enable_proof();
        }
        let t = sat.new_var();
        sat.add_clause(vec![Lit::pos(t)]);
        Encoder {
            sat,
            atoms: HashMap::new(),
            atom_list: Vec::new(),
            bool_vars: HashMap::new(),
            cache: HashMap::new(),
            true_lit: Lit::pos(t),
            cache_hits: 0,
        }
    }

    fn atom_lit(&mut self, atom: Atom) -> Lit {
        if atom.coeffs.is_empty() {
            // Ground atom decided immediately.
            let holds = if atom.is_eq {
                atom.rhs == 0
            } else {
                0 <= atom.rhs
            };
            return if holds {
                self.true_lit
            } else {
                self.true_lit.negate()
            };
        }
        if let Some(&v) = self.atoms.get(&atom) {
            self.cache_hits += 1;
            return Lit::pos(v);
        }
        let v = self.sat.new_var();
        self.atoms.insert(atom.clone(), v);
        self.atom_list.push(atom);
        debug_assert_eq!(self.atom_list.len(), self.atoms.len());
        Lit::pos(v)
    }

    pub(crate) fn encode(&mut self, t: &Term) -> Result<Lit, SmtError> {
        if let Some(&l) = self.cache.get(t) {
            self.cache_hits += 1;
            return Ok(l);
        }
        let lit = match t.node() {
            TermNode::BoolConst(true) => self.true_lit,
            TermNode::BoolConst(false) => self.true_lit.negate(),
            TermNode::Var(s, Sort::Bool) => {
                let v = match self.bool_vars.get(s) {
                    Some(&v) => v,
                    None => {
                        let v = self.sat.new_var();
                        self.bool_vars.insert(*s, v);
                        v
                    }
                };
                Lit::pos(v)
            }
            TermNode::Var(_, Sort::Int) | TermNode::IntConst(_) => {
                return Err(SmtError::Unsupported(
                    "integer term in boolean position".into(),
                ))
            }
            TermNode::App(op, args) => match op {
                Op::Not => self.encode(&args[0])?.negate(),
                Op::And => {
                    let lits: Result<Vec<Lit>, SmtError> =
                        args.iter().map(|a| self.encode(a)).collect();
                    let lits = lits?;
                    let v = self.sat.new_var();
                    let vp = Lit::pos(v);
                    let mut big: Vec<Lit> = vec![vp];
                    for &l in &lits {
                        self.sat.add_clause(vec![vp.negate(), l]);
                        big.push(l.negate());
                    }
                    self.sat.add_clause(big);
                    vp
                }
                Op::Or => {
                    let lits: Result<Vec<Lit>, SmtError> =
                        args.iter().map(|a| self.encode(a)).collect();
                    let lits = lits?;
                    let v = self.sat.new_var();
                    let vp = Lit::pos(v);
                    let mut big: Vec<Lit> = vec![vp.negate()];
                    for &l in &lits {
                        self.sat.add_clause(vec![vp, l.negate()]);
                        big.push(l);
                    }
                    self.sat.add_clause(big);
                    vp
                }
                Op::Implies => {
                    let a = self.encode(&args[0])?;
                    let b = self.encode(&args[1])?;
                    let v = self.sat.new_var();
                    let vp = Lit::pos(v);
                    // v ↔ (¬a ∨ b)
                    self.sat.add_clause(vec![vp.negate(), a.negate(), b]);
                    self.sat.add_clause(vec![vp, a]);
                    self.sat.add_clause(vec![vp, b.negate()]);
                    vp
                }
                Op::Eq if args[0].sort() == Sort::Bool => {
                    let a = self.encode(&args[0])?;
                    let b = self.encode(&args[1])?;
                    let v = self.sat.new_var();
                    let vp = Lit::pos(v);
                    self.sat.add_clause(vec![vp.negate(), a.negate(), b]);
                    self.sat.add_clause(vec![vp.negate(), a, b.negate()]);
                    self.sat.add_clause(vec![vp, a, b]);
                    self.sat.add_clause(vec![vp, a.negate(), b.negate()]);
                    vp
                }
                Op::Ite => {
                    let c = self.encode(&args[0])?;
                    let a = self.encode(&args[1])?;
                    let b = self.encode(&args[2])?;
                    let v = self.sat.new_var();
                    let vp = Lit::pos(v);
                    self.sat.add_clause(vec![vp.negate(), c.negate(), a]);
                    self.sat.add_clause(vec![vp.negate(), c, b]);
                    self.sat.add_clause(vec![vp, c.negate(), a.negate()]);
                    self.sat.add_clause(vec![vp, c, b.negate()]);
                    vp
                }
                Op::Eq | Op::Le | Op::Lt | Op::Ge | Op::Gt => {
                    let atom = canonical_atom(*op, &args[0], &args[1])?;
                    self.atom_lit(atom)
                }
                other => {
                    return Err(SmtError::Unsupported(format!(
                        "operator `{other}` in boolean position"
                    )))
                }
            },
        };
        self.cache.insert(t.clone(), lit);
        Ok(lit)
    }
}

/// Static theory lemmas ("eager propagation"): relations among atoms over
/// the same (or negated) linear form are encoded as clauses up front, so
/// the SAT core never proposes the bulk of theory-inconsistent assignments
/// and the lazy loop converges in few rounds.
///
/// Every emitted lemma is *binary*, so `seen` (a set of sorted literal
/// pairs) makes re-runs incremental: a session calls this after each
/// assertion and only genuinely new lemmas reach the SAT core. One-shot
/// callers pass a fresh set.
pub(crate) fn add_static_lemmas(enc: &mut Encoder, seen: &mut std::collections::HashSet<(Lit, Lit)>) {
    use std::collections::HashMap as Map;
    // Group atoms by coefficient vector.
    let mut groups: Map<Vec<(Symbol, i64)>, Vec<usize>> = Map::new();
    for (i, atom) in enc.atom_list.iter().enumerate() {
        groups.entry(atom.coeffs.clone()).or_default().push(i);
    }
    let var_of = |enc: &Encoder, i: usize| enc.atoms[&enc.atom_list[i]];
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    for (coeffs, members) in &groups {
        // Within a group: `e ≤ r1 → e ≤ r2` for r1 ≤ r2; equality links.
        let mut les: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| !enc.atom_list[i].is_eq)
            .collect();
        les.sort_by_key(|&i| enc.atom_list[i].rhs);
        for w in les.windows(2) {
            let (a, b) = (w[0], w[1]);
            clauses.push(vec![Lit::neg(var_of(enc, a)), Lit::pos(var_of(enc, b))]);
        }
        let eqs: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| enc.atom_list[i].is_eq)
            .collect();
        for &e in &eqs {
            let er = enc.atom_list[e].rhs;
            // e = r implies the tightest e ≤ r' with r' ≥ r …
            if let Some(&above) = les.iter().find(|&&l| enc.atom_list[l].rhs >= er) {
                clauses.push(vec![Lit::neg(var_of(enc, e)), Lit::pos(var_of(enc, above))]);
            }
            // … and refutes the tightest e ≤ r' with r' < r.
            if let Some(&below) = les.iter().rev().find(|&&l| enc.atom_list[l].rhs < er) {
                clauses.push(vec![Lit::neg(var_of(enc, e)), Lit::neg(var_of(enc, below))]);
            }
            // Distinct equalities on the same form are mutually exclusive.
            for &e2 in &eqs {
                if e2 > e && enc.atom_list[e2].rhs != er {
                    clauses.push(vec![Lit::neg(var_of(enc, e)), Lit::neg(var_of(enc, e2))]);
                }
            }
        }
        // Across the negated form: `e ≤ r ∧ −e ≤ r'` needs `r + r' ≥ 0`;
        // `e = r` clashes with `−e ≤ r'` when `r < −r'`, and with
        // `−e = r'` when `r ≠ −r'`.
        let neg_coeffs: Vec<(Symbol, i64)> =
            coeffs.iter().map(|&(v, c)| (v, c.wrapping_neg())).collect();
        if neg_coeffs <= *coeffs {
            continue; // handle each pair once
        }
        let Some(opp) = groups.get(&neg_coeffs) else {
            continue;
        };
        if members.len() * opp.len() > 4096 {
            continue; // cap eager work on pathological inputs
        }
        for &i in members {
            for &j in opp {
                let (ai, aj) = (&enc.atom_list[i], &enc.atom_list[j]);
                let clash = match (ai.is_eq, aj.is_eq) {
                    (false, false) => ai.rhs.checked_add(aj.rhs).map(|s| s < 0).unwrap_or(false),
                    (true, false) => ai.rhs.checked_add(aj.rhs).map(|s| s < 0).unwrap_or(false),
                    (false, true) => aj.rhs.checked_add(ai.rhs).map(|s| s < 0).unwrap_or(false),
                    (true, true) => ai.rhs.checked_neg().map(|n| n != aj.rhs).unwrap_or(true),
                };
                if clash {
                    clauses.push(vec![Lit::neg(var_of(enc, i)), Lit::neg(var_of(enc, j))]);
                }
            }
        }
    }
    for c in clauses {
        debug_assert_eq!(c.len(), 2, "static lemmas are binary");
        let key = (c[0].min(c[1]), c[0].max(c[1]));
        if seen.insert(key) {
            enc.sat.add_clause(c);
        }
    }
}

// ---------------------------------------------------------------------------
// Theory checking
// ---------------------------------------------------------------------------

/// Outcome of checking a conjunction of theory literals.
pub(crate) enum TheoryOutcome {
    Sat(Vec<BigInt>),
    Unsat,
}

pub(crate) struct TheoryChecker<'a> {
    pub(crate) index: BTreeMap<Symbol, usize>,
    pub(crate) cfg: &'a SmtConfig,
    /// Branch-and-bound node budget (smaller during core minimization:
    /// dropping a constraint can make the integer problem vastly harder,
    /// and an Unknown there just means "keep the literal").
    pub(crate) lia_budget: u64,
}

impl TheoryChecker<'_> {
    /// Checks the conjunction of `(atom, polarity)` literals.
    pub(crate) fn check(&self, lits: &[(&Atom, bool)]) -> Result<TheoryOutcome, SmtError> {
        let mut base: Vec<LinCon> = Vec::new();
        let mut diseqs: Vec<&Atom> = Vec::new();
        for &(atom, polarity) in lits {
            if polarity {
                base.push(atom.to_lincon(&self.index));
            } else {
                match atom.negated_lincon(&self.index) {
                    Some(c) => base.push(c),
                    None => diseqs.push(atom),
                }
            }
        }
        self.split(&mut base, &diseqs)
    }

    /// Lazy disequality handling: solve the base system and branch only on
    /// disequalities the model actually violates, so a large set of mostly
    /// slack disequalities costs nothing.
    fn split(&self, base: &mut Vec<LinCon>, diseqs: &[&Atom]) -> Result<TheoryOutcome, SmtError> {
        self.split_depth(base, diseqs, 0)
    }

    fn split_depth(
        &self,
        base: &mut Vec<LinCon>,
        diseqs: &[&Atom],
        depth: usize,
    ) -> Result<TheoryOutcome, SmtError> {
        if depth > self.cfg.max_diseq_split.max(32) {
            return Err(SmtError::ResourceLimit("disequality splits"));
        }
        let mut poll = || poll_budget(&self.cfg.budget).is_ok();
        let m = match check_lia_polled(self.index.len(), base, self.lia_budget, &mut poll) {
            LiaResult::Sat(m) => m,
            LiaResult::Unsat => return Ok(TheoryOutcome::Unsat),
            LiaResult::Unknown => {
                // Branch-and-bound can wander on unbounded systems whose
                // integer solutions are nevertheless small. Retry inside a
                // generous box: a Sat answer there is still exact; only the
                // boxed-Unsat case stays inconclusive.
                let mut boxed = base.clone();
                for v in 0..self.index.len() {
                    boxed.push(LinCon {
                        coeffs: vec![(v, BigInt::from(1))],
                        rel: Rel::Le,
                        rhs: BigInt::from(1_000_000_000i64),
                    });
                    boxed.push(LinCon {
                        coeffs: vec![(v, BigInt::from(1))],
                        rel: Rel::Ge,
                        rhs: BigInt::from(-1_000_000_000i64),
                    });
                }
                match check_lia_polled(self.index.len(), &boxed, self.lia_budget, &mut poll) {
                    LiaResult::Sat(m) => m,
                    other => {
                        if std::env::var_os("SMTKIT_DEBUG").is_some() {
                            eprintln!(
                                "[smtkit] boxed retry failed ({other:?} of {} cons, {} vars)",
                                base.len(),
                                self.index.len()
                            );
                            for c in base.iter() {
                                eprintln!("[smtkit]   {c}");
                            }
                        }
                        return Err(SmtError::ResourceLimit("lia nodes"));
                    }
                }
            }
        };
        // Find a disequality violated by this model (its linear form equals
        // the forbidden value).
        let violated = diseqs.iter().find(|d| {
            let mut sum = BigInt::zero();
            for &(s, c) in &d.coeffs {
                sum += &(&BigInt::from(c) * &m[self.index[&s]]);
            }
            sum == BigInt::from(d.rhs)
        });
        let Some(d) = violated else {
            return Ok(TheoryOutcome::Sat(m));
        };
        // e ≠ rhs  ⇒  e ≤ rhs-1  ∨  e ≥ rhs+1
        let coeffs: Vec<(usize, BigInt)> = d
            .coeffs
            .iter()
            .map(|&(s, c)| (self.index[&s], BigInt::from(c)))
            .collect();
        let lo = LinCon {
            coeffs: coeffs.clone(),
            rel: Rel::Le,
            rhs: &BigInt::from(d.rhs) - &BigInt::one(),
        };
        let hi = LinCon {
            coeffs,
            rel: Rel::Ge,
            rhs: &BigInt::from(d.rhs) + &BigInt::one(),
        };
        base.push(lo);
        if let TheoryOutcome::Sat(m) = self.split_depth(base, diseqs, depth + 1)? {
            base.pop();
            return Ok(TheoryOutcome::Sat(m));
        }
        base.pop();
        base.push(hi);
        let r = self.split_depth(base, diseqs, depth + 1);
        base.pop();
        r
    }
}

// ---------------------------------------------------------------------------
// The solver proper
// ---------------------------------------------------------------------------

/// Pivot cap for the *eager* incremental feasibility check consulted from
/// inside the SAT search. Normal repair takes a handful of pivots; on
/// tableaus whose rational coefficients explode, the eager check gives up
/// at the cap and the authoritative (node- and pivot-budgeted) full-model
/// check decides instead — without this, a single `IncrementalLra::check`
/// can pivot for minutes while the deadline is never consulted.
pub(crate) const THEORY_PIVOT_CAP: u64 = 200_000;

/// The static counter name for a retry-ladder rung (allocation-free; the
/// ladder is short — the default config takes at most 2 escalations).
pub(crate) fn retry_rung_counter(escalation: u32) -> &'static str {
    match escalation {
        1 => "smt.retry.rung1",
        2 => "smt.retry.rung2",
        3 => "smt.retry.rung3",
        4 => "smt.retry.rung4",
        _ => "smt.retry.rung5+",
    }
}

impl SmtSolver {
    /// Creates a solver with default configuration.
    pub fn new() -> SmtSolver {
        SmtSolver::default()
    }

    /// Creates a solver with a custom configuration.
    pub fn with_config(cfg: SmtConfig) -> SmtSolver {
        SmtSolver { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SmtConfig {
        &self.cfg
    }

    fn check_deadline(&self) -> Result<(), SmtError> {
        poll_budget(&self.cfg.budget)
    }

    /// Checks satisfiability of a quantifier-free CLIA formula.
    ///
    /// Internal resource exhaustion (LIA nodes, theory rounds, disequality
    /// splits) is retried up to `retry_escalations` times with geometrically
    /// escalated limits — bounded by the remaining [`Budget`] — before
    /// [`SmtError::ResourceLimit`] is reported; escalations are recorded on
    /// the budget's telemetry counters.
    ///
    /// # Errors
    ///
    /// [`SmtError::Unsupported`] for non-QF_LIA input (remaining function
    /// applications, nonlinear arithmetic), [`SmtError::Timeout`] /
    /// [`SmtError::ResourceLimit`] when budgets run out.
    pub fn check(&self, formula: &Term) -> Result<SmtResult, SmtError> {
        self.cfg.budget.note_smt_query();
        let tracer = self.cfg.budget.tracer().clone();
        tracer.progress().note_smt_check(formula.size() as u64);
        let span = tracer.span(Stage::Smt);
        let mut escalation: u32 = 0;
        let result = loop {
            // Each rung multiplies both base limits by 4.
            let factor = 1u64 << (2 * escalation.min(16));
            let lia_budget = self.cfg.lia_budget.max(1).saturating_mul(factor);
            let rounds = self.cfg.max_theory_rounds.max(1).saturating_mul(factor);
            match self.check_once(formula, lia_budget, rounds) {
                Err(SmtError::ResourceLimit(which)) => {
                    // Climb the ladder only while the governing budget has
                    // headroom; a fuel/deadline-exhausted budget reports
                    // immediately (check_once already mapped that case).
                    if escalation >= self.cfg.retry_escalations
                        || self.cfg.budget.check().is_err()
                    {
                        break Err(SmtError::ResourceLimit(which));
                    }
                    escalation += 1;
                    self.cfg.budget.note_smt_retry();
                    tracer.metrics().bump(retry_rung_counter(escalation));
                }
                other => break other,
            }
        };
        let answer = match &result {
            Ok(SmtResult::Sat(_)) => "sat",
            Ok(SmtResult::Unsat) => "unsat",
            Err(_) => "unknown",
        };
        tracer.metrics().bump(match answer {
            "sat" => "smt.sat",
            "unsat" => "smt.unsat",
            _ => "smt.unknown",
        });
        drop(span.with_detail(|| format!("answer={answer} rung={escalation}")));
        result
    }

    /// One attempt of the lazy DPLL(T) loop under explicit limits.
    fn check_once(
        &self,
        formula: &Term,
        lia_budget: u64,
        max_theory_rounds: u64,
    ) -> Result<SmtResult, SmtError> {
        if formula.sort() != Sort::Bool {
            return Err(SmtError::Unsupported("formula must be boolean".into()));
        }
        self.check_deadline()?;
        // Fast path for constants.
        match formula.as_bool_const() {
            Some(true) => return Ok(SmtResult::Sat(Model::default())),
            Some(false) => return Ok(SmtResult::Unsat),
            None => {}
        }
        // Purify integer ites, then conjoin the side constraints.
        let mut pur = Purifier::new();
        let main = pur.purify_bool(formula)?;
        let full = Term::and(std::iter::once(main).chain(pur.side.drain(..)));
        match full.as_bool_const() {
            Some(true) => return Ok(SmtResult::Sat(Model::default())),
            Some(false) => return Ok(SmtResult::Unsat),
            None => {}
        }

        let mut enc = Encoder::new(self.cfg.certify);
        let root = enc.encode(&full)?;
        enc.sat.add_clause(vec![root]);
        add_static_lemmas(&mut enc, &mut std::collections::HashSet::new());

        // Index every integer variable mentioned in atoms.
        let mut index: BTreeMap<Symbol, usize> = BTreeMap::new();
        for atom in &enc.atom_list {
            for &(s, _) in &atom.coeffs {
                let next = index.len();
                index.entry(s).or_insert(next);
            }
        }
        let checker = TheoryChecker {
            index: index.clone(),
            cfg: &self.cfg,
            lia_budget,
        };
        let min_checker = TheoryChecker {
            index: index.clone(),
            cfg: &self.cfg,
            lia_budget: (lia_budget / 64).max(200),
        };

        // Partial-assignment theory propagation (DPLL(T)): whenever SAT
        // propagation settles, the newly (un)assigned atoms are pushed into
        // an incremental rational simplex; conflicts come back as Farkas
        // cores and become learned clauses immediately. Rational reasoning
        // under-approximates integer infeasibility, so every clause is
        // sound; the complete integer check still runs on full models.
        let atom_vars: Vec<(u32, Atom)> = enc
            .atom_list
            .iter()
            .map(|a| (enc.atoms[a], a.clone()))
            .collect();
        let inc_atoms: Vec<crate::inc_lra::LinearAtom> = enc
            .atom_list
            .iter()
            .map(|a| {
                (
                    a.coeffs.iter().map(|&(s, c)| (index[&s], c)).collect(),
                    a.is_eq,
                    a.rhs,
                )
            })
            .collect();
        // Theory-engine dispatch: the specialized difference-logic engine
        // when the configuration allows it and *every* atom of the query
        // fits the fragment (it is exact over the integers there); the
        // general warm simplex otherwise. Queries with no theory atoms are
        // pure boolean and count toward neither dispatch metric.
        let want_dl = self.cfg.theory != TheorySelect::Simplex && !inc_atoms.is_empty();
        let use_dl = want_dl && inc_atoms.iter().all(fits_dl);
        let mut inc: Box<dyn TheorySolver> = if use_dl {
            self.cfg.budget.tracer().metrics().bump("theory.dl_dispatched");
            Box::new(crate::DifferenceLogic::new(index.len(), &inc_atoms))
        } else {
            if want_dl {
                self.cfg.budget.tracer().metrics().bump("theory.dl_fallbacks");
            }
            Box::new(crate::IncrementalLra::new(index.len(), &inc_atoms))
        };
        let deadline_hit = std::cell::Cell::new(false);
        // Search-analytics accumulators for theory work. The callback runs
        // after every propagation settle — far too hot for the registry's
        // counter mutex — so it writes plain `Cell`s and the driver flushes
        // them to `search.*` counters at conflict-chunk boundaries.
        let theory_checks = std::cell::Cell::new(0u64);
        let theory_conflicts = std::cell::Cell::new(0u64);
        let theory_cert_lits = std::cell::Cell::new(0u64);
        let theory_work_seen = std::cell::Cell::new(0u64);
        let theory_work_flushed = std::cell::Cell::new(0u64);
        let mut theory_cb = |assign: &[Option<bool>]| -> Option<Vec<Lit>> {
            if deadline_hit.get() {
                return None;
            }
            if self.check_deadline().is_err() {
                deadline_hit.set(true);
                return None;
            }
            let t_theory = use_dl.then(Instant::now);
            // Sync the incremental state with the current assignment.
            for (i, &(v, _)) in atom_vars.iter().enumerate() {
                match assign[v as usize] {
                    Some(b) => inc.assert_atom(i, b),
                    None => inc.retract_atom(i),
                }
            }
            let verdict = inc.check(THEORY_PIVOT_CAP, &mut || self.check_deadline().is_ok());
            theory_checks.set(theory_checks.get() + 1);
            theory_work_seen.set(inc.search_work());
            if let Some(t) = t_theory {
                self.cfg
                    .budget
                    .tracer()
                    .metrics()
                    .stage(Stage::Dl)
                    .record_micros(t.elapsed().as_micros() as u64);
            }
            match verdict {
                None => {
                    // The eager check gave up (deadline, or a pathological
                    // pivot sequence): report no conflict and let the
                    // authoritative budgeted full-model check decide.
                    if self.check_deadline().is_err() {
                        deadline_hit.set(true);
                    }
                    None
                }
                Some(Ok(())) => None,
                Some(Err(core)) => {
                    theory_conflicts.set(theory_conflicts.get() + 1);
                    theory_cert_lits.set(theory_cert_lits.get() + core.len() as u64);
                    Some(
                        core.iter()
                            .map(|&i| {
                                let pol = inc.polarity(i).expect("core atoms are asserted");
                                Lit::new(atom_vars[i].0, pol)
                            })
                            .collect(),
                    )
                }
            }
        };
        // Flushes the theory-work cells into `search.*` counters (the work
        // counter lands under the dispatched engine's name).
        let flush_theory = |m: &sygus_ast::trace::MetricsRegistry| {
            let checks = theory_checks.take();
            if checks > 0 {
                m.add("search.theory_checks_total", checks);
            }
            let conflicts = theory_conflicts.take();
            if conflicts > 0 {
                m.add("search.theory_conflicts_total", conflicts);
            }
            let lits = theory_cert_lits.take();
            if lits > 0 {
                m.add("search.theory_cert_lits_total", lits);
            }
            let delta = theory_work_seen.get() - theory_work_flushed.get();
            theory_work_flushed.set(theory_work_seen.get());
            if delta > 0 {
                let name = if use_dl {
                    "search.dl_relaxations_total"
                } else {
                    "search.simplex_pivots_total"
                };
                m.add(name, delta);
            }
        };

        let mut rounds: u64 = 0;
        loop {
            self.check_deadline()?;
            // One fuel unit per lazy round keeps `--fuel` meaningful down to
            // the decision-procedure layer.
            let _ = self.cfg.budget.charge_fuel(1);
            self.cfg.budget.tracer().metrics().bump("smt.theory_rounds");
            rounds += 1;
            if rounds > max_theory_rounds {
                return Err(SmtError::ResourceLimit("theory rounds"));
            }
            // Solve the propositional abstraction in conflict chunks so the
            // deadline is honored; within a chunk the conflict-stride poll
            // lets cancellation land mid-search.
            let t_sat = Instant::now();
            let poll_handle = self.cfg.budget.clone();
            let bool_model = loop {
                let step = enc.sat.solve_with_theory_polled(
                    Some(20_000),
                    || poll_handle.exceeded().is_none(),
                    &mut theory_cb,
                );
                // Chunk boundary: drain closed search intervals and the
                // theory-work cells (a terminal answer also closes the
                // open tail so nothing is lost).
                let done = step.is_some();
                crate::search::drain_search(
                    &mut enc.sat,
                    self.cfg.budget.tracer().metrics(),
                    done,
                );
                flush_theory(self.cfg.budget.tracer().metrics());
                match step {
                    Some(SatResult::Unsat) => {
                        self.certify_unsat(&enc.sat)?;
                        return Ok(SmtResult::Unsat);
                    }
                    Some(SatResult::Sat(m)) => break m,
                    None => self.check_deadline()?,
                }
            };
            if std::env::var_os("SMTKIT_DEBUG").is_some() && t_sat.elapsed().as_millis() > 50 {
                eprintln!("[smtkit]   sat solve took {:?}", t_sat.elapsed());
            }
            // Collect asserted theory literals.
            let asserted: Vec<(usize, bool)> = enc
                .atom_list
                .iter()
                .enumerate()
                .map(|(i, atom)| {
                    let v = enc.atoms[atom];
                    (i, bool_model[v as usize])
                })
                .collect();
            let lits: Vec<(&Atom, bool)> = asserted
                .iter()
                .map(|&(i, pol)| (&enc.atom_list[i], pol))
                .collect();
            let dbg = std::env::var_os("SMTKIT_DEBUG").is_some();
            let t_check = Instant::now();
            let outcome = checker.check(&lits)?;
            if dbg {
                eprintln!(
                    "[smtkit] round {rounds}: {} atoms, theory check {:?} -> {}",
                    enc.atom_list.len(),
                    t_check.elapsed(),
                    matches!(outcome, TheoryOutcome::Sat(_))
                );
            }
            match outcome {
                TheoryOutcome::Sat(point) => {
                    let mut model = Model::default();
                    for (&s, &vi) in &index {
                        model.ints.insert(s, point[vi].clone());
                    }
                    for (&s, &v) in &enc.bool_vars {
                        model.bools.insert(s, bool_model[v as usize]);
                    }
                    // Certify on the *full* (purification vars included)
                    // model: the asserted formula must evaluate to true
                    // under exact integer arithmetic.
                    self.certify_sat(&full, &model)?;
                    // Drop purification-internal variables from the model.
                    model.ints.retain(|s, _| !s.as_str().starts_with("ite!"));
                    return Ok(SmtResult::Sat(model));
                }
                TheoryOutcome::Unsat => {
                    self.cfg.budget.tracer().metrics().bump("smt.conflicts");
                    self.cfg.budget.tracer().progress().note_smt_conflict();
                    // Core minimization: binary-search the minimal failing
                    // prefix ("prefix is unsat" is monotone, so O(log n)
                    // checks locate it), then greedy deletion on the
                    // survivor when it is small enough.
                    let t_min = Instant::now();
                    let mut core: Vec<(usize, bool)> = asserted.clone();
                    if self.cfg.minimize_cores && core.len() > 1 {
                        let unsat_prefix = |k: usize| -> Result<bool, SmtError> {
                            self.check_deadline()?;
                            let lits: Vec<(&Atom, bool)> = asserted[..k]
                                .iter()
                                .map(|&(i, pol)| (&enc.atom_list[i], pol))
                                .collect();
                            Ok(matches!(min_checker.check(&lits), Ok(TheoryOutcome::Unsat)))
                        };
                        // Find the smallest k with prefix[..k] unsat.
                        let (mut lo, mut hi) = (1usize, asserted.len());
                        if unsat_prefix(hi)? {
                            // synthlint: allow(unpolled-loop) — O(log n) core binary search; every probe calls check_deadline
                            while lo < hi {
                                let mid = lo + (hi - lo) / 2;
                                if unsat_prefix(mid)? {
                                    hi = mid;
                                } else {
                                    lo = mid + 1;
                                }
                            }
                            core = asserted[..lo].to_vec();
                        }
                        // Deletion pass, back to front, only when affordable.
                        if core.len() <= 40 {
                            let mut i = core.len();
                            while i > 0 {
                                i -= 1;
                                self.check_deadline()?;
                                if core.len() <= 1 {
                                    break;
                                }
                                let mut trial = core.clone();
                                trial.remove(i);
                                let trial_lits: Vec<(&Atom, bool)> = trial
                                    .iter()
                                    .map(|&(k, pol)| (&enc.atom_list[k], pol))
                                    .collect();
                                if matches!(
                                    min_checker.check(&trial_lits),
                                    Ok(TheoryOutcome::Unsat)
                                ) {
                                    core = trial; // literal was redundant
                                }
                            }
                        }
                    }
                    if dbg {
                        eprintln!(
                            "[smtkit]   minimized to {} literals in {:?}",
                            core.len(),
                            t_min.elapsed()
                        );
                    }
                    let clause: Vec<Lit> = core
                        .iter()
                        .map(|&(i, pol)| {
                            let v = enc.atoms[&enc.atom_list[i]];
                            Lit::new(v, pol) // negation of the asserted literal
                        })
                        .collect();
                    // Full-model conflicts are theory conflicts too; the
                    // blocking clause is the certificate (cold path, so the
                    // registry mutex is fine here).
                    let m = self.cfg.budget.tracer().metrics();
                    m.add("search.theory_conflicts_total", 1);
                    m.add("search.theory_cert_lits_total", clause.len() as u64);
                    enc.sat.add_clause(clause);
                }
            }
        }
    }

    /// Replays the SAT core's DRAT trace through the independent RUP
    /// checker before an `unsat` answer is allowed out.
    fn certify_unsat(&self, sat: &SatSolver) -> Result<(), SmtError> {
        certify_unsat_steps(&self.cfg, sat.proof_steps())
    }

    /// Re-evaluates the asserted formula under the model with exact integer
    /// arithmetic before a `sat` answer is allowed out.
    fn certify_sat(&self, formula: &Term, model: &Model) -> Result<(), SmtError> {
        certify_sat_model(&self.cfg, formula, model)
    }

    /// Checks validity: `Valid` iff `¬formula` is unsatisfiable; otherwise
    /// returns the falsifying model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmtSolver::check`].
    pub fn check_valid(&self, formula: &Term) -> Result<Validity, SmtError> {
        match self.check(&Term::not(formula.clone()))? {
            SmtResult::Unsat => Ok(Validity::Valid),
            SmtResult::Sat(m) => Ok(Validity::Invalid(m)),
        }
    }

    /// Convenience: `true` iff `formula` is valid.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmtSolver::check`].
    pub fn is_valid(&self, formula: &Term) -> Result<bool, SmtError> {
        Ok(matches!(self.check_valid(formula)?, Validity::Valid))
    }

    /// Convenience: `true` iff `a` and `b` are equivalent CLIA terms of the
    /// same sort.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmtSolver::check`].
    pub fn equivalent(&self, a: &Term, b: &Term) -> Result<bool, SmtError> {
        if a.sort() != b.sort() {
            return Ok(false);
        }
        self.is_valid(&Term::eq(a.clone(), b.clone()))
    }
}

/// Maps a [`Budget`] poll onto [`SmtError`]: stop conditions (deadline,
/// cancellation) become [`SmtError::Timeout`], exhausted allowances become
/// [`SmtError::ResourceLimit`]. Shared by the one-shot solver and sessions.
pub(crate) fn poll_budget(budget: &Budget) -> Result<(), SmtError> {
    match budget.exceeded() {
        None => Ok(()),
        Some(e) if e.is_stop() => Err(SmtError::Timeout),
        Some(BudgetError::FuelExhausted) => Err(SmtError::ResourceLimit("fuel allowance")),
        Some(_) => Err(SmtError::ResourceLimit("memory allowance")),
    }
}

/// Replays a DRAT trace through the independent RUP checker (when
/// `cfg.certify` is on) before an `unsat` answer is allowed out.
pub(crate) fn certify_unsat_steps(
    cfg: &SmtConfig,
    steps: &[crate::drat::ProofStep],
) -> Result<(), SmtError> {
    if !cfg.certify {
        return Ok(());
    }
    let tracer = cfg.budget.tracer().clone();
    match crate::drat::check_refutation(steps) {
        Ok(_) => {
            tracer.metrics().bump("smt.certified_unsat");
            Ok(())
        }
        Err(e) => {
            tracer.metrics().bump("smt.certification_failures");
            Err(SmtError::Certification(format!("unsat proof rejected: {e}")))
        }
    }
}

/// Re-evaluates the asserted formula under the model with exact integer
/// arithmetic (when `cfg.certify` is on) before a `sat` answer is allowed
/// out.
pub(crate) fn certify_sat_model(
    cfg: &SmtConfig,
    formula: &Term,
    model: &Model,
) -> Result<(), SmtError> {
    if !cfg.certify {
        return Ok(());
    }
    let tracer = cfg.budget.tracer().clone();
    match eval_exact(formula, model) {
        Ok(BigVal::Bool(true)) => {
            tracer.metrics().bump("smt.certified_sat");
            Ok(())
        }
        Ok(_) => {
            tracer.metrics().bump("smt.certification_failures");
            Err(SmtError::Certification(
                "model does not satisfy the asserted formula".into(),
            ))
        }
        Err(why) => {
            tracer.metrics().bump("smt.certification_failures");
            Err(SmtError::Certification(format!(
                "model evaluation failed: {why}"
            )))
        }
    }
}

/// An exact value during certification-time model evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum BigVal {
    Int(BigInt),
    Bool(bool),
}

/// Evaluates a purified QF_LIA term under `model` with arbitrary-precision
/// integers — deliberately independent of [`Term::eval`] (which computes in
/// `i64` and can overflow). Unconstrained variables read as 0 / `false`;
/// that cannot flip the verdict, because any variable whose value matters
/// to the formula's truth is pinned by the model.
pub(crate) fn eval_exact(t: &Term, model: &Model) -> Result<BigVal, String> {
    use BigVal::{Bool, Int};
    let ints = |args: &[Term]| -> Result<Vec<BigInt>, String> {
        args.iter()
            .map(|a| match eval_exact(a, model)? {
                Int(n) => Ok(n),
                Bool(_) => Err(format!("expected an integer operand in {t}")),
            })
            .collect()
    };
    let bools = |args: &[Term]| -> Result<Vec<bool>, String> {
        args.iter()
            .map(|a| match eval_exact(a, model)? {
                Bool(b) => Ok(b),
                Int(_) => Err(format!("expected a boolean operand in {t}")),
            })
            .collect()
    };
    match t.node() {
        TermNode::IntConst(n) => Ok(Int(BigInt::from(*n))),
        TermNode::BoolConst(b) => Ok(Bool(*b)),
        TermNode::Var(s, Sort::Int) => Ok(Int(model.int(*s))),
        TermNode::Var(s, Sort::Bool) => Ok(Bool(model.boolean(*s))),
        TermNode::App(op, args) => match op {
            Op::Add => Ok(Int(ints(args)?
                .into_iter()
                .fold(BigInt::zero(), |a, b| &a + &b))),
            Op::Mul => Ok(Int(ints(args)?
                .into_iter()
                .fold(BigInt::one(), |a, b| &a * &b))),
            Op::Sub => {
                let vs = ints(args)?;
                let (first, rest) = vs
                    .split_first()
                    .ok_or_else(|| "empty subtraction".to_owned())?;
                Ok(Int(rest.iter().fold(first.clone(), |a, b| &a - b)))
            }
            Op::Neg => {
                let vs = ints(args)?;
                match vs.as_slice() {
                    [n] => Ok(Int(-n)),
                    _ => Err(format!("negation arity in {t}")),
                }
            }
            Op::Ite => {
                if args.len() != 3 {
                    return Err(format!("ite arity in {t}"));
                }
                match eval_exact(&args[0], model)? {
                    Bool(c) => eval_exact(&args[if c { 1 } else { 2 }], model),
                    Int(_) => Err(format!("non-boolean ite condition in {t}")),
                }
            }
            Op::Eq => {
                if args.len() != 2 {
                    return Err(format!("equality arity in {t}"));
                }
                match (eval_exact(&args[0], model)?, eval_exact(&args[1], model)?) {
                    (Int(a), Int(b)) => Ok(Bool(a == b)),
                    (Bool(a), Bool(b)) => Ok(Bool(a == b)),
                    _ => Err(format!("mixed-sort equality in {t}")),
                }
            }
            Op::Le | Op::Lt | Op::Ge | Op::Gt => {
                let vs = ints(args)?;
                match vs.as_slice() {
                    [a, b] => Ok(Bool(match op {
                        Op::Le => a <= b,
                        Op::Lt => a < b,
                        Op::Ge => a >= b,
                        _ => a > b,
                    })),
                    _ => Err(format!("comparison arity in {t}")),
                }
            }
            Op::And => Ok(Bool(bools(args)?.into_iter().all(|b| b))),
            Op::Or => Ok(Bool(bools(args)?.into_iter().any(|b| b))),
            Op::Not => {
                let vs = bools(args)?;
                match vs.as_slice() {
                    [b] => Ok(Bool(!b)),
                    _ => Err(format!("negation arity in {t}")),
                }
            }
            Op::Implies => {
                let vs = bools(args)?;
                match vs.as_slice() {
                    [a, b] => Ok(Bool(!a || *b)),
                    _ => Err(format!("implication arity in {t}")),
                }
            }
            Op::Apply(f, _) => Err(format!("unexpanded function application `{f}`")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::int_var("sx")
    }
    fn y() -> Term {
        Term::int_var("sy")
    }

    fn solver() -> SmtSolver {
        SmtSolver::new()
    }

    fn expect_sat(f: &Term) -> Model {
        match solver().check(f).expect("no error") {
            SmtResult::Sat(m) => m,
            SmtResult::Unsat => panic!("expected sat: {f}"),
        }
    }

    fn expect_unsat(f: &Term) {
        assert_eq!(
            solver().check(f).expect("no error"),
            SmtResult::Unsat,
            "expected unsat: {f}"
        );
    }

    #[test]
    fn constants() {
        assert!(matches!(
            solver().check(&Term::tt()).unwrap(),
            SmtResult::Sat(_)
        ));
        expect_unsat(&Term::ff());
    }

    #[test]
    fn single_interval() {
        let f = Term::and([Term::gt(x(), Term::int(3)), Term::lt(x(), Term::int(5))]);
        let m = expect_sat(&f);
        assert_eq!(m.int(Symbol::new("sx")).to_i64(), Some(4));
    }

    #[test]
    fn empty_int_interval() {
        let f = Term::and([Term::gt(x(), Term::int(3)), Term::lt(x(), Term::int(4))]);
        expect_unsat(&f);
    }

    #[test]
    fn model_satisfies_formula() {
        let f = Term::or([
            Term::and([Term::ge(x(), Term::int(10)), Term::le(y(), Term::int(-3))]),
            Term::eq(Term::add(x(), y()), Term::int(7)),
        ]);
        let m = expect_sat(&f);
        let mut env = m.to_env().expect("small model");
        let defs = sygus_ast::Definitions::new();
        for s in ["sx", "sy"] {
            if env.lookup(Symbol::new(s)).is_none() {
                env.bind(Symbol::new(s), Value::Int(0));
            }
        }
        assert_eq!(f.eval(&env, &defs), Ok(Value::Bool(true)));
    }

    #[test]
    fn disequality_splitting() {
        // x ≠ 0 ∧ 0 ≤ x ≤ 1 → x = 1
        let f = Term::and([
            Term::not(Term::eq(x(), Term::int(0))),
            Term::ge(x(), Term::int(0)),
            Term::le(x(), Term::int(1)),
        ]);
        let m = expect_sat(&f);
        assert_eq!(m.int(Symbol::new("sx")).to_i64(), Some(1));
        // x ≠ 0 ∧ x ≠ 1 ∧ 0 ≤ x ≤ 1 → unsat
        let g = Term::and([
            Term::not(Term::eq(x(), Term::int(0))),
            Term::not(Term::eq(x(), Term::int(1))),
            Term::ge(x(), Term::int(0)),
            Term::le(x(), Term::int(1)),
        ]);
        expect_unsat(&g);
    }

    #[test]
    fn parity_reasoning() {
        // 2x = 2y + 1 unsat over integers.
        let f = Term::eq(
            Term::scale(2, x()),
            Term::add(Term::scale(2, y()), Term::int(1)),
        );
        expect_unsat(&f);
    }

    #[test]
    fn boolean_structure() {
        let p = Term::var("sp", Sort::Bool);
        let q = Term::var("sq", Sort::Bool);
        let f = Term::and([Term::or([p.clone(), q.clone()]), Term::not(p.clone())]);
        let m = expect_sat(&f);
        assert!(!m.boolean(Symbol::new("sp")));
        assert!(m.boolean(Symbol::new("sq")));
    }

    #[test]
    fn mixed_bool_int() {
        let p = Term::var("smb", Sort::Bool);
        // (p → x ≥ 5) ∧ (¬p → x ≤ -5) ∧ x = 3: unsat
        let f = Term::and([
            Term::implies(p.clone(), Term::ge(x(), Term::int(5))),
            Term::implies(Term::not(p.clone()), Term::le(x(), Term::int(-5))),
            Term::eq(x(), Term::int(3)),
        ]);
        expect_unsat(&f);
    }

    #[test]
    fn ite_purification() {
        let max = Term::ite(Term::ge(x(), y()), x(), y());
        let f = Term::and([
            Term::eq(x(), Term::int(3)),
            Term::eq(y(), Term::int(8)),
            Term::eq(max.clone(), Term::int(8)),
        ]);
        let m = expect_sat(&f);
        assert_eq!(m.int(Symbol::new("sx")).to_i64(), Some(3));
        assert!(
            !m.ints.keys().any(|s| s.as_str().starts_with("ite!")),
            "purification variables must not leak into models"
        );
        let g = Term::and([
            Term::eq(x(), Term::int(3)),
            Term::eq(y(), Term::int(8)),
            Term::eq(max, Term::int(3)),
        ]);
        expect_unsat(&g);
    }

    #[test]
    fn nested_ite() {
        let z = Term::int_var("sz");
        let max3 = Term::ite(
            Term::and([Term::ge(x(), y()), Term::ge(x(), z.clone())]),
            x(),
            Term::ite(Term::ge(y(), z.clone()), y(), z.clone()),
        );
        let f = Term::and([
            Term::eq(x(), Term::int(9)),
            Term::eq(y(), Term::int(1)),
            Term::eq(z.clone(), Term::int(5)),
            Term::eq(max3, Term::int(9)),
        ]);
        expect_sat(&f);
    }

    #[test]
    fn validity_of_max_spec() {
        let max = Term::ite(Term::ge(x(), y()), x(), y());
        assert_eq!(
            solver().check_valid(&Term::ge(max, x())).unwrap(),
            Validity::Valid
        );
    }

    #[test]
    fn invalidity_gives_counterexample() {
        let f = Term::ge(x(), y());
        match solver().check_valid(&f).unwrap() {
            Validity::Invalid(m) => {
                assert!(m.int(Symbol::new("sx")) < m.int(Symbol::new("sy")));
            }
            Validity::Valid => panic!("x >= y is not valid"),
        }
    }

    #[test]
    fn equivalence() {
        let a = Term::add(x(), x());
        let b = Term::scale(2, x());
        assert!(solver().equivalent(&a, &b).unwrap());
        assert!(!solver().equivalent(&a, &Term::scale(3, x())).unwrap());
        assert!(!solver()
            .equivalent(&a, &Term::ge(x(), Term::int(0)))
            .unwrap());
    }

    #[test]
    fn unsupported_function_application() {
        let f = Term::ge(Term::apply("unk_f", Sort::Int, vec![x()]), Term::int(0));
        assert!(matches!(solver().check(&f), Err(SmtError::Unsupported(_))));
    }

    #[test]
    fn nonlinear_rejected() {
        let f = Term::ge(Term::app(Op::Mul, vec![x(), y()]), Term::int(0));
        assert!(matches!(solver().check(&f), Err(SmtError::Unsupported(_))));
    }

    #[test]
    fn timeout_honored() {
        let cfg = SmtConfig {
            budget: Budget::with_deadline(Instant::now() - std::time::Duration::from_secs(1)),
            ..SmtConfig::default()
        };
        let s = SmtSolver::with_config(cfg);
        let f = Term::ge(x(), Term::int(0));
        assert_eq!(s.check(&f), Err(SmtError::Timeout));
    }

    #[test]
    fn cancellation_honored() {
        let budget = Budget::unlimited();
        budget.cancel();
        let s = SmtSolver::with_config(SmtConfig {
            budget,
            ..SmtConfig::default()
        });
        assert_eq!(s.check(&Term::ge(x(), Term::int(0))), Err(SmtError::Timeout));
    }

    /// `x = y ∧ 2x + 3y ∈ [6, 7]`: rationally feasible (`x = y = 1.3`) so
    /// the incremental LRA never objects, but integrally unsat — after
    /// equality elimination `5y ∈ [6, 7]` needs a root plus two
    /// branch-and-bound children (~3 nodes) to refute.
    fn branching_unsat_formula() -> Term {
        let lhs = Term::add(Term::scale(2, x()), Term::scale(3, y()));
        Term::and([
            Term::ge(Term::sub(x(), y()), Term::int(0)),
            Term::le(Term::sub(x(), y()), Term::int(0)),
            Term::ge(lhs.clone(), Term::int(6)),
            Term::le(lhs, Term::int(7)),
        ])
    }

    #[test]
    fn retry_ladder_escalates_and_recovers() {
        // A 1-node LIA budget cannot refute the branching formula; the
        // ladder must escalate past it and record the escalations on the
        // budget's telemetry.
        let budget = Budget::unlimited();
        let s = SmtSolver::with_config(SmtConfig {
            budget: budget.clone(),
            lia_budget: 1,
            retry_escalations: 4,
            ..SmtConfig::default()
        });
        assert_eq!(
            s.check(&branching_unsat_formula())
                .expect("ladder reaches a verdict"),
            SmtResult::Unsat
        );
        assert!(
            budget.smt_retries() >= 1,
            "expected at least one recorded escalation, got {}",
            budget.smt_retries()
        );
        assert_eq!(budget.smt_queries(), 1);
    }

    #[test]
    fn retry_ladder_stops_when_out_of_escalations() {
        // With zero allowed escalations the first ResourceLimit surfaces.
        let s = SmtSolver::with_config(SmtConfig {
            lia_budget: 1,
            retry_escalations: 0,
            ..SmtConfig::default()
        });
        assert!(matches!(
            s.check(&branching_unsat_formula()),
            Err(SmtError::ResourceLimit(_))
        ));
    }

    #[test]
    fn bool_equality_encoding() {
        let p = Term::var("xp", Sort::Bool);
        let q = Term::var("xq", Sort::Bool);
        let f = Term::and([Term::app(Op::Eq, vec![p.clone(), q.clone()]), p.clone()]);
        let m = expect_sat(&f);
        assert!(m.boolean(Symbol::new("xq")));
    }

    #[test]
    fn big_conjunction_of_bounds() {
        // c0 < c1 < ... < c7, c0 >= 0, c7 <= 7 → unique chain 0..7
        let vars: Vec<Term> = (0..8)
            .map(|i| Term::int_var(format!("c{i}").as_str()))
            .collect();
        let mut cs: Vec<Term> = vars
            .windows(2)
            .map(|w| Term::lt(w[0].clone(), w[1].clone()))
            .collect();
        cs.push(Term::ge(vars[0].clone(), Term::int(0)));
        cs.push(Term::le(vars[7].clone(), Term::int(7)));
        let m = expect_sat(&Term::and(cs));
        for (i, v) in vars.iter().enumerate() {
            let s = v.as_var().expect("var");
            assert_eq!(m.int(s).to_i64(), Some(i as i64), "chain position {i}");
        }
    }

    #[test]
    fn structured_formulas_model_eval() {
        let defs = sygus_ast::Definitions::new();
        let formulas = vec![
            Term::and([
                Term::ge(Term::add(x(), Term::scale(3, y())), Term::int(10)),
                Term::le(Term::sub(x(), y()), Term::int(2)),
            ]),
            Term::or([
                Term::eq(x(), Term::int(-7)),
                Term::and([Term::lt(x(), y()), Term::lt(y(), Term::int(0))]),
            ]),
            Term::implies(
                Term::ge(x(), Term::int(0)),
                Term::gt(Term::add(x(), y()), Term::sub(y(), Term::int(1))),
            ),
        ];
        for f in formulas {
            match solver().check(&f).unwrap() {
                SmtResult::Sat(m) => {
                    let mut env = m.to_env().expect("fits");
                    for s in ["sx", "sy"] {
                        if env.lookup(Symbol::new(s)).is_none() {
                            env.bind(Symbol::new(s), Value::Int(0));
                        }
                    }
                    assert_eq!(f.eval(&env, &defs), Ok(Value::Bool(true)), "formula {f}");
                }
                SmtResult::Unsat => panic!("expected sat: {f}"),
            }
        }
    }
}
