//! A self-contained DRAT-style proof checker for the CDCL SAT core.
//!
//! When proof logging is enabled (see [`SatSolver::enable_proof`]), the
//! solver records every clause it receives (`Input`), every clause it
//! derives by conflict analysis (`Learn`), and every clause it discards
//! during preprocessing (`Delete`). An `unsat` answer is then *certified*
//! by replaying the trace here: each learned clause must pass Reverse Unit
//! Propagation (RUP) against the clause database as it existed when the
//! clause was derived, and the replayed database must propagate to a
//! root-level conflict — i.e. the empty clause must itself be RUP.
//!
//! The checker shares no propagation code with [`SatSolver`]; it keeps its
//! own watched-literal scheme so that a bug in the solver's propagation
//! cannot hide inside the check.
//!
//! [`SatSolver`]: crate::SatSolver
//! [`SatSolver::enable_proof`]: crate::SatSolver::enable_proof

use crate::sat::Lit;
use std::collections::HashMap;
use std::fmt;

/// One step of a DRAT-style clause trace, in derivation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// An axiom: an original clause of the formula. Not RUP-checked —
    /// inputs define the formula being refuted.
    Input(Vec<Lit>),
    /// A clause contributed by a theory solver (a Farkas core, a
    /// difference-logic negative cycle, or a pinned-disequality conflict
    /// mapped to atom literals). Replayed like an input — its justification
    /// is the theory certificate, not propositional reasoning — but tagged
    /// separately so certificate provenance survives into the trace text
    /// and replay statistics.
    TheoryLemma(Vec<Lit>),
    /// A clause derived by conflict analysis; must pass RUP.
    Learn(Vec<Lit>),
    /// A clause removed from the active database (tautologies and clauses
    /// already satisfied at the root level).
    Delete(Vec<Lit>),
}

/// Why a proof trace was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DratError {
    /// A learned clause is not implied by unit propagation: replaying the
    /// database with the clause's negation asserted did not conflict.
    NotRup {
        /// Index of the offending step in the trace.
        step: usize,
        /// The clause that failed the check (literals sorted).
        clause: Vec<Lit>,
    },
    /// The trace ends without the empty clause being derivable: the
    /// replayed database does not propagate to a root conflict, so the
    /// `unsat` answer is uncertified.
    NoRefutation,
}

impl fmt::Display for DratError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DratError::NotRup { step, clause } => {
                write!(f, "step {step}: learned clause {clause:?} is not RUP")
            }
            DratError::NoRefutation => {
                write!(f, "trace does not derive the empty clause")
            }
        }
    }
}

/// Counters from a successful [`check_refutation`] replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DratStats {
    /// Input clauses replayed.
    pub inputs: usize,
    /// Theory lemmas replayed (axioms justified by theory certificates).
    pub theory_lemmas: usize,
    /// Learned clauses RUP-checked.
    pub learned: usize,
    /// Deletion steps applied.
    pub deleted: usize,
    /// Total literals enqueued across all propagation passes (work measure).
    pub propagations: usize,
}

const UNASSIGNED: i8 = 0;

/// The replay engine: an independent watched-literal propagator over the
/// trace's clause database.
struct Replay {
    /// Active clauses (literal lists); `None` marks a deleted slot.
    clauses: Vec<Option<Vec<Lit>>>,
    /// Sorted-clause → active slots, for deletion by value.
    index: HashMap<Vec<Lit>, Vec<usize>>,
    /// `watch[lit.code()]`: clause slots watching `lit`.
    watch: Vec<Vec<usize>>,
    /// Per-variable assignment: 0 unassigned, 1 true, -1 false.
    assign: Vec<i8>,
    trail: Vec<Lit>,
    /// Length of the root-level (persistent) prefix of the trail.
    root_len: usize,
    /// Set once the root database propagates to a conflict.
    root_conflict: bool,
    stats: DratStats,
}

impl Replay {
    fn new() -> Replay {
        Replay {
            clauses: Vec::new(),
            index: HashMap::new(),
            watch: Vec::new(),
            assign: Vec::new(),
            trail: Vec::new(),
            root_len: 0,
            root_conflict: false,
            stats: DratStats::default(),
        }
    }

    fn ensure_var(&mut self, v: u32) {
        let need = (v as usize) + 1;
        if self.assign.len() < need {
            self.assign.resize(need, UNASSIGNED);
            self.watch.resize(need * 2, Vec::new());
        }
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assign[l.var() as usize];
        if l.is_neg() {
            -a
        } else {
            a
        }
    }

    fn set(&mut self, l: Lit) {
        self.assign[l.var() as usize] = if l.is_neg() { -1 } else { 1 };
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Unit propagation from `start` to fixpoint; `true` means conflict.
    fn propagate(&mut self, mut head: usize) -> bool {
        while head < self.trail.len() {
            let p = self.trail[head];
            head += 1;
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watch[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                let Some(clause) = self.clauses[ci].as_mut() else {
                    ws.swap_remove(i); // lazily drop deleted clauses
                    continue;
                };
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                let first = clause[0];
                if self.lit_value(first) == 1 {
                    i += 1;
                    continue;
                }
                let mut moved = false;
                for k in 2..self.clauses[ci].as_ref().expect("live").len() {
                    let lk = self.clauses[ci].as_ref().expect("live")[k];
                    if self.lit_value(lk) != -1 {
                        self.clauses[ci].as_mut().expect("live").swap(1, k);
                        self.watch[lk.code()].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                match self.lit_value(first) {
                    -1 => {
                        self.watch[false_lit.code()].extend_from_slice(&ws);
                        return true; // conflict
                    }
                    0 => self.set(first),
                    _ => {}
                }
                i += 1;
            }
            self.watch[false_lit.code()].extend_from_slice(&ws);
        }
        false
    }

    /// RUP check: asserting the negation of every literal of `clause` must
    /// propagate to a conflict. Clauses already satisfied at the root are
    /// trivially implied. Leaves the root trail untouched.
    fn is_rup(&mut self, clause: &[Lit]) -> bool {
        if self.root_conflict {
            return true; // everything is implied once ⊥ is derived
        }
        debug_assert_eq!(self.trail.len(), self.root_len);
        let mut ok = false;
        for &l in clause {
            match self.lit_value(l) {
                1 => {
                    ok = true; // satisfied at root
                    break;
                }
                -1 => continue,
                _ => self.set(l.negate()),
            }
        }
        let head = if ok { self.trail.len() } else { self.root_len };
        if !ok {
            ok = self.propagate(head);
        }
        // Unwind the temporary assignments.
        while self.trail.len() > self.root_len {
            let l = self.trail.pop().expect("trail");
            self.assign[l.var() as usize] = UNASSIGNED;
        }
        ok
    }

    /// Installs `clause` into the database and extends root propagation.
    fn attach(&mut self, clause: &[Lit]) {
        if self.root_conflict {
            return;
        }
        for &l in clause {
            self.ensure_var(l.var());
        }
        // Already satisfied at root: keep it, it can still watch safely —
        // pick the true literal as a watch.
        // Partition: find up to two non-false literals to watch.
        let nonfalse: Vec<usize> = (0..clause.len())
            .filter(|&k| self.lit_value(clause[k]) != -1)
            .collect();
        match nonfalse.len() {
            0 => {
                // Conflicting at root (covers the empty clause).
                self.root_conflict = true;
            }
            1 => {
                // Effectively unit under the root assignment.
                let l = clause[nonfalse[0]];
                if self.lit_value(l) == 0 {
                    self.set(l);
                    let head = self.trail.len() - 1;
                    if self.propagate(head) {
                        self.root_conflict = true;
                    }
                    self.root_len = self.trail.len();
                }
                // True at root: inert, nothing to do. Either way the clause
                // itself need not enter the watch database.
            }
            _ => {
                let mut lits = clause.to_vec();
                lits.swap(0, nonfalse[0]);
                let second = if nonfalse[1] == 0 { nonfalse[0] } else { nonfalse[1] };
                lits.swap(1, second);
                let ci = self.clauses.len();
                self.watch[lits[0].code()].push(ci);
                self.watch[lits[1].code()].push(ci);
                let mut key = clause.to_vec();
                key.sort();
                self.index.entry(key).or_default().push(ci);
                self.clauses.push(Some(lits));
            }
        }
    }

    fn delete(&mut self, clause: &[Lit]) {
        let mut key = clause.to_vec();
        key.sort();
        if let Some(slots) = self.index.get_mut(&key) {
            if let Some(ci) = slots.pop() {
                self.clauses[ci] = None; // watches are dropped lazily
            }
            if slots.is_empty() {
                self.index.remove(&key);
            }
        }
        // Deleting a clause the database never attached (unit/root-inert
        // ones) is a no-op; root assignments persist, as in DRAT.
    }
}

/// Replays a proof trace and certifies that it derives the empty clause.
///
/// Every [`ProofStep::Learn`] clause is RUP-checked against the database at
/// its point in the trace; [`ProofStep::Input`] clauses are axioms;
/// [`ProofStep::Delete`] removes one matching clause. The replayed database
/// must end in a root-level conflict.
///
/// # Errors
///
/// [`DratError::NotRup`] on the first learned clause that unit propagation
/// cannot justify, [`DratError::NoRefutation`] when the trace never reaches
/// the empty clause.
pub fn check_refutation(steps: &[ProofStep]) -> Result<DratStats, DratError> {
    let mut replay = Replay::new();
    for (i, step) in steps.iter().enumerate() {
        match step {
            ProofStep::Input(c) => {
                replay.stats.inputs += 1;
                replay.attach(c);
            }
            ProofStep::TheoryLemma(c) => {
                replay.stats.theory_lemmas += 1;
                replay.attach(c);
            }
            ProofStep::Learn(c) => {
                replay.stats.learned += 1;
                for &l in c {
                    replay.ensure_var(l.var());
                }
                if !replay.is_rup(c) {
                    let mut clause = c.clone();
                    clause.sort();
                    return Err(DratError::NotRup { step: i, clause });
                }
                replay.attach(c);
            }
            ProofStep::Delete(c) => {
                replay.stats.deleted += 1;
                replay.delete(c);
            }
        }
    }
    if replay.root_conflict {
        Ok(replay.stats)
    } else {
        Err(DratError::NoRefutation)
    }
}

/// Checks a SAT model against the trace's *active* clause database: every
/// input or learned clause that was not subsequently deleted must contain a
/// true literal. Variables beyond `model`'s length count as false.
pub fn model_satisfies(steps: &[ProofStep], model: &[bool]) -> bool {
    let value = |l: Lit| -> bool {
        let v = l.var() as usize;
        let b = model.get(v).copied().unwrap_or(false);
        b != l.is_neg()
    };
    let mut live: HashMap<Vec<Lit>, usize> = HashMap::new();
    for step in steps {
        let (clause, delta) = match step {
            ProofStep::Input(c) | ProofStep::TheoryLemma(c) | ProofStep::Learn(c) => (c, 1i64),
            ProofStep::Delete(c) => (c, -1i64),
        };
        let mut key = clause.clone();
        key.sort();
        key.dedup();
        let e = live.entry(key).or_insert(0);
        *e = (*e as i64 + delta).max(0) as usize;
    }
    live.iter()
        .filter(|&(_, &n)| n > 0)
        .all(|(clause, _)| clause.iter().any(|&l| value(l)))
}

/// Renders a trace in DRAT-style text form, deterministically: literals are
/// sorted within each clause (variable order, positive first) and steps are
/// emitted in derivation order. Learned clauses are plain lines, deletions
/// are `d` lines, inputs use an `i` prefix (standard DRAT keeps inputs in
/// the CNF file; the trace here is self-contained instead), and theory
/// lemmas use a `t` prefix so their certificate-backed provenance stays
/// visible in the text. Literals use DIMACS numbering (`var + 1`, negative
/// for negated) and each line ends with `0`.
pub fn drat_text(steps: &[ProofStep]) -> String {
    let mut out = String::new();
    for step in steps {
        let (prefix, clause) = match step {
            ProofStep::Input(c) => ("i ", c),
            ProofStep::TheoryLemma(c) => ("t ", c),
            ProofStep::Learn(c) => ("", c),
            ProofStep::Delete(c) => ("d ", c),
        };
        let mut lits = clause.clone();
        lits.sort();
        out.push_str(prefix);
        for l in &lits {
            let dimacs = (l.var() as i64 + 1) * if l.is_neg() { -1 } else { 1 };
            out.push_str(&dimacs.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(v: u32) -> Lit {
        Lit::pos(v)
    }

    fn neg(v: u32) -> Lit {
        Lit::neg(v)
    }

    #[test]
    fn empty_input_clause_refutes() {
        let steps = [ProofStep::Input(vec![])];
        assert!(check_refutation(&steps).is_ok());
    }

    #[test]
    fn contradictory_units_refute() {
        let steps = [
            ProofStep::Input(vec![pos(0)]),
            ProofStep::Input(vec![neg(0)]),
        ];
        let stats = check_refutation(&steps).unwrap();
        assert_eq!(stats.inputs, 2);
    }

    #[test]
    fn no_refutation_reported() {
        let steps = [ProofStep::Input(vec![pos(0), pos(1)])];
        assert_eq!(check_refutation(&steps), Err(DratError::NoRefutation));
    }

    #[test]
    fn rup_learning_chain() {
        // (a ∨ b), (a ∨ ¬b) ⊢ (a) by RUP; with (¬a) the database refutes.
        let steps = [
            ProofStep::Input(vec![pos(0), pos(1)]),
            ProofStep::Input(vec![pos(0), neg(1)]),
            ProofStep::Input(vec![neg(0)]),
            ProofStep::Learn(vec![pos(0)]),
        ];
        let stats = check_refutation(&steps).unwrap();
        assert_eq!(stats.learned, 1);
    }

    #[test]
    fn bogus_learn_rejected() {
        // (a ∨ b) alone does not imply (a).
        let steps = [
            ProofStep::Input(vec![pos(0), pos(1)]),
            ProofStep::Learn(vec![pos(0)]),
        ];
        match check_refutation(&steps) {
            Err(DratError::NotRup { step, .. }) => assert_eq!(step, 1),
            other => panic!("expected NotRup, got {other:?}"),
        }
    }

    #[test]
    fn deleting_a_needed_clause_breaks_rup() {
        let steps = [
            ProofStep::Input(vec![pos(0), pos(1)]),
            ProofStep::Input(vec![pos(0), neg(1)]),
            ProofStep::Delete(vec![pos(0), neg(1)]),
            ProofStep::Learn(vec![pos(0)]),
        ];
        assert!(matches!(
            check_refutation(&steps),
            Err(DratError::NotRup { .. })
        ));
    }

    #[test]
    fn tautology_then_delete_is_harmless() {
        let steps = [
            ProofStep::Input(vec![pos(0), neg(0)]),
            ProofStep::Delete(vec![pos(0), neg(0)]),
            ProofStep::Input(vec![pos(1)]),
            ProofStep::Input(vec![neg(1)]),
        ];
        assert!(check_refutation(&steps).is_ok());
    }

    #[test]
    fn model_check_sees_active_clauses_only() {
        let steps = [
            ProofStep::Input(vec![pos(0)]),
            ProofStep::Input(vec![neg(1)]),
            ProofStep::Delete(vec![neg(1)]),
        ];
        assert!(model_satisfies(&steps, &[true, true]));
        assert!(!model_satisfies(&steps, &[false, false]));
    }

    /// Theory lemmas replay as axioms (no RUP check), count separately in
    /// the statistics, participate in model checking, and render with the
    /// `t` prefix.
    #[test]
    fn theory_lemmas_replay_as_tagged_axioms() {
        // (a ∨ b) plus the theory lemma (¬a) does not propositionally
        // imply (¬b) — but the lemma is an axiom, so learning (b) by RUP
        // against {a∨b, ¬a} works and the units refute.
        let steps = [
            ProofStep::Input(vec![pos(0), pos(1)]),
            ProofStep::TheoryLemma(vec![neg(0)]),
            ProofStep::Learn(vec![pos(1)]),
            ProofStep::TheoryLemma(vec![neg(1)]),
        ];
        let stats = check_refutation(&steps).unwrap();
        assert_eq!(stats.inputs, 1);
        assert_eq!(stats.theory_lemmas, 2);
        assert_eq!(stats.learned, 1);

        let sat_steps = [
            ProofStep::Input(vec![pos(0), pos(1)]),
            ProofStep::TheoryLemma(vec![neg(0)]),
        ];
        assert!(model_satisfies(&sat_steps, &[false, true]));
        assert!(!model_satisfies(&sat_steps, &[true, true]));

        assert_eq!(
            drat_text(&[ProofStep::TheoryLemma(vec![neg(0), pos(2)])]),
            "t -1 3 0\n"
        );
    }

    #[test]
    fn drat_text_is_sorted_and_stable() {
        let steps = [
            ProofStep::Input(vec![pos(2), neg(0), pos(1)]),
            ProofStep::Learn(vec![neg(2), pos(0)]),
            ProofStep::Delete(vec![pos(1)]),
        ];
        let text = drat_text(&steps);
        assert_eq!(text, "i -1 2 3 0\n1 -3 0\nd 2 0\n");
        assert_eq!(text, drat_text(&steps)); // deterministic
    }
}
