//! Incremental linear *rational* arithmetic for DPLL(T) partial checks.
//!
//! One simplex tableau is built per query with a slack variable per
//! distinct linear form; asserting an atom literal just (un)tightens a
//! bound on its slack, and feasibility repair is a handful of pivots.
//! Infeasibility comes back with a Farkas explanation mapped to the
//! asserted atom literals — the learned clause.
//!
//! Rational reasoning under-approximates integer infeasibility (rational-
//! unsat implies integer-unsat, never the converse), so every conflict
//! reported here is sound; complete integer checks still happen on full
//! models. Disequalities (negated equalities) are ignored at this level.

use crate::simplex::BoundSide;
use crate::theory::{TheoryCertificate, TheorySolver};
use crate::{Rat, Simplex};
use std::collections::{BTreeMap, HashMap};

/// A theory atom as a `(coeffs, is_eq, rhs)` triple: the sparse linear
/// form `Σ coeff·var`, whether the relation is `=` (else `≤`), and the
/// right-hand side.
pub type LinearAtom = (Vec<(usize, i64)>, bool, i64);

/// One trail record: an atom index and its pre-frame polarity.
type TrailEntry = (usize, Option<bool>);

/// An atom in slack form: `linear form ⋈ rhs`, referencing a registered
/// slack variable.
#[derive(Clone, Debug)]
struct SlackAtom {
    slack: usize,
    is_eq: bool,
    rhs: i64,
}

/// Per-variable bookkeeping of the active asserted bounds: values with
/// multiplicity, plus the atom that currently justifies the effective
/// (tightest) bound.
#[derive(Clone, Debug, Default)]
struct ActiveBounds {
    /// value → asserting atom ids (multiplicity = length)
    lowers: BTreeMap<i64, Vec<usize>>,
    uppers: BTreeMap<i64, Vec<usize>>,
}

/// The incremental rational theory state for one SMT query — or, via
/// [`IncrementalLra::add_var`]/[`IncrementalLra::add_atom`], a warm tableau
/// grown across the queries of a persistent session: new variables and
/// linear forms are appended in place, keeping the current basis and pivot
/// work from earlier checks.
#[derive(Clone, Debug)]
pub struct IncrementalLra {
    sx: Simplex,
    /// Problem-variable index → simplex variable id. Identity for variables
    /// present at construction; variables added later land *after* existing
    /// slack variables, so the indirection keeps caller-facing indices dense.
    var_ids: Vec<usize>,
    /// Canonical (sorted, problem-indexed) linear form → shared slack id.
    slack_of: HashMap<Vec<(usize, i64)>, usize>,
    atoms: Vec<SlackAtom>,
    active: HashMap<usize, ActiveBounds>,
    /// Atom literals currently asserted: `asserted[atom] = Some(polarity)`.
    asserted: Vec<Option<bool>>,
    /// Open trail frames for [`TheorySolver::push`]/[`TheorySolver::pop`]:
    /// each records the pre-frame polarity of atoms first touched inside it.
    /// Empty (and cost-free) for callers that never push.
    frames: Vec<(u64, Vec<TrailEntry>)>,
    /// Monotone frame counter; ids are never reused so stale stamps cannot
    /// alias a reopened frame.
    next_frame: u64,
    /// `stamp[atom]`: id of the frame that already recorded this atom.
    stamp: Vec<u64>,
    /// Certificate of the most recent conflict from
    /// [`check_budgeted`](IncrementalLra::check_budgeted).
    last_conflict: Option<TheoryCertificate>,
}

impl IncrementalLra {
    /// Builds the state for `atoms`, each a `(coeffs, is_eq, rhs)` triple
    /// over variables indexed `0..num_vars`. Linear forms are shared.
    pub fn new(num_vars: usize, atoms: &[LinearAtom]) -> IncrementalLra {
        let mut st = IncrementalLra {
            sx: Simplex::new(num_vars),
            var_ids: (0..num_vars).collect(),
            slack_of: HashMap::new(),
            atoms: Vec::with_capacity(atoms.len()),
            active: HashMap::new(),
            asserted: Vec::with_capacity(atoms.len()),
            frames: Vec::new(),
            next_frame: 0,
            stamp: Vec::with_capacity(atoms.len()),
            last_conflict: None,
        };
        for atom in atoms {
            st.add_atom(atom);
        }
        st
    }

    /// Appends a fresh problem variable and returns its (dense) index.
    /// Safe mid-session: the warm simplex state is untouched.
    pub fn add_var(&mut self) -> usize {
        let id = self.sx.add_var();
        self.var_ids.push(id);
        self.var_ids.len() - 1
    }

    /// The number of problem variables (excluding internal slacks).
    pub fn num_problem_vars(&self) -> usize {
        self.var_ids.len()
    }

    /// The number of registered atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Registers a new atom over already-added variables and returns its
    /// index. Linear forms are shared with all earlier atoms; a genuinely
    /// new form grows the warm tableau by one slack row in place.
    pub fn add_atom(&mut self, atom: &LinearAtom) -> usize {
        let (coeffs, is_eq, rhs) = atom;
        let mut canon = coeffs.clone();
        canon.sort();
        let slack = match self.slack_of.get(&canon) {
            Some(&s) => s,
            None => {
                let parts: Vec<(usize, Rat)> = canon
                    .iter()
                    .map(|&(v, c)| (self.var_ids[v], Rat::from(c)))
                    .collect();
                let s = self.sx.add_row(&parts);
                self.slack_of.insert(canon, s);
                s
            }
        };
        self.atoms.push(SlackAtom {
            slack,
            is_eq: *is_eq,
            rhs: *rhs,
        });
        self.asserted.push(None);
        self.stamp.push(u64::MAX);
        self.atoms.len() - 1
    }

    /// Records `idx`'s pre-change polarity in the innermost open frame
    /// (first touch per frame only; a no-op with no frame open).
    fn note(&mut self, idx: usize) {
        if let Some((id, entries)) = self.frames.last_mut() {
            if self.stamp[idx] != *id {
                self.stamp[idx] = *id;
                entries.push((idx, self.asserted[idx]));
            }
        }
    }

    /// Asserts atom `idx` with the given polarity. Positive `e ≤ r` adds an
    /// upper bound, negative adds the lower bound `e ≥ r+1`; equalities add
    /// both bounds positively and are ignored when negated (disequality).
    pub fn assert_atom(&mut self, idx: usize, polarity: bool) {
        if self.asserted[idx] == Some(polarity) {
            return;
        }
        self.note(idx);
        self.apply_assert(idx, polarity);
    }

    /// Asserts without recording a trail entry (shared by the public
    /// assert and pop's replay).
    fn apply_assert(&mut self, idx: usize, polarity: bool) {
        if self.asserted[idx].is_some() {
            self.apply_retract(idx);
        }
        self.asserted[idx] = Some(polarity);
        let atom = self.atoms[idx].clone();
        match (atom.is_eq, polarity) {
            (false, true) => self.add_bound(atom.slack, BoundSide::Upper, atom.rhs, idx),
            (false, false) => self.add_bound(
                atom.slack,
                BoundSide::Lower,
                atom.rhs.saturating_add(1),
                idx,
            ),
            (true, true) => {
                self.add_bound(atom.slack, BoundSide::Upper, atom.rhs, idx);
                self.add_bound(atom.slack, BoundSide::Lower, atom.rhs, idx);
            }
            (true, false) => {} // disequality: not representable as a bound
        }
    }

    /// Retracts atom `idx` (no-op if not asserted).
    pub fn retract_atom(&mut self, idx: usize) {
        if self.asserted[idx].is_none() {
            return;
        }
        self.note(idx);
        self.apply_retract(idx);
    }

    /// Retracts without recording a trail entry (shared by the public
    /// retract and pop's replay).
    fn apply_retract(&mut self, idx: usize) {
        let Some(polarity) = self.asserted[idx].take() else {
            return;
        };
        let atom = self.atoms[idx].clone();
        match (atom.is_eq, polarity) {
            (false, true) => self.remove_bound(atom.slack, BoundSide::Upper, atom.rhs, idx),
            (false, false) => self.remove_bound(
                atom.slack,
                BoundSide::Lower,
                atom.rhs.saturating_add(1),
                idx,
            ),
            (true, true) => {
                self.remove_bound(atom.slack, BoundSide::Upper, atom.rhs, idx);
                self.remove_bound(atom.slack, BoundSide::Lower, atom.rhs, idx);
            }
            (true, false) => {}
        }
    }

    fn add_bound(&mut self, var: usize, side: BoundSide, value: i64, atom: usize) {
        let entry = self.active.entry(var).or_default();
        let map = match side {
            BoundSide::Lower => &mut entry.lowers,
            BoundSide::Upper => &mut entry.uppers,
        };
        map.entry(value).or_default().push(atom);
        self.sync_bound(var, side);
    }

    fn remove_bound(&mut self, var: usize, side: BoundSide, value: i64, atom: usize) {
        if let Some(entry) = self.active.get_mut(&var) {
            let map = match side {
                BoundSide::Lower => &mut entry.lowers,
                BoundSide::Upper => &mut entry.uppers,
            };
            if let Some(cell) = map.get_mut(&value) {
                // Remove exactly this atom's assertion so the remaining ids
                // always point at still-asserted atoms (justifications stay
                // sound).
                if let Some(pos) = cell.iter().position(|&a| a == atom) {
                    cell.remove(pos);
                }
                if cell.is_empty() {
                    map.remove(&value);
                }
            }
        }
        self.sync_bound(var, side);
    }

    /// Rewrites the simplex bound of `var` on `side` to the effective
    /// (tightest) active value: clear the side first (pure loosening keeps
    /// the assignment feasible), then re-tighten through the checked API so
    /// nonbasic values are repaired.
    fn sync_bound(&mut self, var: usize, side: BoundSide) {
        let entry = self.active.entry(var).or_default();
        match side {
            BoundSide::Lower => {
                let eff = entry.lowers.keys().next_back().copied().map(Rat::from);
                let upper = self.sx.bounds(var).1.cloned();
                self.sx.set_bounds_raw(var, None, upper);
                if let Some(b) = eff {
                    self.sx.set_lower(var, b);
                }
            }
            BoundSide::Upper => {
                let eff = entry.uppers.keys().next().copied().map(Rat::from);
                let lower = self.sx.bounds(var).0.cloned();
                self.sx.set_bounds_raw(var, lower, None);
                if let Some(b) = eff {
                    self.sx.set_upper(var, b);
                }
            }
        }
    }

    /// Checks rational feasibility of the asserted bounds. On conflict,
    /// returns the asserted atom indices of a Farkas explanation.
    ///
    /// Disequalities participate when the bounds *pin* their form to the
    /// forbidden value: `e ≠ r` with `r ≤ e ≤ r` is an immediate conflict
    /// whose core is the disequality plus the two pinning bounds.
    pub fn check(&mut self) -> Result<(), Vec<usize>> {
        self.check_budgeted(u64::MAX, &mut || true)
            .expect("an unlimited feasibility check cannot give up")
    }

    /// [`IncLra::check`] under a pivot budget: gives up (`None`) after
    /// `max_pivots` simplex pivots or when `poll` returns `false`. A `Some`
    /// answer is exact; `None` means the caller should fall back to its
    /// authoritative (budgeted) full check rather than trust this one.
    pub fn check_budgeted(
        &mut self,
        max_pivots: u64,
        poll: &mut dyn FnMut() -> bool,
    ) -> Option<Result<(), Vec<usize>>> {
        match self.sx.check_budgeted(max_pivots, poll)? {
            Ok(()) => {
                for idx in 0..self.atoms.len() {
                    if self.asserted[idx] != Some(false) || !self.atoms[idx].is_eq {
                        continue;
                    }
                    let slack = self.atoms[idx].slack;
                    let r = Rat::from(self.atoms[idx].rhs);
                    let (l, u) = self.sx.bounds(slack);
                    if l == Some(&r) && u == Some(&r) {
                        let mut core = vec![idx];
                        if let Some(entry) = self.active.get(&slack) {
                            if let Some(a) = entry
                                .lowers
                                .iter()
                                .next_back()
                                .and_then(|(_, v)| v.last().copied())
                            {
                                if !core.contains(&a) {
                                    core.push(a);
                                }
                            }
                            if let Some(a) = entry
                                .uppers
                                .iter()
                                .next()
                                .and_then(|(_, v)| v.last().copied())
                            {
                                if !core.contains(&a) {
                                    core.push(a);
                                }
                            }
                        }
                        self.last_conflict = Some(TheoryCertificate {
                            kind: "pinned-diseq",
                            atoms: core.clone(),
                        });
                        return Some(Err(core));
                    }
                }
                self.last_conflict = None;
                Some(Ok(()))
            }
            Err(expl) => {
                let mut atoms: Vec<usize> = Vec::new();
                for (var, side) in expl {
                    let Some(entry) = self.active.get(&var) else {
                        continue; // structural bound (none here)
                    };
                    let justifying = match side {
                        BoundSide::Lower => entry
                            .lowers
                            .iter()
                            .next_back()
                            .and_then(|(_, v)| v.last().copied()),
                        BoundSide::Upper => entry
                            .uppers
                            .iter()
                            .next()
                            .and_then(|(_, v)| v.last().copied()),
                    };
                    if let Some(a) = justifying {
                        if !atoms.contains(&a) {
                            atoms.push(a);
                        }
                    }
                }
                self.last_conflict = Some(TheoryCertificate {
                    kind: "farkas",
                    atoms: atoms.clone(),
                });
                Some(Err(atoms))
            }
        }
    }

    /// The currently asserted polarity of an atom.
    pub fn polarity(&self, idx: usize) -> Option<bool> {
        self.asserted[idx]
    }
}

impl TheorySolver for IncrementalLra {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn add_var(&mut self) -> usize {
        IncrementalLra::add_var(self)
    }

    fn num_vars(&self) -> usize {
        self.num_problem_vars()
    }

    fn add_atom(&mut self, atom: &LinearAtom) -> Option<usize> {
        // The simplex fragment is all of linear arithmetic: never rejects.
        Some(IncrementalLra::add_atom(self, atom))
    }

    fn num_atoms(&self) -> usize {
        IncrementalLra::num_atoms(self)
    }

    fn assert_atom(&mut self, idx: usize, polarity: bool) {
        IncrementalLra::assert_atom(self, idx, polarity);
    }

    fn retract_atom(&mut self, idx: usize) {
        IncrementalLra::retract_atom(self, idx);
    }

    fn polarity(&self, idx: usize) -> Option<bool> {
        IncrementalLra::polarity(self, idx)
    }

    fn push(&mut self) {
        let id = self.next_frame;
        self.next_frame += 1;
        self.frames.push((id, Vec::new()));
    }

    fn pop(&mut self) {
        let Some((_, entries)) = self.frames.pop() else {
            return;
        };
        for (idx, prev) in entries.into_iter().rev() {
            // Replay without noting: the enclosing frame's records for
            // these atoms (taken before this frame opened, if any) remain
            // correct.
            match prev {
                Some(pol) => {
                    if self.asserted[idx] != Some(pol) {
                        self.apply_assert(idx, pol);
                    }
                }
                None => self.apply_retract(idx),
            }
        }
    }

    fn check(
        &mut self,
        max_steps: u64,
        poll: &mut dyn FnMut() -> bool,
    ) -> Option<Result<(), Vec<usize>>> {
        self.check_budgeted(max_steps, poll)
    }

    fn explain_conflict(&self) -> Option<TheoryCertificate> {
        self.last_conflict.clone()
    }

    fn search_work(&self) -> u64 {
        self.sx.pivots_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// atoms over x (var 0): a0: x ≤ 5, a1: x ≤ 2, a2: x = 7 (as eq)
    fn state() -> IncrementalLra {
        IncrementalLra::new(
            1,
            &[
                (vec![(0, 1)], false, 5),
                (vec![(0, 1)], false, 2),
                (vec![(0, 1)], true, 7),
            ],
        )
    }

    #[test]
    fn assert_and_check_sat() {
        let mut st = state();
        st.assert_atom(0, true); // x <= 5
        assert!(st.check().is_ok());
        st.assert_atom(1, false); // x >= 3
        assert!(st.check().is_ok());
    }

    #[test]
    fn conflict_has_explanation() {
        let mut st = state();
        st.assert_atom(1, true); // x <= 2
        st.assert_atom(2, true); // x = 7
        let core = st.check().expect_err("conflict");
        assert!(core.contains(&1) && core.contains(&2), "{core:?}");
    }

    #[test]
    fn retract_restores_feasibility() {
        let mut st = state();
        st.assert_atom(1, true); // x <= 2
        st.assert_atom(2, true); // x = 7
        assert!(st.check().is_err());
        st.retract_atom(1);
        assert!(st.check().is_ok());
        // Re-assert: conflict returns.
        st.assert_atom(1, true);
        assert!(st.check().is_err());
    }

    #[test]
    fn nested_bounds_keep_effective() {
        let mut st = state();
        st.assert_atom(0, true); // x <= 5
        st.assert_atom(1, true); // x <= 2 (tighter)
        st.retract_atom(1); // back to x <= 5
        st.assert_atom(2, true); // x = 7 conflicts with x <= 5
        let core = st.check().expect_err("conflict");
        assert!(core.contains(&0), "core {core:?} must cite x <= 5");
        st.retract_atom(0);
        assert!(st.check().is_ok());
    }

    #[test]
    fn disequalities_ignored() {
        let mut st = state();
        st.assert_atom(2, false); // x ≠ 7: no rational content
        assert!(st.check().is_ok());
        assert_eq!(st.polarity(2), Some(false));
    }

    #[test]
    fn shared_linear_forms_one_slack() {
        // Two atoms on the same form x+y and one on 2x.
        let mut st = IncrementalLra::new(
            2,
            &[
                (vec![(0, 1), (1, 1)], false, 4),
                (vec![(1, 1), (0, 1)], false, 9),
                (vec![(0, 2)], false, 0),
            ],
        );
        st.assert_atom(0, false); // x+y >= 5
        st.assert_atom(1, true); // x+y <= 9
        st.assert_atom(2, true); // 2x <= 0
        assert!(st.check().is_ok());
        st.assert_atom(1, false); // flip: x+y >= 10 — still sat (y free)
        assert!(st.check().is_ok());
    }

    #[test]
    fn warm_growth_adds_vars_and_atoms() {
        let mut st = IncrementalLra::new(1, &[(vec![(0, 1)], false, 5)]);
        st.assert_atom(0, true); // x <= 5
        assert!(st.check().is_ok());
        // Grow mid-session: y's simplex id lands after x's slack, but the
        // caller-facing index stays dense.
        let y = st.add_var();
        assert_eq!(y, 1);
        assert_eq!(st.num_problem_vars(), 2);
        let a1 = st.add_atom(&(vec![(0, 1), (1, -1)], false, 0)); // x - y <= 0
        let a2 = st.add_atom(&(vec![(1, 1)], false, 5)); // y <= 5
        st.assert_atom(a1, false); // x - y >= 1
        st.assert_atom(a2, false); // y >= 6
        let core = st.check().expect_err("x<=5, x>=y+1, y>=6 is unsat");
        assert!(
            core.contains(&0) && core.contains(&a1) && core.contains(&a2),
            "{core:?}"
        );
        st.retract_atom(a2);
        assert!(st.check().is_ok());
        // A repeated linear form shares its slack with the earlier atom.
        let before = st.num_atoms();
        let a3 = st.add_atom(&(vec![(0, 1)], false, 100)); // x <= 100
        assert_eq!(st.num_atoms(), before + 1);
        st.assert_atom(a3, true);
        assert!(st.check().is_ok());
    }

    /// The trait-level push/pop restores exact assertion state, including
    /// across polarity flips, and `explain_conflict` reports the Farkas
    /// certificate of the latest conflict.
    #[test]
    fn trait_push_pop_and_certificates() {
        let mut st = state();
        st.assert_atom(0, true); // x <= 5
        TheorySolver::push(&mut st);
        st.assert_atom(0, false); // flip: x >= 6
        st.assert_atom(2, true); // x = 7
        assert!(st.check().is_ok());
        TheorySolver::push(&mut st);
        st.assert_atom(1, true); // x <= 2: conflict with x = 7
        assert!(st.check().is_err());
        let cert = st.explain_conflict().expect("certificate");
        assert_eq!(cert.kind, "farkas");
        assert!(cert.atoms.contains(&1) && cert.atoms.contains(&2));
        TheorySolver::pop(&mut st);
        assert_eq!(st.polarity(1), None);
        assert_eq!(st.polarity(0), Some(false));
        assert!(st.check().is_ok());
        TheorySolver::pop(&mut st);
        assert_eq!(st.polarity(0), Some(true));
        assert_eq!(st.polarity(2), None);
        assert!(st.check().is_ok());
        assert!(st.explain_conflict().is_none(), "cleared on success");
    }

    #[test]
    fn multi_var_conflict() {
        // x - y >= 1 and y - x >= 1 is rationally unsat.
        let mut st = IncrementalLra::new(
            2,
            &[
                (vec![(0, 1), (1, -1)], false, 0),
                (vec![(0, -1), (1, 1)], false, 0),
            ],
        );
        st.assert_atom(0, false); // x - y >= 1
        st.assert_atom(1, false); // y - x >= 1
        let core = st.check().expect_err("conflict");
        assert_eq!(core.len(), 2, "{core:?}");
    }
}
