//! Arbitrary-precision signed integers.
//!
//! The simplex core pivots with exact rational arithmetic; coefficient growth
//! during pivoting routinely exceeds `i128`, so `smtkit` carries its own
//! compact sign-magnitude big integer (limbs are `u64`, little-endian).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A signed arbitrary-precision integer.
///
/// # Examples
///
/// ```
/// use smtkit::BigInt;
/// let a = BigInt::from(1i64 << 62);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "21267647932558653966460912964485513216");
/// assert_eq!(&b % &a, BigInt::from(0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    /// `false` = non-negative. Zero is always non-negative with empty limbs.
    negative: bool,
    /// Little-endian base-2^64 magnitude, no trailing zero limbs.
    limbs: Vec<u64>,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> BigInt {
        BigInt {
            negative: false,
            limbs: Vec::new(),
        }
    }

    /// One.
    pub fn one() -> BigInt {
        BigInt::from(1i64)
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Whether this is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.negative && !self.is_zero()
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.negative {
            -1
        } else {
            1
        }
    }

    /// The absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            negative: false,
            limbs: self.limbs.clone(),
        }
    }

    fn trim(mut limbs: Vec<u64>, negative: bool) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        let negative = negative && !limbs.is_empty();
        BigInt { negative, limbs }
    }

    fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &digit) in long.iter().enumerate() {
            let s = short.get(i).copied().unwrap_or(0);
            let (x, c1) = digit.overflowing_add(s);
            let (y, c2) = x.overflowing_add(carry);
            out.push(y);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    /// Requires `a >= b` in magnitude.
    fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(BigInt::mag_cmp(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &digit) in a.iter().enumerate() {
            let s = b.get(i).copied().unwrap_or(0);
            let (x, b1) = digit.overflowing_sub(s);
            let (y, b2) = x.overflowing_sub(borrow);
            out.push(y);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(x) * u128::from(y) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    /// Magnitude division: returns (quotient, remainder) with `r < d`.
    /// Schoolbook long division, limb by limb using a bit-shift loop for the
    /// multi-limb case.
    fn mag_divmod(n: &[u64], d: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!d.is_empty(), "division by zero");
        match BigInt::mag_cmp(n, d) {
            Ordering::Less => return (Vec::new(), n.to_vec()),
            Ordering::Equal => return (vec![1], Vec::new()),
            Ordering::Greater => {}
        }
        if d.len() == 1 {
            // Fast path: single-limb divisor.
            let dv = u128::from(d[0]);
            let mut q = vec![0u64; n.len()];
            let mut rem: u128 = 0;
            for i in (0..n.len()).rev() {
                let cur = (rem << 64) | u128::from(n[i]);
                q[i] = (cur / dv) as u64;
                rem = cur % dv;
            }
            let mut r = Vec::new();
            if rem > 0 {
                r.push(rem as u64);
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            return (q, r);
        }
        // General case: binary long division over the bits of n.
        let nbits = n.len() * 64;
        let mut q = vec![0u64; n.len()];
        let mut r: Vec<u64> = Vec::new();
        for bit in (0..nbits).rev() {
            // r <<= 1; r |= bit of n
            let mut carry = (n[bit / 64] >> (bit % 64)) & 1;
            for limb in r.iter_mut() {
                let new_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = new_carry;
            }
            if carry > 0 {
                r.push(carry);
            }
            if BigInt::mag_cmp(&r, d) != Ordering::Less {
                r = BigInt::mag_sub(&r, d);
                while r.last() == Some(&0) {
                    r.pop();
                }
                q[bit / 64] |= 1 << (bit % 64);
            }
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, r)
    }

    /// Truncated division and remainder (like Rust's `/` and `%` on
    /// primitives): the quotient rounds toward zero and the remainder has
    /// the sign of the dividend.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = BigInt::mag_divmod(&self.limbs, &other.limbs);
        let q = BigInt::trim(q, self.negative != other.negative);
        let r = BigInt::trim(r, self.negative);
        (q, r)
    }

    /// Floor division: the quotient rounds toward negative infinity (the
    /// convention needed for branch-and-bound cuts).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_floor(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (self.negative != other.negative) {
            &q - &BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling division: the quotient rounds toward positive infinity.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_ceil(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (self.negative == other.negative) {
            &q + &BigInt::one()
        } else {
            q
        }
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r.abs();
        }
        a
    }

    /// Converts to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => {
                let m = self.limbs[0];
                if self.negative {
                    if m <= (1u64 << 63) {
                        Some((m as i64).wrapping_neg())
                    } else {
                        None
                    }
                } else if m <= i64::MAX as u64 {
                    Some(m as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Number of bits in the magnitude (0 for zero). A cheap size proxy used
    /// to cap coefficient blow-up.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }
}

impl From<i64> for BigInt {
    fn from(n: i64) -> BigInt {
        if n == 0 {
            BigInt::zero()
        } else {
            BigInt {
                negative: n < 0,
                limbs: vec![n.unsigned_abs()],
            }
        }
    }
}

impl From<i128> for BigInt {
    fn from(n: i128) -> BigInt {
        if n == 0 {
            return BigInt::zero();
        }
        let mag = n.unsigned_abs();
        let lo = mag as u64;
        let hi = (mag >> 64) as u64;
        let limbs = if hi == 0 { vec![lo] } else { vec![lo, hi] };
        BigInt {
            negative: n < 0,
            limbs,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            negative: !self.negative && !self.is_zero(),
            limbs: self.limbs.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -&self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        if self.negative == other.negative {
            BigInt::trim(BigInt::mag_add(&self.limbs, &other.limbs), self.negative)
        } else {
            match BigInt::mag_cmp(&self.limbs, &other.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::trim(BigInt::mag_sub(&self.limbs, &other.limbs), self.negative)
                }
                Ordering::Less => {
                    BigInt::trim(BigInt::mag_sub(&other.limbs, &self.limbs), other.negative)
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        BigInt::trim(
            BigInt::mag_mul(&self.limbs, &other.limbs),
            self.negative != other.negative,
        )
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, other: BigInt) -> BigInt {
        &self + &other
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, other: BigInt) -> BigInt {
        &self - &other
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, other: BigInt) -> BigInt {
        &self * &other
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl std::ops::Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.div_rem(other).1
    }
}

impl std::ops::Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.div_rem(other).0
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => BigInt::mag_cmp(&self.limbs, &other.limbs),
            (true, true) => BigInt::mag_cmp(&other.limbs, &self.limbs),
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits: Vec<String> = Vec::new();
        let mut cur = self.limbs.clone();
        let chunk = [CHUNK];
        while !cur.is_empty() {
            let (q, r) = BigInt::mag_divmod(&cur, &chunk);
            digits.push(r.first().copied().unwrap_or(0).to_string());
            cur = q;
        }
        if self.negative {
            f.write_str("-")?;
        }
        // The most significant chunk prints unpadded; the rest are padded to
        // 19 digits.
        let last = digits.pop().expect("nonzero");
        f.write_str(&last)?;
        for d in digits.iter().rev() {
            write!(f, "{d:0>19}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl Default for BigInt {
    fn default() -> BigInt {
        BigInt::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(n: i128) -> BigInt {
        BigInt::from(n)
    }

    #[test]
    fn construction_and_signs() {
        assert!(bi(0).is_zero());
        assert!(!bi(0).is_negative());
        assert!(bi(-3).is_negative());
        assert!(bi(3).is_positive());
        assert_eq!(bi(0).signum(), 0);
        assert_eq!(bi(-9).signum(), -1);
        assert_eq!(bi(9).signum(), 1);
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(&bi(2) + &bi(3), bi(5));
        assert_eq!(&bi(2) - &bi(3), bi(-1));
        assert_eq!(&bi(-2) + &bi(-3), bi(-5));
        assert_eq!(&bi(-2) - &bi(-3), bi(1));
        assert_eq!(&bi(5) + &bi(-5), bi(0));
    }

    #[test]
    fn mul_small() {
        assert_eq!(&bi(7) * &bi(-6), bi(-42));
        assert_eq!(&bi(0) * &bi(-6), bi(0));
        assert_eq!(&bi(-7) * &bi(-6), bi(42));
    }

    #[test]
    fn carries_across_limbs() {
        let max = bi(u64::MAX as i128);
        assert_eq!(&max + &bi(1), bi(u64::MAX as i128 + 1));
        let big = &max * &max;
        assert_eq!(
            big.to_string(),
            (u64::MAX as u128 * u64::MAX as u128).to_string()
        );
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        assert_eq!(bi(7).div_rem(&bi(2)), (bi(3), bi(1)));
        assert_eq!(bi(-7).div_rem(&bi(2)), (bi(-3), bi(-1)));
        assert_eq!(bi(7).div_rem(&bi(-2)), (bi(-3), bi(1)));
        assert_eq!(bi(-7).div_rem(&bi(-2)), (bi(3), bi(-1)));
    }

    #[test]
    fn floor_and_ceil_division() {
        assert_eq!(bi(7).div_floor(&bi(2)), bi(3));
        assert_eq!(bi(-7).div_floor(&bi(2)), bi(-4));
        assert_eq!(bi(7).div_ceil(&bi(2)), bi(4));
        assert_eq!(bi(-7).div_ceil(&bi(2)), bi(-3));
        assert_eq!(bi(6).div_floor(&bi(2)), bi(3));
        assert_eq!(bi(6).div_ceil(&bi(2)), bi(3));
        assert_eq!(bi(-6).div_floor(&bi(-2)), bi(3));
    }

    #[test]
    fn multi_limb_division() {
        let n = BigInt::from(123_456_789_012_345_678_901_234_567i128);
        let d = BigInt::from(987_654_321_987i128);
        let (q, r) = n.div_rem(&d);
        // cross-check with i128 arithmetic
        let nn = 123_456_789_012_345_678_901_234_567i128;
        let dd = 987_654_321_987i128;
        assert_eq!(q, BigInt::from(nn / dd));
        assert_eq!(r, BigInt::from(nn % dd));
    }

    #[test]
    fn division_reconstructs() {
        let cases: &[(i128, i128)] = &[
            (i128::from(i64::MAX) * 37 + 11, 37),
            (-12345678901234567890123456789, 98765432109),
            (5, 100),
            (100, 5),
        ];
        for &(n, d) in cases {
            let (q, r) = BigInt::from(n).div_rem(&BigInt::from(d));
            assert_eq!(&(&q * &BigInt::from(d)) + &r, BigInt::from(n), "{n}/{d}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = bi(1).div_rem(&bi(0));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(5).gcd(&bi(0)), bi(5));
        assert_eq!(bi(7).gcd(&bi(13)), bi(1));
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-4));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(100) > bi(99));
        let big = BigInt::from(i64::MAX).pow(3);
        assert!(big > bi(i128::MAX));
        assert!(-&big < bi(i128::MIN));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(bi(0).to_i64(), Some(0));
        assert_eq!(bi(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(bi(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(bi(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(bi(i64::MIN as i128 - 1).to_i64(), None);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
            "999999999999999999999999999999",
        ] {
            // parse by repeated mul/add
            let neg = s.starts_with('-');
            let digits = s.trim_start_matches('-');
            let mut v = BigInt::zero();
            for ch in digits.chars() {
                v = &(&v * &bi(10)) + &bi(i128::from(ch.to_digit(10).unwrap()));
            }
            if neg {
                v = -v;
            }
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn bits_and_pow() {
        assert_eq!(bi(0).bits(), 0);
        assert_eq!(bi(1).bits(), 1);
        assert_eq!(bi(255).bits(), 8);
        assert_eq!(bi(256).bits(), 9);
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(10).pow(0), bi(1));
        assert_eq!(bi(-3).pow(3), bi(-27));
        assert_eq!(bi(2).pow(100).bits(), 101);
    }

    #[test]
    fn assign_ops() {
        let mut a = bi(10);
        a += &bi(5);
        assert_eq!(a, bi(15));
        a -= &bi(20);
        assert_eq!(a, bi(-5));
        a *= &bi(-3);
        assert_eq!(a, bi(15));
    }
}

impl From<i32> for BigInt {
    fn from(n: i32) -> BigInt {
        BigInt::from(i64::from(n))
    }
}

impl From<u32> for BigInt {
    fn from(n: u32) -> BigInt {
        BigInt::from(i64::from(n))
    }
}

impl BigInt {
    /// Extended Euclid: returns `(g, s, t)` with `a·s + b·t = g = gcd(a, b)`
    /// and `g ≥ 0`.
    pub fn extended_gcd(a: &BigInt, b: &BigInt) -> (BigInt, BigInt, BigInt) {
        let (mut old_r, mut r) = (a.clone(), b.clone());
        let (mut old_s, mut s) = (BigInt::one(), BigInt::zero());
        let (mut old_t, mut t) = (BigInt::zero(), BigInt::one());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let ns = &old_s - &(&q * &s);
            old_s = std::mem::replace(&mut s, ns);
            let nt = &old_t - &(&q * &t);
            old_t = std::mem::replace(&mut t, nt);
        }
        if old_r.is_negative() {
            (-&old_r, -&old_s, -&old_t)
        } else {
            (old_r, old_s, old_t)
        }
    }
}

#[cfg(test)]
mod ext_gcd_tests {
    use super::*;

    #[test]
    fn extended_gcd_identity() {
        for (a, b) in [
            (3i64, 2),
            (12, 18),
            (-15, 35),
            (7, 0),
            (0, 5),
            (1, 1),
            (-4, -6),
        ] {
            let (g, s, t) = BigInt::extended_gcd(&BigInt::from(a), &BigInt::from(b));
            assert!(!g.is_negative());
            let lhs = &(&BigInt::from(a) * &s) + &(&BigInt::from(b) * &t);
            assert_eq!(lhs, g, "a={a} b={b}");
            if a != 0 || b != 0 {
                assert_eq!(g, BigInt::from(a).gcd(&BigInt::from(b)));
            }
        }
    }
}
