//! Exact rational arithmetic over [`BigInt`], used by the simplex core.

use crate::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number, always normalized (`den > 0`, `gcd(num, den) = 1`,
/// zero is `0/1`).
///
/// # Examples
///
/// ```
/// use smtkit::Rat;
/// let half = Rat::new(1.into(), 2.into());
/// let third = Rat::new(1.into(), 3.into());
/// assert_eq!((&half + &third).to_string(), "5/6");
/// assert!(half > third);
/// assert_eq!(half.floor(), 0.into());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    den: BigInt, // invariant: positive
}

impl Rat {
    /// Creates the rational `num/den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rat {
                num: BigInt::zero(),
                den: BigInt::one(),
            };
        }
        let g = num.gcd(&den);
        let mut num = &num / &g;
        let mut den = &den / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Zero.
    pub fn zero() -> Rat {
        Rat {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// One.
    pub fn one() -> Rat {
        Rat {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// The numerator (sign-carrying).
    pub fn num(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (always positive).
    pub fn den(&self) -> &BigInt {
        &self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Largest integer `≤ self`.
    pub fn floor(&self) -> BigInt {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(&self) -> BigInt {
        self.num.div_ceil(&self.den)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }
}

impl From<BigInt> for Rat {
    fn from(n: BigInt) -> Rat {
        Rat {
            num: n,
            den: BigInt::one(),
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::from(BigInt::from(n))
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, other: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, other: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &other.den) - &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, other: &Rat) -> Rat {
        Rat::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "rational division by zero");
        Rat::new(&self.num * &other.den, &self.den * &other.num)
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        -&self
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, other: Rat) -> Rat {
        &self + &other
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, other: Rat) -> Rat {
        &self - &other
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, other: Rat) -> Rat {
        &self * &other
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, other: Rat) -> Rat {
        &self / &other
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b vs c/d with b,d > 0: compare a*d vs c*b.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rat::zero());
        assert!(r(1, -2).is_negative());
        assert!(r(-1, -2).is_positive());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 3), r(1, 2));
        assert_eq!(-&r(1, 2), r(-1, 2));
    }

    #[test]
    fn comparison() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rat::one());
        assert!(r(-5, 2) < r(5, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), 3.into());
        assert_eq!(r(7, 2).ceil(), 4.into());
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(r(6, 2).floor(), 3.into());
        assert_eq!(r(6, 2).ceil(), 3.into());
        assert!(r(6, 2).is_integer());
        assert!(!r(7, 2).is_integer());
    }

    #[test]
    fn recip_and_signum() {
        assert_eq!(r(2, 3).recip(), r(3, 2));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
        assert_eq!(r(0, 1).signum(), 0);
        assert_eq!(r(-3, 5).signum(), -1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1.into(), 0.into());
    }

    #[test]
    fn display() {
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn field_laws_spot_check() {
        let vals = [r(1, 2), r(-2, 3), r(5, 1), r(0, 1), r(-7, 4)];
        for a in &vals {
            for b in &vals {
                assert_eq!(&(a + b), &(b + a), "commutativity");
                assert_eq!(&(a - b), &-&(b - a), "antisymmetry");
                for c in &vals {
                    assert_eq!((a + b) + c.clone(), a.clone() + (b + c).clone());
                    assert_eq!(
                        a * &(b + c),
                        (a * b) + (a * c),
                        "distributivity {a} {b} {c}"
                    );
                }
            }
        }
    }
}
