//! Property-based tests: arithmetic laws against `i128` references,
//! SAT-solver agreement with brute force, LIA agreement with box
//! enumeration, and model soundness of the full SMT pipeline.

use proptest::prelude::*;
use smtkit::{
    check_lia, BigInt, LiaResult, LinCon, Lit, Rat, Rel, SatResult, SatSolver, SmtResult, SmtSolver,
};
use sygus_ast::{Definitions, Env, Symbol, Term, Value};

// ---------------------------------------------------------------------------
// BigInt vs i128
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let expect = i128::from(a) + i128::from(b);
        prop_assert_eq!(&BigInt::from(a) + &BigInt::from(b), BigInt::from(expect));
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let expect = i128::from(a) * i128::from(b);
        prop_assert_eq!(&BigInt::from(a) * &BigInt::from(b), BigInt::from(expect));
    }

    #[test]
    fn bigint_divrem_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |b| *b != 0)) {
        let (q, r) = BigInt::from(a).div_rem(&BigInt::from(b));
        prop_assert_eq!(q, BigInt::from(i128::from(a) / i128::from(b)));
        prop_assert_eq!(r, BigInt::from(i128::from(a) % i128::from(b)));
    }

    #[test]
    fn bigint_floor_div_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |b| *b != 0)) {
        let expect = i128::from(a).div_euclid(i128::from(b))
            + if i128::from(b) < 0 && i128::from(a).rem_euclid(i128::from(b)) != 0 { -1 } else { 0 };
        // div_euclid rounds toward -inf only for positive divisors; compute
        // floor directly instead:
        let fa = i128::from(a);
        let fb = i128::from(b);
        let mut fl = fa / fb;
        if fa % fb != 0 && ((fa < 0) != (fb < 0)) {
            fl -= 1;
        }
        let _ = expect;
        prop_assert_eq!(BigInt::from(a).div_floor(&BigInt::from(b)), BigInt::from(fl));
    }

    #[test]
    fn bigint_ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), a.cmp(&b));
    }

    #[test]
    fn bigint_display_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let big = &BigInt::from(a) * &BigInt::from(b);
        prop_assert_eq!(big.to_string(), (i128::from(a) * i128::from(b)).to_string());
    }

    #[test]
    fn bigint_gcd_divides_both(a in any::<i32>(), b in any::<i32>()) {
        let g = BigInt::from(i64::from(a)).gcd(&BigInt::from(i64::from(b)));
        if !g.is_zero() {
            prop_assert!((&BigInt::from(i64::from(a)) % &g).is_zero());
            prop_assert!((&BigInt::from(i64::from(b)) % &g).is_zero());
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Rat laws
// ---------------------------------------------------------------------------

fn rat_strategy() -> impl Strategy<Value = Rat> {
    (any::<i32>(), 1i32..1000).prop_map(|(n, d)| Rat::new(i64::from(n).into(), i64::from(d).into()))
}

proptest! {
    #[test]
    fn rat_add_commutes(a in rat_strategy(), b in rat_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn rat_mul_distributes(a in rat_strategy(), b in rat_strategy(), c in rat_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn rat_sub_then_add_roundtrips(a in rat_strategy(), b in rat_strategy()) {
        prop_assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in rat_strategy()) {
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rat::one());
    }

    #[test]
    fn rat_recip_of_nonzero(a in rat_strategy().prop_filter("nonzero", |a| !a.is_zero())) {
        prop_assert_eq!(&a * &a.recip(), Rat::one());
    }
}

// ---------------------------------------------------------------------------
// SAT vs brute force
// ---------------------------------------------------------------------------

fn clause_strategy(nvars: u32) -> impl Strategy<Value = Vec<Lit>> {
    proptest::collection::vec((0..nvars, any::<bool>()), 1..=3)
        .prop_map(|lits| lits.into_iter().map(|(v, n)| Lit::new(v, n)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn sat_matches_bruteforce(
        nvars in 2u32..8,
        clauses in proptest::collection::vec(clause_strategy(8), 1..24),
    ) {
        let clauses: Vec<Vec<Lit>> = clauses
            .into_iter()
            .map(|c| c.into_iter().map(|l| Lit::new(l.var() % nvars, l.is_neg())).collect())
            .collect();
        let mut brute_sat = false;
        'outer: for bits in 0u32..(1 << nvars) {
            for c in &clauses {
                if !c.iter().any(|l| ((bits >> l.var()) & 1 == 1) != l.is_neg()) {
                    continue 'outer;
                }
            }
            brute_sat = true;
            break;
        }
        let mut s = SatSolver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c.clone());
        }
        match s.solve(None) {
            SatResult::Sat(m) => {
                prop_assert!(brute_sat);
                for c in &clauses {
                    prop_assert!(c.iter().any(|l| m[l.var() as usize] != l.is_neg()));
                }
            }
            SatResult::Unsat => prop_assert!(!brute_sat),
        }
    }
}

// ---------------------------------------------------------------------------
// Proof-logged SAT: every unsat answer carries a checkable refutation, every
// sat answer a model the trace's live clauses accept.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn sat_answers_are_certified(
        nvars in 2u32..8,
        clauses in proptest::collection::vec(clause_strategy(8), 1..24),
    ) {
        let clauses: Vec<Vec<Lit>> = clauses
            .into_iter()
            .map(|c| c.into_iter().map(|l| Lit::new(l.var() % nvars, l.is_neg())).collect())
            .collect();
        let mut s = SatSolver::new();
        s.enable_proof();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c.clone());
        }
        match s.solve(None) {
            SatResult::Unsat => {
                let stats = smtkit::check_refutation(s.proof_steps())
                    .expect("unsat trace must pass the DRAT checker");
                prop_assert_eq!(stats.inputs, clauses.len());
            }
            SatResult::Sat(m) => {
                prop_assert!(
                    smtkit::model_satisfies(s.proof_steps(), &m),
                    "model must satisfy every live traced clause"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// LIA vs box enumeration
// ---------------------------------------------------------------------------

fn lincon_strategy(nvars: usize) -> impl Strategy<Value = LinCon> {
    (
        proptest::collection::vec((-3i64..=3).prop_map(|c| c), nvars),
        prop_oneof![Just(Rel::Le), Just(Rel::Ge), Just(Rel::Eq)],
        -6i64..=6,
    )
        .prop_map(move |(coeffs, rel, rhs)| {
            LinCon::new(
                &coeffs.into_iter().enumerate().collect::<Vec<_>>(),
                rel,
                rhs,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn lia_matches_box_enumeration(
        cons in proptest::collection::vec(lincon_strategy(2), 1..6),
    ) {
        // Brute force over the box [-8, 8]^2; restrict the solver to the
        // same box so the answers are comparable.
        let mut boxed = cons.clone();
        for v in 0..2 {
            boxed.push(LinCon::new(&[(v, 1)], Rel::Ge, -8));
            boxed.push(LinCon::new(&[(v, 1)], Rel::Le, 8));
        }
        let mut brute_sat = false;
        'outer: for x in -8i64..=8 {
            for y in -8i64..=8 {
                let point = [BigInt::from(x), BigInt::from(y)];
                if cons.iter().all(|c| c.holds_on(&point)) {
                    brute_sat = true;
                    break 'outer;
                }
            }
        }
        match check_lia(2, &boxed, 200_000) {
            LiaResult::Sat(m) => {
                prop_assert!(brute_sat, "solver sat but box has no solution");
                for c in &boxed {
                    prop_assert!(c.holds_on(&m), "model violates {c}");
                }
            }
            LiaResult::Unsat => prop_assert!(!brute_sat, "solver unsat but box has a solution"),
            LiaResult::Unknown => prop_assert!(false, "budget must suffice for this size"),
        }
    }
}

// ---------------------------------------------------------------------------
// Full SMT pipeline: random small formulas, model soundness + agreement with
// exhaustive evaluation over a box.
// ---------------------------------------------------------------------------

fn var_x() -> Term {
    Term::int_var("px")
}
fn var_y() -> Term {
    Term::int_var("py")
}

fn atom_strategy() -> impl Strategy<Value = Term> {
    (-3i64..=3, -3i64..=3, -5i64..=5, 0usize..5).prop_map(|(a, b, c, rel)| {
        let lhs = Term::add(
            Term::scale(a, var_x()),
            Term::add(Term::scale(b, var_y()), Term::int(c)),
        );
        let rhs = Term::int(0);
        match rel {
            0 => Term::le(lhs, rhs),
            1 => Term::lt(lhs, rhs),
            2 => Term::ge(lhs, rhs),
            3 => Term::gt(lhs, rhs),
            _ => Term::eq(lhs, rhs),
        }
    })
}

fn formula_strategy() -> impl Strategy<Value = Term> {
    let leaf = atom_strategy();
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Term::and),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Term::or),
            inner.clone().prop_map(Term::not),
            (inner.clone(), inner).prop_map(|(a, b)| Term::implies(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn smt_agrees_with_box_enumeration(f in formula_strategy()) {
        // Constrain to a box so brute force is exact.
        let bounded = Term::and([
            f.clone(),
            Term::ge(var_x(), Term::int(-6)),
            Term::le(var_x(), Term::int(6)),
            Term::ge(var_y(), Term::int(-6)),
            Term::le(var_y(), Term::int(6)),
        ]);
        let defs = Definitions::new();
        let mut brute_sat = false;
        'outer: for x in -6i64..=6 {
            for y in -6i64..=6 {
                let env = Env::from_pairs(
                    &[Symbol::new("px"), Symbol::new("py")],
                    &[Value::Int(x), Value::Int(y)],
                );
                if f.eval(&env, &defs) == Ok(Value::Bool(true)) {
                    brute_sat = true;
                    break 'outer;
                }
            }
        }
        match SmtSolver::new().check(&bounded) {
            Ok(SmtResult::Sat(m)) => {
                prop_assert!(brute_sat, "solver sat, brute unsat: {}", f);
                let mut env = m.to_env().expect("boxed model fits i64");
                for s in ["px", "py"] {
                    if env.lookup(Symbol::new(s)).is_none() {
                        env.bind(Symbol::new(s), Value::Int(0));
                    }
                }
                prop_assert_eq!(bounded.eval(&env, &defs), Ok(Value::Bool(true)));
            }
            Ok(SmtResult::Unsat) => prop_assert!(!brute_sat, "solver unsat, brute sat: {}", f),
            Err(e) => prop_assert!(false, "solver error {e} on {}", f),
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental sessions vs from-scratch solving: over randomized
// push/pop/assert scripts, a persistent session must give the same
// sat/unsat answer as a fresh solver on the conjunction of the active
// assertions — and (with certification on by default) both answers carry
// certifiable evidence.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum ScriptOp {
    Push,
    Pop,
    Assert(Term),
    Check,
}

fn script_strategy() -> impl Strategy<Value = Vec<ScriptOp>> {
    // The vendored `prop_oneof` is unweighted; repetition biases the mix
    // toward assertions.
    let op = prop_oneof![
        Just(ScriptOp::Push),
        Just(ScriptOp::Pop),
        atom_strategy().prop_map(ScriptOp::Assert),
        atom_strategy().prop_map(ScriptOp::Assert),
        formula_strategy().prop_map(ScriptOp::Assert),
        Just(ScriptOp::Check),
        Just(ScriptOp::Check),
    ];
    proptest::collection::vec(op, 1..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn session_agrees_with_from_scratch(script in script_strategy()) {
        use smtkit::{SmtConfig, SmtSession};

        let mut session = SmtSession::new(SmtConfig::default());
        // Reference scope stack maintained independently of the session.
        let mut stack: Vec<Vec<Term>> = vec![Vec::new()];
        let mut checks = script.iter().filter(|op| matches!(op, ScriptOp::Check)).count();
        for op in script {
            match op {
                ScriptOp::Push => {
                    session.push();
                    stack.push(Vec::new());
                }
                ScriptOp::Pop => {
                    session.pop();
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
                ScriptOp::Assert(t) => {
                    // Keep the problems box-bounded so every check is cheap.
                    let t = Term::and([
                        t,
                        Term::ge(var_x(), Term::int(-6)),
                        Term::le(var_x(), Term::int(6)),
                        Term::ge(var_y(), Term::int(-6)),
                        Term::le(var_y(), Term::int(6)),
                    ]);
                    session.assert_term(&t).expect("CLIA assertion");
                    stack.last_mut().unwrap().push(t);
                }
                ScriptOp::Check => {
                    checks -= 1;
                    let active = Term::and(stack.iter().flatten().cloned());
                    let incremental = session.check_sat().expect("session check");
                    let scratch = SmtSolver::new().check(&active).expect("one-shot check");
                    prop_assert_eq!(
                        matches!(incremental, SmtResult::Sat(_)),
                        matches!(scratch, SmtResult::Sat(_)),
                        "divergence at depth {} on {}",
                        session.depth(),
                        active
                    );
                    // Session models must satisfy the active conjunction
                    // under exact evaluation (beyond the built-in certifier).
                    if let SmtResult::Sat(m) = &incremental {
                        let mut env = m.to_env().expect("boxed model fits i64");
                        for s in ["px", "py"] {
                            if env.lookup(Symbol::new(s)).is_none() {
                                env.bind(Symbol::new(s), Value::Int(0));
                            }
                        }
                        prop_assert_eq!(
                            active.eval(&env, &Definitions::new()),
                            Ok(Value::Bool(true))
                        );
                    }
                }
            }
        }
        // Every script ends with a final agreement check even if the random
        // tail had none.
        if checks == 0 {
            let active = Term::and(stack.iter().flatten().cloned());
            let incremental = session.check_sat().expect("session check");
            let scratch = SmtSolver::new().check(&active).expect("one-shot check");
            prop_assert_eq!(
                matches!(incremental, SmtResult::Sat(_)),
                matches!(scratch, SmtResult::Sat(_)),
                "final divergence on {}",
                active
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Difference logic vs simplex: over randomized assert/retract/push/pop
// scripts in the DL fragment, the two incremental theory engines must give
// the same verdict at every check; DL conflict cores must be independently
// unsat on a fresh simplex; and DL models must satisfy every active atom
// under exact i128 evaluation.
// ---------------------------------------------------------------------------

use smtkit::{DifferenceLogic, IncrementalLra, LinearAtom, TheorySolver};

/// One atom from the DL fragment over `nvars` integer variables.
fn dl_atom_strategy(nvars: usize) -> impl Strategy<Value = LinearAtom> {
    let v = 0..nvars;
    (v.clone(), 0..nvars, -8i64..=8, 0usize..4, any::<bool>()).prop_map(
        |(u, v, w, shape, is_eq)| {
            let coeffs = match shape {
                0 => vec![(u, 1i64)],
                1 => vec![(u, -1i64)],
                _ if u != v => {
                    if shape == 2 {
                        vec![(u, 1), (v, -1)]
                    } else {
                        vec![(u, -1), (v, 1)]
                    }
                }
                _ => vec![(u, 1)],
            };
            (coeffs, is_eq, w)
        },
    )
}

#[derive(Clone, Debug)]
enum DlOp {
    Assert(usize, bool),
    Retract(usize),
    Push,
    Pop,
    Check,
}

fn dl_script_strategy(natoms: usize) -> impl Strategy<Value = Vec<DlOp>> {
    let op = prop_oneof![
        (0..natoms, any::<bool>()).prop_map(|(i, p)| DlOp::Assert(i, p)),
        (0..natoms, any::<bool>()).prop_map(|(i, p)| DlOp::Assert(i, p)),
        (0..natoms, any::<bool>()).prop_map(|(i, p)| DlOp::Assert(i, p)),
        (0..natoms).prop_map(DlOp::Retract),
        Just(DlOp::Push),
        Just(DlOp::Pop),
        Just(DlOp::Check),
        Just(DlOp::Check),
    ];
    proptest::collection::vec(op, 1..24)
}

/// Exact evaluation of `atom` under `model` with the DL engine's negation
/// semantics: positive `e <= w` / `e == w`, negative `e >= w + 1`.
/// Negative equalities (disequalities) are not enforced by the partial
/// check, so callers skip them.
fn atom_holds(atom: &LinearAtom, polarity: bool, model: &[smtkit::BigInt]) -> bool {
    let (coeffs, is_eq, w) = atom;
    let mut sum = 0i128;
    for (var, c) in coeffs {
        let v = model[*var].to_i64().expect("small model");
        sum += i128::from(*c) * i128::from(v);
    }
    match (is_eq, polarity) {
        (false, true) => sum <= i128::from(*w),
        (false, false) => sum > i128::from(*w),
        (true, true) => sum == i128::from(*w),
        (true, false) => unreachable!("disequalities are skipped"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn dl_and_simplex_agree_on_dl_scripts(
        atoms in proptest::collection::vec(dl_atom_strategy(4), 1..10),
        script in dl_script_strategy(10),
    ) {
        const NVARS: usize = 4;
        let mut dl = DifferenceLogic::new(NVARS, &atoms);
        let mut lra = IncrementalLra::new(NVARS, &atoms);
        let mut depth = 0usize;
        for op in &script {
            match *op {
                DlOp::Assert(i, p) => {
                    if i < atoms.len() {
                        TheorySolver::assert_atom(&mut dl, i, p);
                        TheorySolver::assert_atom(&mut lra, i, p);
                    }
                }
                DlOp::Retract(i) => {
                    if i < atoms.len() {
                        TheorySolver::retract_atom(&mut dl, i);
                        TheorySolver::retract_atom(&mut lra, i);
                    }
                }
                DlOp::Push => {
                    TheorySolver::push(&mut dl);
                    TheorySolver::push(&mut lra);
                    depth += 1;
                }
                DlOp::Pop => {
                    if depth > 0 {
                        TheorySolver::pop(&mut dl);
                        TheorySolver::pop(&mut lra);
                        depth -= 1;
                    }
                }
                DlOp::Check => {
                    let dv = TheorySolver::check(&mut dl, 1_000_000, &mut || true)
                        .expect("dl budget");
                    let sv = TheorySolver::check(&mut lra, 1_000_000, &mut || true)
                        .expect("lra budget");
                    // Disequality detection differs in strength (the DL
                    // engine only sees directly pinned bounds), so exact
                    // agreement is only required without active diseqs.
                    let any_diseq = (0..atoms.len())
                        .any(|i| atoms[i].1 && TheorySolver::polarity(&dl, i) == Some(false));
                    if !any_diseq {
                        prop_assert_eq!(
                            dv.is_ok(),
                            sv.is_ok(),
                            "engines diverge: dl={:?} simplex={:?} atoms={:?}",
                            dv,
                            sv,
                            atoms
                        );
                    }
                    if let Err(core) = &dv {
                        // The DL conflict core must be unsat on its own,
                        // independently re-checked by a fresh simplex.
                        prop_assert!(!core.is_empty());
                        let mut fresh = IncrementalLra::new(NVARS, &atoms);
                        for &i in core {
                            let p = TheorySolver::polarity(&dl, i).expect("core atom asserted");
                            TheorySolver::assert_atom(&mut fresh, i, p);
                        }
                        let replay = TheorySolver::check(&mut fresh, 1_000_000, &mut || true)
                            .expect("core budget");
                        prop_assert!(
                            replay.is_err(),
                            "dl core {:?} not refuted by simplex; atoms={:?}",
                            core,
                            atoms
                        );
                        // And the engine's certificate must describe it.
                        let cert = TheorySolver::explain_conflict(&dl).expect("certificate");
                        prop_assert_eq!(&cert.atoms, core);
                    }
                    if dv.is_ok() {
                        // Exact model check: every active atom holds under
                        // the integral model (diseqs excepted — the partial
                        // check does not enforce them).
                        let model = dl.model();
                        for (i, atom) in atoms.iter().enumerate() {
                            match TheorySolver::polarity(&dl, i) {
                                Some(false) if atom.1 => {}
                                Some(p) => prop_assert!(
                                    atom_holds(atom, p, &model),
                                    "model violates atom {} ({:?}, polarity {})",
                                    i,
                                    atom,
                                    p
                                ),
                                None => {}
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end differential: on random boolean combinations of DL-fragment
// atoms, a solver pinned to the DL engine and one pinned to simplex must
// agree sat/unsat. Certification defaults on, so every unsat answer has
// been replayed through the DRAT checker (with `t`-tagged theory lemmas)
// and every sat answer model-checked before it reaches the assertion.
// ---------------------------------------------------------------------------

fn dl_term_atom() -> impl Strategy<Value = Term> {
    (0usize..3, 0usize..3, -6i64..=6, 0usize..4).prop_map(|(u, v, c, rel)| {
        let name = |i: usize| Term::int_var(["dx", "dy", "dz"][i]);
        let lhs = if u == v {
            name(u)
        } else {
            Term::sub(name(u), name(v))
        };
        let rhs = Term::int(c);
        match rel {
            0 => Term::le(lhs, rhs),
            1 => Term::lt(lhs, rhs),
            2 => Term::ge(lhs, rhs),
            _ => Term::eq(lhs, rhs),
        }
    })
}

fn dl_formula_strategy() -> impl Strategy<Value = Term> {
    let leaf = dl_term_atom();
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Term::and),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Term::or),
            inner.clone().prop_map(Term::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn solver_theory_dl_matches_simplex(f in dl_formula_strategy()) {
        use smtkit::{SmtConfig, TheorySelect};

        let dl = SmtSolver::with_config(
            SmtConfig::builder().theory(TheorySelect::DifferenceLogic).build(),
        );
        let simplex = SmtSolver::with_config(
            SmtConfig::builder().theory(TheorySelect::Simplex).build(),
        );
        let a = dl.check(&f).expect("dl-pinned solver");
        let b = simplex.check(&f).expect("simplex-pinned solver");
        prop_assert_eq!(
            matches!(a, SmtResult::Sat(_)),
            matches!(b, SmtResult::Sat(_)),
            "theory engines disagree on {}",
            f
        );
    }
}
