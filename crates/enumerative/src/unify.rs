//! Decision-tree unification: EUSolver's divide-and-conquer. Enumerated
//! terms each solve a subset of the counterexamples; a decision tree over
//! enumerated conditions combines them into a single solution.

use std::collections::HashMap;
use sygus_ast::{Definitions, Env, Term, Value};

/// A candidate leaf term together with the set of examples it solves
/// (bitset over the example list).
#[derive(Clone, Debug)]
pub struct CoveredTerm {
    /// The term.
    pub term: Term,
    /// `covers[i]` iff the term satisfies the spec on example `i`.
    pub covers: Vec<bool>,
}

impl CoveredTerm {
    /// Builds the cover vector by evaluating `satisfies` on each example.
    pub fn new(
        term: Term,
        examples: &[Env],
        satisfies: impl Fn(&Term, &Env) -> bool,
    ) -> CoveredTerm {
        let covers = examples.iter().map(|e| satisfies(&term, e)).collect();
        CoveredTerm { term, covers }
    }

    /// Whether every example is covered.
    pub fn total(&self) -> bool {
        self.covers.iter().all(|&b| b)
    }
}

/// Learns a decision tree `ite(c, …, …)` whose leaves are `terms` and whose
/// internal conditions come from `conditions`, covering all `examples`.
///
/// Returns `None` when the examples cannot be covered (some example solved
/// by no term, or no condition separates a mixed node).
///
/// This is the unification step of EUSolver (Alur et al., TACAS 2017),
/// greedy ID3-style: at each node, if some term covers all remaining
/// examples it becomes a leaf; otherwise the condition with the best
/// information gain splits them.
pub fn learn_decision_tree(
    examples: &[Env],
    terms: &[CoveredTerm],
    conditions: &[Term],
    defs: &Definitions,
) -> Option<Term> {
    if examples.is_empty() {
        return terms.first().map(|t| t.term.clone());
    }
    // Every example must be covered by some term.
    for i in 0..examples.len() {
        if !terms.iter().any(|t| t.covers[i]) {
            return None;
        }
    }
    // Pre-evaluate conditions on examples.
    let cond_vals: Vec<Vec<Option<bool>>> = conditions
        .iter()
        .map(|c| {
            examples
                .iter()
                .map(|e| match c.eval(e, defs) {
                    Ok(Value::Bool(b)) => Some(b),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let all: Vec<usize> = (0..examples.len()).collect();
    let mut memo: HashMap<Vec<usize>, Option<Term>> = HashMap::new();
    build(&all, terms, conditions, &cond_vals, &mut memo, 0)
}

fn build(
    pts: &[usize],
    terms: &[CoveredTerm],
    conditions: &[Term],
    cond_vals: &[Vec<Option<bool>>],
    memo: &mut HashMap<Vec<usize>, Option<Term>>,
    depth: usize,
) -> Option<Term> {
    if let Some(hit) = memo.get(pts) {
        return hit.clone();
    }
    // Leaf: a term covering every remaining point.
    if let Some(t) = terms.iter().find(|t| pts.iter().all(|&i| t.covers[i])) {
        return Some(t.term.clone());
    }
    if depth > 24 {
        return None;
    }
    // Pick the condition with the best split (maximal reduction of the
    // largest uncovered side, breaking ties by balance).
    let mut best: Option<(usize, Vec<usize>, Vec<usize>, usize)> = None;
    for (ci, vals) in cond_vals.iter().enumerate() {
        let mut yes = Vec::new();
        let mut no = Vec::new();
        let mut undef = false;
        for &p in pts {
            match vals[p] {
                Some(true) => yes.push(p),
                Some(false) => no.push(p),
                None => {
                    undef = true;
                    break;
                }
            }
        }
        if undef || yes.is_empty() || no.is_empty() {
            continue; // non-separating or partial condition
        }
        let score = yes.len().max(no.len());
        match &best {
            Some((_, _, _, s)) if *s <= score => {}
            _ => best = Some((ci, yes, no, score)),
        }
    }
    let (ci, yes, no, _) = best?;
    let result = (|| {
        let then_branch = build(&yes, terms, conditions, cond_vals, memo, depth + 1)?;
        let else_branch = build(&no, terms, conditions, cond_vals, memo, depth + 1)?;
        Some(Term::ite(conditions[ci].clone(), then_branch, else_branch))
    })();
    memo.insert(pts.to_vec(), result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus_ast::{Symbol, Value};

    fn envs(points: &[(i64, i64)]) -> Vec<Env> {
        points
            .iter()
            .map(|&(x, y)| {
                Env::from_pairs(
                    &[Symbol::new("x"), Symbol::new("y")],
                    &[Value::Int(x), Value::Int(y)],
                )
            })
            .collect()
    }

    fn max2_satisfies(t: &Term, e: &Env) -> bool {
        let defs = Definitions::new();
        let v = t.eval(e, &defs).ok().and_then(Value::as_int);
        let x = e.lookup(Symbol::new("x")).unwrap().as_int().unwrap();
        let y = e.lookup(Symbol::new("y")).unwrap().as_int().unwrap();
        v == Some(x.max(y))
    }

    #[test]
    fn learns_max2_tree() {
        let defs = Definitions::new();
        let examples = envs(&[(3, 1), (1, 3), (5, 5), (0, -2)]);
        let x = Term::int_var("x");
        let y = Term::int_var("y");
        let terms = vec![
            CoveredTerm::new(x.clone(), &examples, max2_satisfies),
            CoveredTerm::new(y.clone(), &examples, max2_satisfies),
        ];
        assert!(!terms[0].total());
        assert!(!terms[1].total());
        let conditions = vec![Term::app(sygus_ast::Op::Ge, vec![x.clone(), y.clone()])];
        let tree = learn_decision_tree(&examples, &terms, &conditions, &defs).expect("tree");
        // Tree must solve all examples.
        for e in &examples {
            assert!(max2_satisfies(&tree, e), "tree {tree} fails on {e}");
        }
    }

    #[test]
    fn total_term_needs_no_tree() {
        let defs = Definitions::new();
        let examples = envs(&[(1, 1), (2, 2)]);
        let x = Term::int_var("x");
        let terms = vec![CoveredTerm::new(x.clone(), &examples, max2_satisfies)];
        let tree = learn_decision_tree(&examples, &terms, &[], &defs).expect("leaf");
        assert_eq!(tree, x);
    }

    #[test]
    fn uncoverable_example_fails() {
        let defs = Definitions::new();
        let examples = envs(&[(3, 1), (1, 3)]);
        // Only x is available: the (1,3) example needs y.
        let terms = vec![CoveredTerm::new(
            Term::int_var("x"),
            &examples,
            max2_satisfies,
        )];
        let conditions = vec![Term::app(
            sygus_ast::Op::Ge,
            vec![Term::int_var("x"), Term::int_var("y")],
        )];
        assert!(learn_decision_tree(&examples, &terms, &conditions, &defs).is_none());
    }

    #[test]
    fn no_separating_condition_fails() {
        let defs = Definitions::new();
        let examples = envs(&[(3, 1), (1, 3)]);
        let terms = vec![
            CoveredTerm::new(Term::int_var("x"), &examples, max2_satisfies),
            CoveredTerm::new(Term::int_var("y"), &examples, max2_satisfies),
        ];
        // Constant-true condition cannot separate.
        let conditions = vec![Term::app(
            sygus_ast::Op::Ge,
            vec![Term::int_var("x"), Term::int_var("x")],
        )];
        assert!(learn_decision_tree(&examples, &terms, &conditions, &defs).is_none());
    }

    #[test]
    fn nested_tree_for_three_regions() {
        // target: sign(x): -1, 0, 1 — needs two conditions.
        let defs = Definitions::new();
        let examples: Vec<Env> = [-5i64, -1, 0, 2, 7]
            .iter()
            .map(|&x| Env::from_pairs(&[Symbol::new("x")], &[Value::Int(x)]))
            .collect();
        let satisfies = |t: &Term, e: &Env| {
            let defs = Definitions::new();
            let x = e.lookup(Symbol::new("x")).unwrap().as_int().unwrap();
            t.eval(e, &defs).ok().and_then(Value::as_int) == Some(x.signum())
        };
        let terms = vec![
            CoveredTerm::new(Term::int(-1), &examples, satisfies),
            CoveredTerm::new(Term::int(0), &examples, satisfies),
            CoveredTerm::new(Term::int(1), &examples, satisfies),
        ];
        let x = Term::int_var("x");
        let conditions = vec![
            Term::app(sygus_ast::Op::Lt, vec![x.clone(), Term::int(0)]),
            Term::app(sygus_ast::Op::Gt, vec![x.clone(), Term::int(0)]),
            Term::app(sygus_ast::Op::Eq, vec![x.clone(), Term::int(0)]),
        ];
        let tree = learn_decision_tree(&examples, &terms, &conditions, &defs).expect("tree");
        for e in &examples {
            assert!(satisfies(&tree, e), "{tree} fails on {e}");
        }
        assert!(tree.height() >= 3, "expected a nested tree, got {tree}");
    }
}
