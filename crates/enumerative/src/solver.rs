//! The EUSolver-style baseline synthesizer: CEGIS with bottom-up size
//! enumeration, observational-equivalence pruning, and decision-tree
//! unification (divide-and-conquer) for pointwise CLIA specifications.

use crate::{learn_decision_tree, CoveredTerm, EnumConfig, TermEnumerator};
use smtkit::{SmtConfig, SmtError, SmtSolver, Validity};
use std::cell::RefCell;
use std::collections::HashMap;
use sygus_ast::runtime::Budget;
use sygus_ast::{
    Env, FuncDef, GrammarFlavor, Problem, Sort, Symbol, Term, TermNode, Value,
};

/// Memoized per-point spec checks, shared across CEGIS rounds.
///
/// Each round re-enumerates candidates from size 1, so the same (candidate,
/// example) pairs are re-tested round after round; and the decision-tree
/// unifier re-tests every accumulated term against every example each time
/// it runs. The example pool is append-only, so an example's *index* names
/// the same environment for the whole run and `(term, index)` is a sound
/// cache key.
type EvalCache = RefCell<HashMap<(Term, usize), bool>>;

/// Configuration for [`BottomUpSolver`].
#[derive(Clone, Debug)]
pub struct BottomUpConfig {
    /// Enumeration limits.
    pub enum_config: EnumConfig,
    /// Shared resource governor (deadline, cancellation, fuel).
    pub budget: Budget,
    /// Maximum CEGIS iterations (counterexample rounds).
    pub max_cegis_rounds: usize,
    /// Whether decision-tree unification is attempted (requires the full
    /// CLIA grammar and a pointwise, single-invocation specification).
    pub unification: bool,
}

impl Default for BottomUpConfig {
    fn default() -> BottomUpConfig {
        BottomUpConfig {
            enum_config: EnumConfig::default(),
            budget: Budget::unlimited(),
            max_cegis_rounds: 64,
            unification: true,
        }
    }
}

/// Outcome of a synthesis attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthStatus {
    /// A verified solution (a term over the synth-fun parameters).
    Solved(Term),
    /// The search space was exhausted up to the configured limits.
    Exhausted,
    /// The deadline passed.
    Timeout,
    /// The background solver failed (resource limits, unsupported formula).
    Failed(String),
}

impl SynthStatus {
    /// The solution term, if solved.
    pub fn solution(&self) -> Option<&Term> {
        match self {
            SynthStatus::Solved(t) => Some(t),
            _ => None,
        }
    }
}

/// The bottom-up enumerative synthesizer (EUSolver analogue; Alur et al.,
/// *Scaling Enumerative Program Synthesis via Divide and Conquer*).
///
/// # Examples
///
/// ```
/// use enum_synth::{BottomUpConfig, BottomUpSolver, SynthStatus};
/// use sygus_parser::parse_problem;
/// let p = parse_problem(
///     "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
///      (constraint (= (f x) (+ x 1)))(check-synth)",
/// ).unwrap();
/// let solver = BottomUpSolver::new(BottomUpConfig::default());
/// match solver.solve(&p) {
///     SynthStatus::Solved(t) => assert_eq!(t.to_string(), "(+ x 1)"),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct BottomUpSolver {
    config: BottomUpConfig,
}

impl BottomUpSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: BottomUpConfig) -> BottomUpSolver {
        BottomUpSolver { config }
    }

    fn timed_out(&self) -> bool {
        self.config.budget.is_exhausted()
    }

    /// Runs CEGIS with bottom-up enumeration on `problem`.
    pub fn solve(&self, problem: &Problem) -> SynthStatus {
        let f = problem.synth_fun.name;
        let spec = problem.spec();
        // Pre-inline interpreted functions other than f so per-example
        // checks are pure evaluation.
        let mut examples = initial_examples(problem);
        let pointwise = self.config.unification
            && problem.synth_fun.grammar.flavor() == GrammarFlavor::Clia
            && is_pointwise(problem);
        let smt = SmtSolver::with_config(SmtConfig {
            budget: self.config.budget.clone(),
            ..SmtConfig::default()
        });
        let constant_pool = constant_pool(problem, &self.config.enum_config);
        let eval_cache: EvalCache = RefCell::new(HashMap::new());

        let tracer = self.config.budget.tracer().clone();
        for round in 0..self.config.max_cegis_rounds {
            if self.timed_out() {
                return SynthStatus::Timeout;
            }
            let _ = self.config.budget.charge_fuel(1);
            tracer.metrics().bump("cegis.rounds");
            tracer.progress().note_cegis_round();
            let _span = tracer
                .span(sygus_ast::trace::Stage::BottomUp)
                .with_detail(|| format!("round={round} examples={}", examples.len()));
            let Some(candidate) = self.find_candidate(
                problem,
                &spec,
                &examples,
                pointwise,
                &constant_pool,
                &eval_cache,
            ) else {
                return if self.timed_out() {
                    SynthStatus::Timeout
                } else {
                    SynthStatus::Exhausted
                };
            };
            // Verify.
            let formula = problem.verification_formula(&candidate);
            match smt.check_valid(&formula) {
                Ok(Validity::Valid) => return SynthStatus::Solved(candidate),
                Ok(Validity::Invalid(model)) => {
                    let Some(env) = counterexample_env(problem, &model) else {
                        return SynthStatus::Failed("counterexample outside i64".into());
                    };
                    if examples.contains(&env) {
                        // The candidate passed all examples but the formula
                        // is falsified by a known point: evaluation and
                        // solving disagree (should not happen).
                        return SynthStatus::Failed(format!(
                            "stuck: duplicate counterexample {env} for candidate {candidate}"
                        ));
                    }
                    examples.push(env);
                    tracer.progress().note_counterexample();
                }
                Err(SmtError::Timeout) => return SynthStatus::Timeout,
                Err(e) => return SynthStatus::Failed(e.to_string()),
            }
            let _ = f;
        }
        SynthStatus::Exhausted
    }

    /// Finds the smallest enumerated candidate consistent with `examples`,
    /// or a unification tree when whole-term search stalls.
    fn find_candidate(
        &self,
        problem: &Problem,
        spec: &Term,
        examples: &[Env],
        pointwise: bool,
        constant_pool: &[i64],
        cache: &EvalCache,
    ) -> Option<Term> {
        let sf = &problem.synth_fun;
        let tracer = self.config.budget.tracer().clone();
        let work_defs = RefCell::new(problem.definitions.clone());
        let eval_point = |t: &Term, env: &Env| -> bool {
            let mut defs = work_defs.borrow_mut();
            defs.define(sf.name, FuncDef::new(sf.params.clone(), sf.ret, t.clone()));
            spec.eval(env, &defs) == Ok(Value::Bool(true))
        };
        let point_ok = |t: &Term, idx: usize, env: &Env| -> bool {
            if let Some(&ok) = cache.borrow().get(&(t.clone(), idx)) {
                tracer.metrics().bump("enum.eval_cache_hits");
                return ok;
            }
            let ok = eval_point(t, env);
            cache.borrow_mut().insert((t.clone(), idx), ok);
            ok
        };
        let satisfies_all = |t: &Term| -> bool {
            examples
                .iter()
                .enumerate()
                .all(|(i, env)| point_ok(t, i, env))
        };
        let cfg = EnumConfig {
            constant_pool: constant_pool.to_vec(),
            budget: self.config.budget.clone(),
            ..self.config.enum_config.clone()
        };
        let mut en = TermEnumerator::new(&sf.grammar, &problem.definitions, examples.to_vec(), cfg);
        let mut int_terms: Vec<Term> = Vec::new();
        let mut conditions: Vec<Term> = Vec::new();
        let target_nt = sf.grammar.start();
        let bool_nt = (0..sf.grammar.nonterminals().len())
            .find(|&i| sf.grammar.nonterminal(i).sort == Sort::Bool);

        for size in 1..=self.config.enum_config.max_size {
            if self.timed_out() {
                return None;
            }
            self.config.budget.tracer().progress().set_height(size as u64);
            let _ = self.config.budget.charge_fuel(1);
            self.config
                .budget
                .tracer()
                .point(sygus_ast::trace::Stage::BottomUp, None, || {
                    format!("layer size={size}")
                });
            let layer = en.terms_of_nt_size(target_nt, size).to_vec();
            for t in &layer {
                if satisfies_all(t) {
                    return Some(t.clone());
                }
            }
            if pointwise {
                int_terms.extend(layer);
                if let Some(bnt) = bool_nt {
                    conditions.extend(en.terms_of_nt_size(bnt, size).to_vec());
                }
                // Attempt unification once enough material accumulated.
                if size >= 3 && !int_terms.is_empty() && !conditions.is_empty() {
                    let covered: Vec<CoveredTerm> = int_terms
                        .iter()
                        .map(|t| {
                            CoveredTerm::new(t.clone(), examples, |tt, env| {
                                // The unifier hands back a borrow from the
                                // pool; recover its index so the check hits
                                // the shared cache (the pool never holds
                                // duplicate points, so the position is
                                // unambiguous).
                                match examples.iter().position(|e| e == env) {
                                    Some(i) => point_ok(tt, i, env),
                                    None => eval_point(tt, env),
                                }
                            })
                        })
                        .collect();
                    if let Some(tree) =
                        learn_decision_tree(examples, &covered, &conditions, &problem.definitions)
                    {
                        if satisfies_all(&tree) {
                            return Some(tree);
                        }
                    }
                }
            }
        }
        None
    }
}

/// Deterministic starting examples: the all-zero point and one spread point.
fn initial_examples(problem: &Problem) -> Vec<Env> {
    let vars: Vec<(Symbol, Sort)> = problem.declared_vars.clone();
    let zeros: Env = vars
        .iter()
        .map(|&(v, s)| {
            let val = match s {
                Sort::Int => Value::Int(0),
                Sort::Bool => Value::Bool(false),
            };
            (v, val)
        })
        .collect();
    let spread: Env = vars
        .iter()
        .enumerate()
        .map(|(i, &(v, s))| {
            let val = match s {
                Sort::Int => Value::Int(if i % 2 == 0 {
                    i as i64 + 1
                } else {
                    -(i as i64) - 1
                }),
                Sort::Bool => Value::Bool(i % 2 == 0),
            };
            (v, val)
        })
        .collect();
    if zeros == spread {
        vec![zeros]
    } else {
        vec![zeros, spread]
    }
}

/// A specification is pointwise when every application of the target
/// function uses the same argument tuple of distinct variables, so each
/// counterexample pins down exactly one function invocation.
pub fn is_pointwise(problem: &Problem) -> bool {
    let spec = problem.spec();
    let sites = spec.application_sites(problem.synth_fun.name);
    if sites.is_empty() {
        return false;
    }
    let first = &sites[0];
    if sites.iter().any(|s| s != first) {
        return false;
    }
    let mut seen = std::collections::BTreeSet::new();
    first.iter().all(|arg| match arg.node() {
        TermNode::Var(v, _) => seen.insert(*v),
        _ => false,
    })
}

/// Collects integer constants mentioned in the problem, merged with the
/// default pool — the standard EUSolver heuristic for `(Constant Int)`.
pub fn constant_pool(problem: &Problem, base: &EnumConfig) -> Vec<i64> {
    let mut pool = base.constant_pool.clone();
    let mut visit = |t: &Term| {
        for sub in t.subterms() {
            if let Some(n) = sub.as_int_const() {
                if !pool.contains(&n) {
                    pool.push(n);
                }
            }
        }
    };
    for c in &problem.constraints {
        visit(c);
    }
    for (_, def) in problem.definitions.iter() {
        visit(&def.body);
    }
    pool
}

/// Extracts a counterexample environment over the declared variables from an
/// SMT model (unconstrained variables default to 0 / false).
pub fn counterexample_env(problem: &Problem, model: &smtkit::Model) -> Option<Env> {
    let mut env = Env::new();
    for &(v, s) in &problem.declared_vars {
        let val = match s {
            Sort::Int => Value::Int(model.int(v).to_i64()?),
            Sort::Bool => Value::Bool(model.boolean(v)),
        };
        env.bind(v, val);
    }
    Some(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus_parser::parse_problem;

    fn solve(src: &str) -> SynthStatus {
        let p = parse_problem(src).unwrap();
        BottomUpSolver::new(BottomUpConfig::default()).solve(&p)
    }

    fn assert_solved(src: &str) -> Term {
        let p = parse_problem(src).unwrap();
        match BottomUpSolver::new(BottomUpConfig::default()).solve(&p) {
            SynthStatus::Solved(t) => {
                // Re-verify independently.
                let formula = p.verification_formula(&t);
                assert_eq!(
                    SmtSolver::new().check_valid(&formula),
                    Ok(Validity::Valid),
                    "solution {t} fails verification"
                );
                t
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn solves_identity() {
        let t = assert_solved(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) x))(check-synth)",
        );
        assert_eq!(t.to_string(), "x");
    }

    #[test]
    fn solves_increment() {
        let t = assert_solved(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) (+ x 1)))(check-synth)",
        );
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn solves_max2_via_unification() {
        let t = assert_solved(
            "(set-logic LIA)(synth-fun max2 ((x Int) (y Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint (>= (max2 x y) x))(constraint (>= (max2 x y) y))\
             (constraint (or (= (max2 x y) x) (= (max2 x y) y)))(check-synth)",
        );
        assert!(t.to_string().contains("ite"), "expected a tree, got {t}");
    }

    #[test]
    fn solves_constant_function() {
        let t = assert_solved(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) 2))(check-synth)",
        );
        assert_eq!(t, Term::int(2));
    }

    #[test]
    fn solves_custom_grammar_problem() {
        // f must equal x + x but the grammar only has double.
        let t = assert_solved(
            "(set-logic LIA)\
             (define-fun double ((a Int)) Int (+ a a))\
             (synth-fun f ((x Int)) Int ((S Int (x (double S)))))\
             (declare-var x Int)\
             (constraint (= (f x) (+ x x)))(check-synth)",
        );
        assert_eq!(t.to_string(), "(double x)");
    }

    #[test]
    fn exhausts_on_unsolvable_in_grammar() {
        // Grammar can only produce x; spec wants x+1.
        let status = solve(
            "(set-logic LIA)(synth-fun f ((x Int)) Int ((S Int (x))))\
             (declare-var x Int)(constraint (= (f x) (+ x 1)))(check-synth)",
        );
        assert_eq!(status, SynthStatus::Exhausted);
    }

    #[test]
    fn pointwise_detection() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int) (y Int)) Int)\
             (declare-var a Int)(declare-var b Int)\
             (constraint (>= (f a b) a))(check-synth)",
        )
        .unwrap();
        assert!(is_pointwise(&p));
        let q = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)\
             (declare-var a Int)(declare-var b Int)\
             (constraint (= (f a) (f b)))(check-synth)",
        )
        .unwrap();
        assert!(!is_pointwise(&q));
        // Non-variable argument: not pointwise.
        let r = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)\
             (declare-var a Int)\
             (constraint (= (f (+ a 1)) a))(check-synth)",
        )
        .unwrap();
        assert!(!is_pointwise(&r));
    }

    #[test]
    fn constant_pool_includes_spec_constants() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) 42))(check-synth)",
        )
        .unwrap();
        let pool = constant_pool(&p, &EnumConfig::default());
        assert!(pool.contains(&42));
        assert!(pool.contains(&0));
    }

    #[test]
    fn multi_invocation_spec_solved_by_whole_term() {
        // f(a) = f(b) forces a constant function (or any symmetric one);
        // whole-term enumeration finds a constant.
        let t = assert_solved(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)\
             (declare-var a Int)(declare-var b Int)\
             (constraint (= (f a) (f b)))(check-synth)",
        );
        assert!(t.as_int_const().is_some(), "expected constant, got {t}");
    }

    #[test]
    fn timeout_respected() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int) (y Int) (z Int)) Int)\
             (declare-var x Int)(declare-var y Int)(declare-var z Int)\
             (constraint (>= (f x y z) (+ (+ x y) z)))\
             (constraint (>= (f x y z) (- (- x y) z)))\
             (constraint (>= (f x y z) 17))\
             (constraint (or (= (f x y z) (+ (+ x y) z)) (or (= (f x y z) (- (- x y) z)) (= (f x y z) 17))))\
             (check-synth)",
        )
        .unwrap();
        let cfg = BottomUpConfig {
            budget: Budget::from_timeout(std::time::Duration::ZERO),
            ..BottomUpConfig::default()
        };
        let status = BottomUpSolver::new(cfg).solve(&p);
        assert_eq!(status, SynthStatus::Timeout);
    }

    #[test]
    fn cancellation_respected() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) x))(check-synth)",
        )
        .unwrap();
        let budget = Budget::unlimited();
        budget.cancel();
        let cfg = BottomUpConfig {
            budget,
            ..BottomUpConfig::default()
        };
        assert_eq!(BottomUpSolver::new(cfg).solve(&p), SynthStatus::Timeout);
    }
}
