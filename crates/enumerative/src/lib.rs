//! `enum-synth`: an EUSolver-style enumerative SyGuS baseline — bottom-up
//! size enumeration with observational-equivalence pruning
//! ([`TermEnumerator`]), decision-tree unification divide-and-conquer
//! ([`learn_decision_tree`]), and a CEGIS driver ([`BottomUpSolver`]).
//!
//! In the reproduction this crate plays two roles: the standalone "EUSolver"
//! comparison point of Figures 10–13, and the pluggable enumeration backend
//! of the Figure 16 ablation (EUSolver-backed DryadSynth).

#![warn(missing_docs)]

mod enumerate;
mod solver;
mod unify;

pub use enumerate::{EnumConfig, TermEnumerator};
pub use solver::{
    constant_pool, counterexample_env, is_pointwise, BottomUpConfig, BottomUpSolver, SynthStatus,
};
// The shared resource-governance handle, re-exported for backend authors.
pub use sygus_ast::runtime::{Budget, BudgetError};
pub use unify::{learn_decision_tree, CoveredTerm};
