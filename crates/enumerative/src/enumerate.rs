//! Bottom-up term enumeration from an expression grammar, by term size,
//! with observational-equivalence pruning — the enumeration core of the
//! EUSolver-style baseline.

use std::collections::HashMap;
use sygus_ast::runtime::Budget;
use sygus_ast::{
    Definitions, Env, GTerm, Grammar, NonterminalId, SizeFeasibility, Sort, Term, Value,
};

/// Configuration for a [`TermEnumerator`].
#[derive(Clone, Debug)]
pub struct EnumConfig {
    /// Largest term size (node count) to enumerate.
    pub max_size: usize,
    /// Integer constants substituted for `(Constant Int)` productions.
    pub constant_pool: Vec<i64>,
    /// Hard cap on terms kept per (non-terminal, size) layer.
    pub max_terms_per_layer: usize,
    /// Shared resource governor; when it trips, layer construction stops
    /// (already-built layers stay queryable) and each kept term charges one
    /// fuel unit.
    pub budget: Budget,
}

impl Default for EnumConfig {
    fn default() -> EnumConfig {
        EnumConfig {
            max_size: 20,
            constant_pool: vec![0, 1, -1, 2],
            max_terms_per_layer: 50_000,
            budget: Budget::unlimited(),
        }
    }
}

/// The observational signature of a term: its value on each example
/// environment (`None` when evaluation fails, e.g. on overflow).
type Signature = Vec<Option<Value>>;

/// Bottom-up enumerator producing grammar terms in non-decreasing size
/// order, deduplicated by behaviour on a set of example environments.
///
/// With no examples, deduplication is purely syntactic (every term has the
/// empty signature — so pruning is disabled and terms are kept distinct).
///
/// # Examples
///
/// ```
/// use enum_synth::{EnumConfig, TermEnumerator};
/// use sygus_ast::{Definitions, Env, Grammar, Sort, Symbol, Value};
/// let g = Grammar::clia(&[(Symbol::new("x"), Sort::Int)], Sort::Int);
/// let defs = Definitions::new();
/// let examples = vec![Env::from_pairs(&[Symbol::new("x")], &[Value::Int(3)])];
/// let mut e = TermEnumerator::new(&g, &defs, examples, EnumConfig::default());
/// let layer1 = e.terms_of_size(1).to_vec();
/// assert!(!layer1.is_empty()); // x and the constant pool
/// ```
pub struct TermEnumerator<'a> {
    grammar: &'a Grammar,
    defs: &'a Definitions,
    examples: Vec<Env>,
    config: EnumConfig,
    /// `layers[nt][size]` = distinct-behaviour terms of that exact size.
    layers: Vec<Vec<Vec<Term>>>,
    /// Seen signatures per non-terminal (disabled when `examples` is empty).
    seen: Vec<HashMap<Signature, Term>>,
    /// Grammar dataflow table: which (production, exact size) slots can be
    /// non-empty at all. Provably-empty slots are skipped without expansion.
    feasible: SizeFeasibility,
    built_size: usize,
}

impl<'a> TermEnumerator<'a> {
    /// Creates an enumerator. `examples` drive observational-equivalence
    /// pruning; `defs` interpret applied functions during evaluation.
    pub fn new(
        grammar: &'a Grammar,
        defs: &'a Definitions,
        examples: Vec<Env>,
        config: EnumConfig,
    ) -> TermEnumerator<'a> {
        let n = grammar.nonterminals().len();
        TermEnumerator {
            grammar,
            defs,
            examples,
            config,
            layers: vec![vec![Vec::new()]; n], // index 0 unused
            seen: vec![HashMap::new(); n],
            feasible: SizeFeasibility::new(grammar),
            built_size: 0,
        }
    }

    /// The example environments driving pruning.
    pub fn examples(&self) -> &[Env] {
        &self.examples
    }

    /// Terms of the start non-terminal with exactly the given size,
    /// building layers on demand.
    pub fn terms_of_size(&mut self, size: usize) -> &[Term] {
        self.build_to(size);
        &self.layers[self.grammar.start()][size]
    }

    /// Terms of a specific non-terminal with exactly the given size.
    pub fn terms_of_nt_size(&mut self, nt: NonterminalId, size: usize) -> &[Term] {
        self.build_to(size);
        &self.layers[nt][size]
    }

    /// The observational signature of a term on the current examples.
    pub fn signature(&self, t: &Term) -> Signature {
        self.examples
            .iter()
            .map(|env| t.eval(env, self.defs).ok())
            .collect()
    }

    fn build_to(&mut self, requested: usize) {
        let size = requested.min(self.config.max_size);
        while self.built_size < size {
            // Budget checkpoint in the hot loop: stop growing the table the
            // moment the governor trips (deadline, cancellation, or fuel).
            if self.config.budget.is_exhausted() {
                break;
            }
            let next = self.built_size + 1;
            for nt in 0..self.grammar.nonterminals().len() {
                let mut layer: Vec<Term> = Vec::new();
                let prods = self.grammar.nonterminal(nt).productions.clone();
                for prod in &prods {
                    // Dataflow pre-check: when the fixpoint proves no term of
                    // exactly `next` nodes can come from this production,
                    // skip the whole expansion for the slot.
                    if !self.feasible.pattern_feasible(prod, next) {
                        self.config.budget.tracer().metrics().bump("enum.slots_pruned");
                        continue;
                    }
                    self.expand(prod, next, &mut |t, me| {
                        if layer.len() >= me.config.max_terms_per_layer {
                            return;
                        }
                        if me.examples.is_empty() {
                            if !layer.contains(&t) {
                                layer.push(t);
                            }
                            return;
                        }
                        let sig = me.signature(&t);
                        if let std::collections::hash_map::Entry::Vacant(e) =
                            me.seen[nt].entry(sig)
                        {
                            e.insert(t.clone());
                            layer.push(t);
                        }
                    });
                }
                // One fuel unit per kept (behaviourally distinct) term.
                let _ = self.config.budget.charge_fuel(layer.len() as u64);
                self.layers[nt].push(layer);
            }
            self.built_size = next;
        }
        // Pad layers when the request exceeds max_size so indexing stays in
        // range (those layers are empty by construction).
        for nt in 0..self.layers.len() {
            while self.layers[nt].len() <= requested {
                self.layers[nt].push(Vec::new());
            }
        }
    }

    /// Calls `emit` for every instantiation of `prod` with exactly `size`
    /// nodes.
    fn expand(&mut self, prod: &GTerm, size: usize, emit: &mut dyn FnMut(Term, &mut Self)) {
        match prod {
            GTerm::Const(n) => {
                if size == 1 {
                    emit(Term::int(*n), self);
                }
            }
            GTerm::BoolConst(b) => {
                if size == 1 {
                    emit(Term::bool(*b), self);
                }
            }
            GTerm::Var(v, s) => {
                if size == 1 {
                    emit(Term::var(*v, *s), self);
                }
            }
            GTerm::AnyConst(Sort::Int) => {
                if size == 1 {
                    for &c in &self.config.constant_pool.clone() {
                        emit(Term::int(c), self);
                    }
                }
            }
            GTerm::AnyConst(Sort::Bool) => {
                if size == 1 {
                    emit(Term::tt(), self);
                    emit(Term::ff(), self);
                }
            }
            GTerm::AnyVar(s) => {
                if size == 1 {
                    // All example-scope variables of the sort.
                    let mut vars: Vec<(sygus_ast::Symbol, Sort)> = Vec::new();
                    for env in &self.examples {
                        for (sym, val) in env.iter() {
                            if val.sort() == *s && !vars.iter().any(|&(w, _)| w == sym) {
                                vars.push((sym, *s));
                            }
                        }
                    }
                    for (sym, sort) in vars {
                        emit(Term::var(sym, sort), self);
                    }
                }
            }
            GTerm::Nonterminal(id) => {
                // Terms of this exact size from the table (must already be
                // built: productions only reference sizes < current).
                let terms = self.layers[*id].get(size).cloned().unwrap_or_default();
                for t in terms {
                    emit(t, self);
                }
            }
            GTerm::App(op, children) => {
                if size < 1 + children.len() {
                    return;
                }
                // Distribute size-1 among children.
                let op = *op;
                let children = children.clone();
                self.expand_children(&children, size - 1, Vec::new(), &mut |args, me| {
                    emit(Term::app(op, args.to_vec()), me);
                });
            }
        }
    }

    fn expand_children(
        &mut self,
        children: &[GTerm],
        remaining: usize,
        acc: Vec<Term>,
        emit: &mut dyn FnMut(&[Term], &mut Self),
    ) {
        match children.split_first() {
            None => {
                if remaining == 0 {
                    emit(&acc, self);
                }
            }
            Some((first, rest)) => {
                // Minimum size of the remaining children is 1 each.
                let max_here = remaining.saturating_sub(rest.len());
                for sz in 1..=max_here {
                    let mut collected: Vec<Term> = Vec::new();
                    self.expand(first, sz, &mut |t, _| collected.push(t));
                    for t in collected {
                        let mut acc2 = acc.clone();
                        acc2.push(t);
                        self.expand_children(rest, remaining - sz, acc2, emit);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus_ast::{Op, Symbol};

    fn x_sym() -> Symbol {
        Symbol::new("x")
    }

    fn simple_grammar() -> Grammar {
        // S -> x | 0 | 1 | (+ S S)
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        g.add_production(s, GTerm::Var(x_sym(), Sort::Int));
        g.add_production(s, GTerm::Const(0));
        g.add_production(s, GTerm::Const(1));
        g.add_production(
            s,
            GTerm::App(Op::Add, vec![GTerm::Nonterminal(s), GTerm::Nonterminal(s)]),
        );
        g
    }

    #[test]
    fn size_one_terms() {
        let g = simple_grammar();
        let defs = Definitions::new();
        let mut e = TermEnumerator::new(&g, &defs, Vec::new(), EnumConfig::default());
        let t1: Vec<String> = e.terms_of_size(1).iter().map(|t| t.to_string()).collect();
        assert_eq!(t1, vec!["x", "0", "1"]);
    }

    #[test]
    fn size_three_sums() {
        let g = simple_grammar();
        let defs = Definitions::new();
        let mut e = TermEnumerator::new(&g, &defs, Vec::new(), EnumConfig::default());
        let t3 = e.terms_of_size(3).to_vec();
        // Pairs of size-1 terms under +: 3 × 3 = 9 raw applications.
        assert_eq!(t3.len(), 9);
        assert!(t3.iter().any(|t| t.to_string() == "(+ x x)"));
    }

    #[test]
    fn observational_pruning_collapses_equivalents() {
        let g = simple_grammar();
        let defs = Definitions::new();
        let examples = vec![
            Env::from_pairs(&[x_sym()], &[Value::Int(2)]),
            Env::from_pairs(&[x_sym()], &[Value::Int(-5)]),
        ];
        let mut e = TermEnumerator::new(&g, &defs, examples, EnumConfig::default());
        let _ = e.terms_of_size(1);
        let t3 = e.terms_of_size(3).to_vec();
        // (+ 0 0) ≡ 0, (+ x 0) ≡ x, (+ 0 1) ≡ 1 … only genuinely new
        // behaviours survive: x+x, x+1, 1+1.
        let strs: Vec<String> = t3.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs.len(), 3, "{strs:?}");
    }

    #[test]
    fn no_size_two_terms_in_binary_grammar() {
        let g = simple_grammar();
        let defs = Definitions::new();
        let mut e = TermEnumerator::new(&g, &defs, Vec::new(), EnumConfig::default());
        assert!(e.terms_of_size(2).is_empty());
    }

    #[test]
    fn clia_grammar_enumerates_conditions() {
        let g = Grammar::clia(&[(x_sym(), Sort::Int)], Sort::Int);
        let defs = Definitions::new();
        let examples = vec![Env::from_pairs(&[x_sym()], &[Value::Int(1)])];
        let mut e = TermEnumerator::new(&g, &defs, examples, EnumConfig::default());
        // StartBool is non-terminal 1; size-3 conditions include (>= x 0).
        let _ = e.terms_of_size(3);
        let bools = e.terms_of_nt_size(1, 3).to_vec();
        assert!(
            bools.iter().any(|t| t.sort() == Sort::Bool),
            "expected boolean layer, got {bools:?}"
        );
    }

    #[test]
    fn interpreted_functions_evaluated_in_signatures() {
        // S -> x | 0 | qm(S, S); qm(a,b) = ite(a<0, b, a)
        let mut defs = Definitions::new();
        let a = Symbol::new("ea");
        let b = Symbol::new("eb");
        defs.define(
            Symbol::new("qm"),
            sygus_ast::FuncDef::new(
                vec![(a, Sort::Int), (b, Sort::Int)],
                Sort::Int,
                Term::ite(
                    Term::lt(Term::var(a, Sort::Int), Term::int(0)),
                    Term::var(b, Sort::Int),
                    Term::var(a, Sort::Int),
                ),
            ),
        );
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        g.add_production(s, GTerm::Var(x_sym(), Sort::Int));
        g.add_production(s, GTerm::Const(0));
        g.add_production(
            s,
            GTerm::App(
                Op::Apply(Symbol::new("qm"), Sort::Int),
                vec![GTerm::Nonterminal(s), GTerm::Nonterminal(s)],
            ),
        );
        let examples = vec![Env::from_pairs(&[x_sym()], &[Value::Int(-3)])];
        let mut e = TermEnumerator::new(&g, &defs, examples, EnumConfig::default());
        let _ = e.terms_of_size(1);
        let t3 = e.terms_of_size(3).to_vec();
        // qm(x, 0) on x = -3 gives 0 ≡ constant 0 → pruned; qm(0, x) gives 0
        // → pruned; qm(x, x) gives -3 ≡ x → pruned. Everything collapses.
        assert!(t3.is_empty(), "{t3:?}");
    }

    #[test]
    fn constant_pool_honored() {
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        g.add_production(s, GTerm::AnyConst(Sort::Int));
        let defs = Definitions::new();
        let cfg = EnumConfig {
            constant_pool: vec![7, 9],
            ..EnumConfig::default()
        };
        let mut e = TermEnumerator::new(&g, &defs, Vec::new(), cfg);
        let t1: Vec<String> = e.terms_of_size(1).iter().map(|t| t.to_string()).collect();
        assert_eq!(t1, vec!["7", "9"]);
    }

    #[test]
    fn max_size_respected() {
        let g = simple_grammar();
        let defs = Definitions::new();
        let cfg = EnumConfig {
            max_size: 3,
            ..EnumConfig::default()
        };
        let mut e = TermEnumerator::new(&g, &defs, Vec::new(), cfg);
        assert!(e.terms_of_size(5).is_empty());
    }

    #[test]
    fn infeasible_slots_are_pruned_without_changing_results() {
        // S -> x | (+ S S): every even size slot is provably empty, so each
        // production is skipped there; odd slots still enumerate fully.
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        g.add_production(s, GTerm::Var(x_sym(), Sort::Int));
        g.add_production(
            s,
            GTerm::App(Op::Add, vec![GTerm::Nonterminal(s), GTerm::Nonterminal(s)]),
        );
        let defs = Definitions::new();
        let cfg = EnumConfig::default();
        let budget = cfg.budget.clone();
        let mut e = TermEnumerator::new(&g, &defs, Vec::new(), cfg);
        assert!(e.terms_of_size(2).is_empty());
        assert!(e.terms_of_size(4).is_empty());
        assert_eq!(e.terms_of_size(3).len(), 1); // (+ x x)
        assert!(
            budget.tracer().metrics().counter("enum.slots_pruned") > 0,
            "expected the dataflow pre-check to skip empty slots"
        );
    }

    #[test]
    fn unproductive_nonterminal_is_always_pruned() {
        // S -> x | (+ S U); U -> U : the dead production never expands.
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        let u = g.add_nonterminal("U", Sort::Int);
        g.add_production(s, GTerm::Var(x_sym(), Sort::Int));
        g.add_production(
            s,
            GTerm::App(Op::Add, vec![GTerm::Nonterminal(s), GTerm::Nonterminal(u)]),
        );
        g.add_production(u, GTerm::Nonterminal(u));
        let defs = Definitions::new();
        let mut e = TermEnumerator::new(&g, &defs, Vec::new(), EnumConfig::default());
        let t1: Vec<String> = e.terms_of_size(1).iter().map(|t| t.to_string()).collect();
        assert_eq!(t1, vec!["x"]);
        for size in 2..=6 {
            assert!(e.terms_of_size(size).is_empty(), "size {size}");
        }
    }

    #[test]
    fn nested_pattern_production() {
        // S -> (+ S 1) | x : production with an embedded constant child.
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        g.add_production(s, GTerm::Var(x_sym(), Sort::Int));
        g.add_production(
            s,
            GTerm::App(Op::Add, vec![GTerm::Nonterminal(s), GTerm::Const(1)]),
        );
        let defs = Definitions::new();
        let mut e = TermEnumerator::new(&g, &defs, Vec::new(), EnumConfig::default());
        let t3: Vec<String> = e.terms_of_size(3).iter().map(|t| t.to_string()).collect();
        assert_eq!(t3, vec!["(+ x 1)"]);
        let t5: Vec<String> = e.terms_of_size(5).iter().map(|t| t.to_string()).collect();
        assert_eq!(t5, vec!["(+ (+ x 1) 1)"]);
    }
}
