//! Property tests: printed terms and problems re-parse to themselves.

use proptest::prelude::*;
use sygus_ast::{Op, Term};
use sygus_parser::{parse_problem, to_sygus};

fn int_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-9i64..=9).prop_map(Term::int),
        Just(Term::int_var("x")),
        Just(Term::int_var("y")),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::app(Op::Add, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::app(Op::Sub, vec![a, b])),
            inner.clone().prop_map(|a| Term::app(Op::Neg, vec![a])),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c1, a, b)| {
                Term::app(
                    Op::Ite,
                    vec![Term::app(Op::Ge, vec![c1, Term::int(0)]), a, b],
                )
            }),
        ]
    })
}

fn bool_term() -> impl Strategy<Value = Term> {
    let atom = (int_term(), int_term(), 0usize..5).prop_map(|(a, b, r)| {
        let op = [Op::Le, Op::Lt, Op::Ge, Op::Gt, Op::Eq][r];
        Term::app(op, vec![a, b])
    });
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(|v| Term::app(Op::And, v)),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(|v| Term::app(Op::Or, v)),
            inner.clone().prop_map(|a| Term::app(Op::Not, vec![a])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::app(Op::Implies, vec![a, b])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Printing and re-parsing is idempotent: the reader's smart
    /// constructors may fold a raw random term once, but after the first
    /// parse the form is stable under print→parse cycles, and semantics
    /// are preserved throughout.
    #[test]
    fn constraint_round_trip(t in bool_term()) {
        let src = format!(
            "(set-logic LIA)(synth-fun f ((p Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint {t})(check-synth)"
        );
        let p = parse_problem(&src).expect("printed constraint parses");
        let printed = to_sygus(&p);
        let p2 = parse_problem(&printed).expect("reprint parses");
        prop_assert_eq!(&p.constraints[0], &p2.constraints[0]);
        // Semantics of raw vs parsed agree on sample points.
        let defs = sygus_ast::Definitions::new();
        for xv in [-3i64, 0, 4] {
            for yv in [-2i64, 1] {
                let env = sygus_ast::Env::from_pairs(
                    &[sygus_ast::Symbol::new("x"), sygus_ast::Symbol::new("y")],
                    &[sygus_ast::Value::Int(xv), sygus_ast::Value::Int(yv)],
                );
                prop_assert_eq!(
                    t.eval(&env, &defs),
                    p.constraints[0].eval(&env, &defs),
                    "x={} y={}", xv, yv
                );
            }
        }
    }

    /// Random integer terms survive printing inside an equality.
    #[test]
    fn int_term_round_trip(t in int_term()) {
        let src = format!(
            "(set-logic LIA)(synth-fun f ((p Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint (= (f x) {t}))(check-synth)"
        );
        let p = parse_problem(&src).expect("parses");
        let printed = to_sygus(&p);
        let p2 = parse_problem(&printed).expect("reprint parses");
        prop_assert_eq!(&p.constraints[0], &p2.constraints[0]);
    }
}
