//! SyGuS-IF concrete syntax: an S-expression reader ([`parse_sexprs`]), the
//! SyGuS problem reader ([`parse_problem`]), and the printer ([`to_sygus`]).
//!
//! The supported language is the CLIA fragment used by the paper's
//! benchmarks: `set-logic`, `synth-fun` (with optional grammar),
//! `synth-inv`, `declare-var`, `declare-primed-var`, `define-fun`,
//! `constraint`, `inv-constraint`, and `check-synth`; `let` terms are
//! inlined during parsing.
//!
//! # Example
//!
//! ```
//! use sygus_parser::parse_problem;
//! let p = parse_problem(
//!     "(set-logic LIA)(synth-fun id ((x Int)) Int)(declare-var x Int)\
//!      (constraint (= (id x) x))(check-synth)",
//! ).unwrap();
//! assert_eq!(p.synth_fun.name.as_str(), "id");
//! ```

#![warn(missing_docs)]

mod print;
mod sexpr;
mod sygus;

pub use print::{solution_to_sygus, to_sygus};
pub use sexpr::{parse_sexprs, Pos, SExpr, SExprError};
pub use sygus::{parse_problem, ParseError};
