//! S-expression reader with source positions, the concrete-syntax layer
//! beneath the SyGuS-IF reader.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An S-expression: an atom or a parenthesized list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SExpr {
    /// A bare token (symbol, keyword, or numeral).
    Atom(String, Pos),
    /// A parenthesized list.
    List(Vec<SExpr>, Pos),
}

impl SExpr {
    /// The position of this expression.
    pub fn pos(&self) -> Pos {
        match self {
            SExpr::Atom(_, p) | SExpr::List(_, p) => *p,
        }
    }

    /// The atom text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            SExpr::Atom(s, _) => Some(s),
            SExpr::List(..) => None,
        }
    }

    /// The elements, if this is a list.
    pub fn as_list(&self) -> Option<&[SExpr]> {
        match self {
            SExpr::List(items, _) => Some(items),
            SExpr::Atom(..) => None,
        }
    }

    /// Parses the atom as an `i64` numeral, if possible.
    pub fn as_int(&self) -> Option<i64> {
        self.as_atom()?.parse().ok()
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Atom(s, _) => f.write_str(s),
            SExpr::List(items, _) => {
                write!(f, "(")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An S-expression syntax error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SExprError {
    /// Where the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for SExprError {}

/// Parses a whole input into a sequence of top-level S-expressions.
/// Line comments start with `;`.
///
/// # Errors
///
/// Returns an [`SExprError`] on unbalanced parentheses or stray characters.
///
/// # Examples
///
/// ```
/// use sygus_parser::parse_sexprs;
/// let es = parse_sexprs("(check-synth) ; done").unwrap();
/// assert_eq!(es.len(), 1);
/// assert_eq!(es[0].to_string(), "(check-synth)");
/// ```
pub fn parse_sexprs(input: &str) -> Result<Vec<SExpr>, SExprError> {
    let mut lexer = Lexer::new(input);
    let mut out = Vec::new();
    while let Some(tok) = lexer.peek()? {
        let _ = tok;
        out.push(parse_one(&mut lexer)?);
    }
    Ok(out)
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    LParen(Pos),
    RParen(Pos),
    Atom(String, Pos),
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
    lookahead: Option<Token>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Lexer<'a> {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            col: 1,
            lookahead: None,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Result<Option<&Token>, SExprError> {
        if self.lookahead.is_none() {
            self.lookahead = self.lex()?;
        }
        Ok(self.lookahead.as_ref())
    }

    fn next(&mut self) -> Result<Option<Token>, SExprError> {
        if self.lookahead.is_none() {
            self.lookahead = self.lex()?;
        }
        Ok(self.lookahead.take())
    }

    fn lex(&mut self) -> Result<Option<Token>, SExprError> {
        loop {
            match self.chars.peek() {
                None => return Ok(None),
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('(') => {
                    let p = self.pos();
                    self.bump();
                    return Ok(Some(Token::LParen(p)));
                }
                Some(')') => {
                    let p = self.pos();
                    self.bump();
                    return Ok(Some(Token::RParen(p)));
                }
                Some(_) => {
                    let p = self.pos();
                    let mut s = String::new();
                    while let Some(&c) = self.chars.peek() {
                        if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                            break;
                        }
                        s.push(c);
                        self.bump();
                    }
                    return Ok(Some(Token::Atom(s, p)));
                }
            }
        }
    }
}

fn parse_one(lexer: &mut Lexer<'_>) -> Result<SExpr, SExprError> {
    match lexer.next()? {
        None => Err(SExprError {
            pos: lexer.pos(),
            message: "unexpected end of input".to_owned(),
        }),
        Some(Token::Atom(s, p)) => Ok(SExpr::Atom(s, p)),
        Some(Token::RParen(p)) => Err(SExprError {
            pos: p,
            message: "unexpected `)`".to_owned(),
        }),
        Some(Token::LParen(p)) => {
            let mut items = Vec::new();
            loop {
                match lexer.peek()? {
                    None => {
                        return Err(SExprError {
                            pos: p,
                            message: "unclosed `(`".to_owned(),
                        })
                    }
                    Some(Token::RParen(_)) => {
                        lexer.next()?;
                        return Ok(SExpr::List(items, p));
                    }
                    Some(_) => items.push(parse_one(lexer)?),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_and_lists() {
        let es = parse_sexprs("foo (bar 42 (baz)) -7").unwrap();
        assert_eq!(es.len(), 3);
        assert_eq!(es[0].as_atom(), Some("foo"));
        let items = es[1].as_list().unwrap();
        assert_eq!(items[0].as_atom(), Some("bar"));
        assert_eq!(items[1].as_int(), Some(42));
        assert_eq!(es[2].as_int(), Some(-7));
    }

    #[test]
    fn comments_skipped() {
        let es = parse_sexprs("; header\n(a) ; trailing\n(b)").unwrap();
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn positions_tracked() {
        let es = parse_sexprs("(a\n  (b))").unwrap();
        let items = es[0].as_list().unwrap();
        assert_eq!(items[0].pos(), Pos { line: 1, col: 2 });
        assert_eq!(items[1].pos(), Pos { line: 2, col: 3 });
    }

    #[test]
    fn unbalanced_errors() {
        assert!(parse_sexprs("(a (b)").is_err());
        assert!(parse_sexprs(")").is_err());
        let err = parse_sexprs("(a (b)").unwrap_err();
        assert!(err.to_string().contains("unclosed"));
    }

    #[test]
    fn display_roundtrip() {
        let src = "(synth-fun f ((x Int)) Int ((S Int (x 0 1 (+ S S)))))";
        let es = parse_sexprs(src).unwrap();
        assert_eq!(es[0].to_string(), src);
    }

    #[test]
    fn empty_input() {
        assert_eq!(parse_sexprs("").unwrap().len(), 0);
        assert_eq!(parse_sexprs("  ; only a comment").unwrap().len(), 0);
    }

    #[test]
    fn special_tokens_in_symbols() {
        let es = parse_sexprs("(<= >= = + - * x! |x|)").unwrap();
        let items = es[0].as_list().unwrap();
        assert_eq!(items[0].as_atom(), Some("<="));
        assert_eq!(items[6].as_atom(), Some("x!"));
    }
}
