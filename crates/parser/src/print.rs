//! Printing [`Problem`]s back to SyGuS-IF concrete syntax (round-trip tested
//! against the reader).

use sygus_ast::{GTerm, Grammar, GrammarFlavor, Problem, Term};

fn gterm_to_string(g: &GTerm, grammar: &Grammar) -> String {
    match g {
        GTerm::Const(n) => {
            if *n < 0 {
                format!("(- {})", n.unsigned_abs())
            } else {
                n.to_string()
            }
        }
        GTerm::BoolConst(b) => b.to_string(),
        GTerm::Var(v, _) => v.to_string(),
        GTerm::AnyConst(s) => format!("(Constant {s})"),
        GTerm::AnyVar(s) => format!("(Variable {s})"),
        GTerm::Nonterminal(id) => grammar.nonterminal(*id).name.to_string(),
        GTerm::App(op, args) => {
            let mut out = format!("({}", op.name());
            for a in args {
                out.push(' ');
                out.push_str(&gterm_to_string(a, grammar));
            }
            out.push(')');
            out
        }
    }
}

/// Renders a problem as SyGuS-IF source text that [`crate::parse_problem`]
/// accepts back.
///
/// Invariant problems are printed in the expanded form (plain `constraint`
/// commands), which is semantically identical.
///
/// # Examples
///
/// ```
/// use sygus_parser::{parse_problem, to_sygus};
/// let src = "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)(constraint (= (f x) x))(check-synth)";
/// let p = parse_problem(src).unwrap();
/// let printed = to_sygus(&p);
/// let p2 = parse_problem(&printed).unwrap();
/// assert_eq!(p.constraints, p2.constraints);
/// ```
pub fn to_sygus(p: &Problem) -> String {
    let mut out = String::new();
    out.push_str(&format!("(set-logic {})\n", p.logic));
    // Definitions first (grammar and constraints may reference them).
    for (name, def) in p.definitions.iter() {
        let params: Vec<String> = def
            .params
            .iter()
            .map(|(v, s)| format!("({v} {s})"))
            .collect();
        out.push_str(&format!(
            "(define-fun {name} ({}) {} {})\n",
            params.join(" "),
            def.ret,
            def.body
        ));
    }
    // synth-fun with grammar (omitted for the built-in CLIA grammar).
    let sf = &p.synth_fun;
    let params: Vec<String> = sf
        .params
        .iter()
        .map(|(v, s)| format!("({v} {s})"))
        .collect();
    out.push_str(&format!(
        "(synth-fun {} ({}) {}",
        sf.name,
        params.join(" "),
        sf.ret
    ));
    if sf.grammar.flavor() == GrammarFlavor::Custom {
        out.push_str("\n    (");
        for (i, nt) in sf.grammar.nonterminals().iter().enumerate() {
            if i > 0 {
                out.push_str("\n     ");
            }
            let prods: Vec<String> = nt
                .productions
                .iter()
                .map(|pr| gterm_to_string(pr, &sf.grammar))
                .collect();
            out.push_str(&format!("({} {} ({}))", nt.name, nt.sort, prods.join(" ")));
        }
        out.push(')');
    }
    out.push_str(")\n");
    for (v, s) in &p.declared_vars {
        out.push_str(&format!("(declare-var {v} {s})\n"));
    }
    for c in &p.constraints {
        out.push_str(&format!("(constraint {c})\n"));
    }
    out.push_str("(check-synth)\n");
    out
}

/// Renders a solution as the `define-fun` answer format used by SyGuS
/// solvers.
pub fn solution_to_sygus(p: &Problem, body: &Term) -> String {
    sygus_ast::display_define_fun(p.synth_fun.name, &p.synth_fun.params, p.synth_fun.ret, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_problem;

    #[test]
    fn roundtrip_clia_problem() {
        let src = r#"
            (set-logic LIA)
            (synth-fun max2 ((x Int) (y Int)) Int)
            (declare-var x Int)
            (declare-var y Int)
            (constraint (>= (max2 x y) x))
            (constraint (or (= (max2 x y) x) (= (max2 x y) y)))
            (check-synth)
        "#;
        let p = parse_problem(src).unwrap();
        let printed = to_sygus(&p);
        let p2 = parse_problem(&printed).unwrap();
        assert_eq!(p.synth_fun.name, p2.synth_fun.name);
        assert_eq!(p.constraints, p2.constraints);
        assert_eq!(p.declared_vars, p2.declared_vars);
    }

    #[test]
    fn roundtrip_custom_grammar() {
        let src = r#"
            (set-logic LIA)
            (define-fun qm ((a Int) (b Int)) Int (ite (< a 0) b a))
            (synth-fun f ((x Int) (y Int)) Int
                ((S Int (x y 0 1 (+ S S) (qm S S)))))
            (declare-var x Int)
            (declare-var y Int)
            (constraint (>= (f x y) 0))
            (check-synth)
        "#;
        let p = parse_problem(src).unwrap();
        let printed = to_sygus(&p);
        let p2 = parse_problem(&printed).unwrap();
        assert_eq!(
            p.synth_fun.grammar.nonterminal(0).productions,
            p2.synth_fun.grammar.nonterminal(0).productions
        );
        assert_eq!(p.constraints, p2.constraints);
    }

    #[test]
    fn solution_format() {
        let src = "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)(constraint (= (f x) x))(check-synth)";
        let p = parse_problem(src).unwrap();
        let sol = solution_to_sygus(&p, &Term::int_var("x"));
        assert_eq!(sol, "(define-fun f ((x Int)) Int x)");
    }
}
