//! The SyGuS-IF reader: turns S-expressions into [`Problem`] values.
//!
//! Supported commands: `set-logic`, `synth-fun` (with optional grammar),
//! `synth-inv`, `declare-var`, `declare-primed-var`, `define-fun`,
//! `constraint`, `inv-constraint`, `check-synth`. `let` terms are inlined.

use crate::sexpr::{parse_sexprs, Pos, SExpr};
use std::collections::HashMap;
use std::fmt;
use sygus_ast::{
    Definitions, FuncDef, GTerm, Grammar, GrammarFlavor, InvInfo, Op, Problem, Sort, Symbol,
    SynthFun, Term,
};

/// A SyGuS parse error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::sexpr::SExprError> for ParseError {
    fn from(e: crate::sexpr::SExprError) -> ParseError {
        ParseError::new(e.pos, e.message)
    }
}

/// Parses a complete SyGuS-IF problem from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, unknown commands, unbound
/// identifiers, or a missing `synth-fun`/`synth-inv`.
///
/// # Examples
///
/// ```
/// use sygus_parser::parse_problem;
/// let src = r#"
///   (set-logic LIA)
///   (synth-fun max2 ((x Int) (y Int)) Int)
///   (declare-var x Int)
///   (declare-var y Int)
///   (constraint (>= (max2 x y) x))
///   (constraint (>= (max2 x y) y))
///   (constraint (or (= (max2 x y) x) (= (max2 x y) y)))
///   (check-synth)
/// "#;
/// let p = parse_problem(src).unwrap();
/// assert_eq!(p.synth_fun.name.as_str(), "max2");
/// assert_eq!(p.constraints.len(), 3);
/// ```
pub fn parse_problem(input: &str) -> Result<Problem, ParseError> {
    let exprs = parse_sexprs(input)?;
    let mut reader = Reader::default();
    for e in &exprs {
        reader.command(e)?;
    }
    reader.finish()
}

#[derive(Default)]
struct Reader {
    logic: Option<String>,
    synth_fun: Option<SynthFun>,
    is_inv: bool,
    declared: Vec<(Symbol, Sort)>,
    defs: Definitions,
    def_order: Vec<Symbol>,
    constraints: Vec<Term>,
    inv_info: Option<InvInfo>,
    saw_check: bool,
}

fn parse_sort(e: &SExpr) -> Result<Sort, ParseError> {
    match e.as_atom() {
        Some("Int") => Ok(Sort::Int),
        Some("Bool") => Ok(Sort::Bool),
        _ => Err(ParseError::new(
            e.pos(),
            format!("expected sort, got `{e}`"),
        )),
    }
}

fn parse_params(e: &SExpr) -> Result<Vec<(Symbol, Sort)>, ParseError> {
    let list = e
        .as_list()
        .ok_or_else(|| ParseError::new(e.pos(), "expected parameter list"))?;
    let mut out = Vec::new();
    for p in list {
        let pair = p
            .as_list()
            .filter(|l| l.len() == 2)
            .ok_or_else(|| ParseError::new(p.pos(), "expected `(name Sort)`"))?;
        let name = pair[0]
            .as_atom()
            .ok_or_else(|| ParseError::new(pair[0].pos(), "expected parameter name"))?;
        out.push((Symbol::new(name), parse_sort(&pair[1])?));
    }
    Ok(out)
}

impl Reader {
    fn command(&mut self, e: &SExpr) -> Result<(), ParseError> {
        let items = e
            .as_list()
            .ok_or_else(|| ParseError::new(e.pos(), "expected a command"))?;
        let head = items
            .first()
            .and_then(SExpr::as_atom)
            .ok_or_else(|| ParseError::new(e.pos(), "expected a command head"))?;
        match head {
            "set-logic" => {
                let logic = items
                    .get(1)
                    .and_then(SExpr::as_atom)
                    .ok_or_else(|| ParseError::new(e.pos(), "set-logic needs a logic name"))?;
                self.logic = Some(logic.to_owned());
                Ok(())
            }
            "synth-fun" => self.synth_fun_cmd(e, items, false),
            "synth-inv" => self.synth_fun_cmd(e, items, true),
            "declare-var" => {
                if items.len() != 3 {
                    return Err(ParseError::new(e.pos(), "declare-var needs name and sort"));
                }
                let name = items[1]
                    .as_atom()
                    .ok_or_else(|| ParseError::new(items[1].pos(), "expected variable name"))?;
                let sort = parse_sort(&items[2])?;
                self.declared.push((Symbol::new(name), sort));
                Ok(())
            }
            "declare-primed-var" => {
                if items.len() != 3 {
                    return Err(ParseError::new(
                        e.pos(),
                        "declare-primed-var needs name and sort",
                    ));
                }
                let name = items[1]
                    .as_atom()
                    .ok_or_else(|| ParseError::new(items[1].pos(), "expected variable name"))?;
                let sort = parse_sort(&items[2])?;
                self.declared.push((Symbol::new(name), sort));
                self.declared.push((Symbol::new(&format!("{name}!")), sort));
                Ok(())
            }
            "define-fun" => {
                if items.len() != 5 {
                    return Err(ParseError::new(
                        e.pos(),
                        "define-fun needs name, params, sort, body",
                    ));
                }
                let name = items[1]
                    .as_atom()
                    .ok_or_else(|| ParseError::new(items[1].pos(), "expected function name"))?;
                let params = parse_params(&items[2])?;
                let ret = parse_sort(&items[3])?;
                let scope: HashMap<Symbol, Sort> = params.iter().copied().collect();
                let body = self.term(&items[4], &scope)?;
                let sym = Symbol::new(name);
                self.defs.define(sym, FuncDef::new(params, ret, body));
                self.def_order.push(sym);
                Ok(())
            }
            "constraint" => {
                if items.len() != 2 {
                    return Err(ParseError::new(e.pos(), "constraint needs one term"));
                }
                let scope: HashMap<Symbol, Sort> = self.declared.iter().copied().collect();
                let c = self.term(&items[1], &scope)?;
                self.constraints.push(c);
                Ok(())
            }
            "inv-constraint" => self.inv_constraint(e, items),
            "check-synth" => {
                self.saw_check = true;
                Ok(())
            }
            other => Err(ParseError::new(
                e.pos(),
                format!("unknown command `{other}`"),
            )),
        }
    }

    fn synth_fun_cmd(
        &mut self,
        e: &SExpr,
        items: &[SExpr],
        is_inv: bool,
    ) -> Result<(), ParseError> {
        if self.synth_fun.is_some() {
            return Err(ParseError::new(
                e.pos(),
                "multiple synth-fun commands are not supported",
            ));
        }
        let min_len = if is_inv { 3 } else { 4 };
        if items.len() < min_len {
            return Err(ParseError::new(e.pos(), "malformed synth-fun"));
        }
        let name = items[1]
            .as_atom()
            .ok_or_else(|| ParseError::new(items[1].pos(), "expected function name"))?;
        let params = parse_params(&items[2])?;
        let (ret, grammar_expr) = if is_inv {
            (Sort::Bool, items.get(3))
        } else {
            (parse_sort(&items[3])?, items.get(4))
        };
        let grammar = match grammar_expr {
            None => Grammar::clia(&params, ret),
            Some(g) => self.grammar(g, &params)?,
        };
        self.is_inv = is_inv;
        self.synth_fun = Some(SynthFun {
            name: Symbol::new(name),
            params,
            ret,
            grammar,
        });
        Ok(())
    }

    fn inv_constraint(&mut self, e: &SExpr, items: &[SExpr]) -> Result<(), ParseError> {
        if items.len() != 5 {
            return Err(ParseError::new(
                e.pos(),
                "inv-constraint needs inv, pre, trans, post",
            ));
        }
        let names: Vec<Symbol> = items[1..]
            .iter()
            .map(|i| {
                i.as_atom()
                    .map(Symbol::new)
                    .ok_or_else(|| ParseError::new(i.pos(), "expected a function name"))
            })
            .collect::<Result<_, _>>()?;
        let (inv, pre, trans, post) = (names[0], names[1], names[2], names[3]);
        let sf = self
            .synth_fun
            .as_ref()
            .ok_or_else(|| ParseError::new(e.pos(), "inv-constraint before synth-inv"))?;
        if sf.name != inv {
            return Err(ParseError::new(
                e.pos(),
                format!(
                    "inv-constraint names `{inv}`, but synth function is `{}`",
                    sf.name
                ),
            ));
        }
        let pre_def = self
            .defs
            .get(pre)
            .ok_or_else(|| ParseError::new(e.pos(), format!("undefined `{pre}`")))?
            .clone();
        let trans_def = self
            .defs
            .get(trans)
            .ok_or_else(|| ParseError::new(e.pos(), format!("undefined `{trans}`")))?
            .clone();
        let post_def = self
            .defs
            .get(post)
            .ok_or_else(|| ParseError::new(e.pos(), format!("undefined `{post}`")))?
            .clone();
        let vars: Vec<(Symbol, Sort)> = pre_def.params.clone();
        if trans_def.params.len() != 2 * vars.len() {
            return Err(ParseError::new(
                e.pos(),
                "trans must take unprimed and primed copies of the variables",
            ));
        }
        let primed: Vec<(Symbol, Sort)> = vars
            .iter()
            .map(|&(v, s)| (Symbol::new(&format!("{v}!")), s))
            .collect();
        for &(v, s) in vars.iter().chain(&primed) {
            if !self.declared.iter().any(|&(w, _)| w == v) {
                self.declared.push((v, s));
            }
        }
        let terms_of = |vs: &[(Symbol, Sort)]| -> Vec<Term> {
            vs.iter().map(|&(v, s)| Term::var(v, s)).collect()
        };
        let inv_x = Term::apply(inv, Sort::Bool, terms_of(&vars));
        let inv_xp = Term::apply(inv, Sort::Bool, terms_of(&primed));
        let pre_x = pre_def.instantiate(&terms_of(&vars));
        let post_x = post_def.instantiate(&terms_of(&vars));
        let mut both = terms_of(&vars);
        both.extend(terms_of(&primed));
        let trans_rel = trans_def.instantiate(&both);
        self.constraints.push(Term::implies(pre_x, inv_x.clone()));
        self.constraints
            .push(Term::implies(Term::and([inv_x.clone(), trans_rel]), inv_xp));
        self.constraints.push(Term::implies(inv_x, post_x));
        self.inv_info = Some(InvInfo {
            pre,
            trans,
            post,
            vars,
            primed_vars: primed,
        });
        Ok(())
    }

    /// Parses a term; `scope` gives the sorts of bound variables.
    fn term(&self, e: &SExpr, scope: &HashMap<Symbol, Sort>) -> Result<Term, ParseError> {
        match e {
            SExpr::Atom(s, pos) => {
                if let Ok(n) = s.parse::<i64>() {
                    return Ok(Term::int(n));
                }
                match s.as_str() {
                    "true" => return Ok(Term::tt()),
                    "false" => return Ok(Term::ff()),
                    _ => {}
                }
                let sym = Symbol::new(s);
                if let Some(&sort) = scope.get(&sym) {
                    return Ok(Term::var(sym, sort));
                }
                Err(ParseError::new(*pos, format!("unbound identifier `{s}`")))
            }
            SExpr::List(items, pos) => {
                let head = items
                    .first()
                    .and_then(SExpr::as_atom)
                    .ok_or_else(|| ParseError::new(*pos, "expected operator"))?;
                if head == "let" {
                    return self.let_term(items, *pos, scope);
                }
                let args: Vec<Term> = items[1..]
                    .iter()
                    .map(|a| self.term(a, scope))
                    .collect::<Result<_, _>>()?;
                self.apply_op(head, args, *pos)
            }
        }
    }

    fn let_term(
        &self,
        items: &[SExpr],
        pos: Pos,
        scope: &HashMap<Symbol, Sort>,
    ) -> Result<Term, ParseError> {
        if items.len() != 3 {
            return Err(ParseError::new(pos, "let needs bindings and a body"));
        }
        let bindings = items[1]
            .as_list()
            .ok_or_else(|| ParseError::new(items[1].pos(), "expected binding list"))?;
        let mut inner_scope = scope.clone();
        let mut subst: Vec<(Symbol, Term)> = Vec::new();
        for b in bindings {
            let parts = b
                .as_list()
                .filter(|l| l.len() == 2 || l.len() == 3)
                .ok_or_else(|| ParseError::new(b.pos(), "expected `(name [Sort] term)`"))?;
            let name = parts[0]
                .as_atom()
                .ok_or_else(|| ParseError::new(parts[0].pos(), "expected binding name"))?;
            // Bindings are evaluated in the *outer* scope (parallel let).
            let value = self.term(parts.last().expect("len checked"), scope)?;
            let sym = Symbol::new(name);
            inner_scope.insert(sym, value.sort());
            subst.push((sym, value));
        }
        let body = self.term(&items[2], &inner_scope)?;
        let map: std::collections::BTreeMap<Symbol, Term> = subst.into_iter().collect();
        Ok(body.subst_vars(&map))
    }

    fn apply_op(&self, head: &str, mut args: Vec<Term>, pos: Pos) -> Result<Term, ParseError> {
        let bin = |args: &mut Vec<Term>| -> Result<(Term, Term), ParseError> {
            if args.len() != 2 {
                return Err(ParseError::new(pos, "expected 2 arguments"));
            }
            let b = args.pop().expect("len checked");
            let a = args.pop().expect("len checked");
            Ok((a, b))
        };
        match head {
            "+" => {
                if args.len() < 2 {
                    return Err(ParseError::new(pos, "`+` needs at least 2 arguments"));
                }
                Ok(Term::sum(args))
            }
            "-" => match args.len() {
                1 => Ok(Term::neg(args.pop().expect("len checked"))),
                2 => {
                    let (a, b) = bin(&mut args)?;
                    Ok(Term::sub(a, b))
                }
                _ => Err(ParseError::new(pos, "`-` needs 1 or 2 arguments")),
            },
            "*" => {
                if args.len() != 2 {
                    return Err(ParseError::new(pos, "`*` needs 2 arguments"));
                }
                let (a, b) = bin(&mut args)?;
                if a.as_int_const().is_none() && b.as_int_const().is_none() {
                    return Err(ParseError::new(pos, "nonlinear multiplication"));
                }
                Ok(Term::mul(a, b))
            }
            "ite" => {
                if args.len() != 3 {
                    return Err(ParseError::new(pos, "`ite` needs 3 arguments"));
                }
                let e = args.pop().expect("3");
                let t = args.pop().expect("2");
                let c = args.pop().expect("1");
                Ok(Term::ite(c, t, e))
            }
            "=" => {
                let (a, b) = bin(&mut args)?;
                Ok(Term::eq(a, b))
            }
            "<=" => {
                let (a, b) = bin(&mut args)?;
                Ok(Term::le(a, b))
            }
            "<" => {
                let (a, b) = bin(&mut args)?;
                Ok(Term::lt(a, b))
            }
            ">=" => {
                let (a, b) = bin(&mut args)?;
                Ok(Term::ge(a, b))
            }
            ">" => {
                let (a, b) = bin(&mut args)?;
                Ok(Term::gt(a, b))
            }
            "and" => Ok(Term::and(args)),
            "or" => Ok(Term::or(args)),
            "not" => {
                if args.len() != 1 {
                    return Err(ParseError::new(pos, "`not` needs 1 argument"));
                }
                Ok(Term::not(args.pop().expect("len checked")))
            }
            "=>" => {
                let (a, b) = bin(&mut args)?;
                Ok(Term::implies(a, b))
            }
            name => {
                let sym = Symbol::new(name);
                if let Some(def) = self.defs.get(sym) {
                    if def.params.len() != args.len() {
                        return Err(ParseError::new(
                            pos,
                            format!("`{name}` expects {} arguments", def.params.len()),
                        ));
                    }
                    return Ok(Term::apply(sym, def.ret, args));
                }
                if let Some(sf) = &self.synth_fun {
                    if sf.name == sym {
                        if sf.params.len() != args.len() {
                            return Err(ParseError::new(
                                pos,
                                format!("`{name}` expects {} arguments", sf.params.len()),
                            ));
                        }
                        return Ok(Term::apply(sym, sf.ret, args));
                    }
                }
                Err(ParseError::new(pos, format!("unknown function `{name}`")))
            }
        }
    }

    /// Parses a grammar block: `((NT Sort (prod…)) …)`, optionally preceded
    /// by a predeclaration list `((NT Sort) …)` as in SyGuS-IF v2.
    fn grammar(&self, e: &SExpr, params: &[(Symbol, Sort)]) -> Result<Grammar, ParseError> {
        let groups = e
            .as_list()
            .ok_or_else(|| ParseError::new(e.pos(), "expected grammar"))?;
        // Drop a predeclaration list if present (every entry of length 2).
        let rule_groups: &[SExpr] = if !groups.is_empty()
            && groups
                .iter()
                .all(|g| g.as_list().map(|l| l.len() == 2).unwrap_or(false))
        {
            // This *whole* block is a predeclaration — the rules follow in a
            // sibling; but SyGuS v2 puts both inside synth-fun as two
            // separate arguments. We are given one expression here, so this
            // case means "declaration only" which we cannot use.
            return Err(ParseError::new(
                e.pos(),
                "grammar has declarations but no rules",
            ));
        } else {
            groups
        };
        let mut grammar = Grammar::new();
        // First pass: declare non-terminals.
        let mut decls: Vec<(&[SExpr], usize)> = Vec::new();
        for g in rule_groups {
            let parts = g
                .as_list()
                .filter(|l| l.len() == 3)
                .ok_or_else(|| ParseError::new(g.pos(), "expected `(NT Sort (prods…))`"))?;
            let name = parts[0]
                .as_atom()
                .ok_or_else(|| ParseError::new(parts[0].pos(), "expected non-terminal name"))?;
            let sort = parse_sort(&parts[1])?;
            let id = grammar.add_nonterminal(name, sort);
            decls.push((parts, id));
        }
        // Second pass: productions.
        for (parts, id) in decls {
            let prods = parts[2]
                .as_list()
                .ok_or_else(|| ParseError::new(parts[2].pos(), "expected production list"))?;
            for p in prods {
                let gt = self.gterm(p, params, &grammar)?;
                grammar.add_production(id, gt);
            }
        }
        if grammar.nonterminals().is_empty() {
            return Err(ParseError::new(e.pos(), "empty grammar"));
        }
        grammar.set_flavor(GrammarFlavor::Custom);
        Ok(grammar)
    }

    fn gterm(
        &self,
        e: &SExpr,
        params: &[(Symbol, Sort)],
        grammar: &Grammar,
    ) -> Result<GTerm, ParseError> {
        match e {
            SExpr::Atom(s, pos) => {
                if let Ok(n) = s.parse::<i64>() {
                    return Ok(GTerm::Const(n));
                }
                match s.as_str() {
                    "true" => return Ok(GTerm::BoolConst(true)),
                    "false" => return Ok(GTerm::BoolConst(false)),
                    _ => {}
                }
                let sym = Symbol::new(s);
                if let Some(id) = grammar.find(sym) {
                    return Ok(GTerm::Nonterminal(id));
                }
                if let Some(&(_, sort)) = params.iter().find(|&&(p, _)| p == sym) {
                    return Ok(GTerm::Var(sym, sort));
                }
                Err(ParseError::new(
                    *pos,
                    format!("unknown grammar symbol `{s}`"),
                ))
            }
            SExpr::List(items, pos) => {
                let head = items
                    .first()
                    .and_then(SExpr::as_atom)
                    .ok_or_else(|| ParseError::new(*pos, "expected production operator"))?;
                match head {
                    "Constant" => {
                        let sort =
                            parse_sort(items.get(1).ok_or_else(|| {
                                ParseError::new(*pos, "`Constant` needs a sort")
                            })?)?;
                        return Ok(GTerm::AnyConst(sort));
                    }
                    "Variable" => {
                        let sort =
                            parse_sort(items.get(1).ok_or_else(|| {
                                ParseError::new(*pos, "`Variable` needs a sort")
                            })?)?;
                        return Ok(GTerm::AnyVar(sort));
                    }
                    _ => {}
                }
                let args: Vec<GTerm> = items[1..]
                    .iter()
                    .map(|a| self.gterm(a, params, grammar))
                    .collect::<Result<_, _>>()?;
                let op = match head {
                    "+" => Op::Add,
                    "-" => {
                        if args.len() == 1 {
                            Op::Neg
                        } else {
                            Op::Sub
                        }
                    }
                    "*" => Op::Mul,
                    "ite" => Op::Ite,
                    "=" => Op::Eq,
                    "<=" => Op::Le,
                    "<" => Op::Lt,
                    ">=" => Op::Ge,
                    ">" => Op::Gt,
                    "and" => Op::And,
                    "or" => Op::Or,
                    "not" => Op::Not,
                    "=>" => Op::Implies,
                    name => {
                        let sym = Symbol::new(name);
                        let ret = self.defs.get(sym).map(|d| d.ret).ok_or_else(|| {
                            ParseError::new(*pos, format!("unknown grammar operator `{name}`"))
                        })?;
                        Op::Apply(sym, ret)
                    }
                };
                Ok(GTerm::App(op, args))
            }
        }
    }

    fn finish(self) -> Result<Problem, ParseError> {
        let synth_fun = self.synth_fun.ok_or_else(|| {
            ParseError::new(
                Pos { line: 1, col: 1 },
                "missing synth-fun or synth-inv command",
            )
        })?;
        Ok(Problem {
            logic: self.logic.unwrap_or_else(|| "LIA".to_owned()),
            synth_fun,
            declared_vars: self.declared,
            constraints: self.constraints,
            definitions: self.defs,
            inv: self.inv_info,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX2: &str = r#"
        (set-logic LIA)
        (synth-fun max2 ((x Int) (y Int)) Int)
        (declare-var x Int)
        (declare-var y Int)
        (constraint (>= (max2 x y) x))
        (constraint (>= (max2 x y) y))
        (constraint (or (= (max2 x y) x) (= (max2 x y) y)))
        (check-synth)
    "#;

    #[test]
    fn parses_max2() {
        let p = parse_problem(MAX2).unwrap();
        assert_eq!(p.logic, "LIA");
        assert_eq!(p.synth_fun.name, Symbol::new("max2"));
        assert_eq!(p.synth_fun.params.len(), 2);
        assert_eq!(p.synth_fun.ret, Sort::Int);
        assert_eq!(p.declared_vars.len(), 2);
        assert_eq!(p.constraints.len(), 3);
        // Default grammar is full CLIA.
        assert_eq!(p.synth_fun.grammar.flavor(), GrammarFlavor::Clia);
    }

    #[test]
    fn parses_custom_grammar() {
        let src = r#"
            (set-logic LIA)
            (define-fun qm ((a Int) (b Int)) Int (ite (< a 0) b a))
            (synth-fun f ((x Int) (y Int)) Int
                ((S Int (x y 0 1 (+ S S) (- S S) (qm S S)))))
            (declare-var x Int)
            (declare-var y Int)
            (constraint (>= (f x y) x))
            (check-synth)
        "#;
        let p = parse_problem(src).unwrap();
        let g = &p.synth_fun.grammar;
        assert_eq!(g.nonterminals().len(), 1);
        assert_eq!(g.nonterminal(0).productions.len(), 7);
        assert_eq!(g.flavor(), GrammarFlavor::Custom);
        // qm production resolved against the definition.
        let ops = g.operators();
        assert!(ops.contains(&Op::Apply(Symbol::new("qm"), Sort::Int)));
        assert!(p.definitions.contains(Symbol::new("qm")));
    }

    #[test]
    fn parses_two_nonterminal_grammar() {
        let src = r#"
            (set-logic LIA)
            (synth-fun f ((x Int)) Int
                ((S Int (x 0 1 (ite B S S)))
                 (B Bool ((>= S S) (and B B) (not B)))))
            (constraint (= (f 0) 0))
            (check-synth)
        "#;
        let p = parse_problem(src).unwrap();
        let g = &p.synth_fun.grammar;
        assert_eq!(g.nonterminals().len(), 2);
        assert_eq!(g.nonterminal(1).sort, Sort::Bool);
        assert_eq!(g.start(), 0);
    }

    #[test]
    fn parses_invariant_problem() {
        let src = r#"
            (set-logic LIA)
            (synth-inv inv ((x Int)))
            (define-fun pre ((x Int)) Bool (= x 0))
            (define-fun trans ((x Int) (x! Int)) Bool (= x! (+ x 1)))
            (define-fun post ((x Int)) Bool (>= x 0))
            (inv-constraint inv pre trans post)
            (check-synth)
        "#;
        let p = parse_problem(src).unwrap();
        assert!(p.inv.is_some());
        assert_eq!(p.constraints.len(), 3);
        assert_eq!(p.synth_fun.ret, Sort::Bool);
        let info = p.inv.as_ref().unwrap();
        assert_eq!(info.vars.len(), 1);
        assert_eq!(info.primed_vars[0].0.as_str(), "x!");
        // The three expanded constraints mention inv applications.
        for c in &p.constraints {
            assert!(c.applies(Symbol::new("inv")));
        }
    }

    #[test]
    fn let_terms_are_inlined() {
        let src = r#"
            (set-logic LIA)
            (synth-fun f ((x Int)) Int)
            (declare-var x Int)
            (constraint (= (f x) (let ((y (+ x 1))) (+ y y))))
            (check-synth)
        "#;
        let p = parse_problem(src).unwrap();
        let c = &p.constraints[0];
        // let is gone; body references x directly
        assert!(!c.to_string().contains("let"));
        assert!(c.free_vars().contains_key(&Symbol::new("x")));
    }

    #[test]
    fn error_unbound_identifier() {
        let src = "(set-logic LIA)(synth-fun f ((x Int)) Int)(constraint (= (f zzz_undeclared) 0))(check-synth)";
        let err = parse_problem(src).unwrap_err();
        assert!(err.message.contains("unbound"), "{err}");
    }

    #[test]
    fn error_unknown_command() {
        let err = parse_problem("(frobnicate)").unwrap_err();
        assert!(err.message.contains("unknown command"));
    }

    #[test]
    fn error_missing_synth_fun() {
        let err = parse_problem("(set-logic LIA)(check-synth)").unwrap_err();
        assert!(err.message.contains("missing synth-fun"));
    }

    #[test]
    fn error_arity_mismatch() {
        let src = "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var a Int)(constraint (= (f a a) 0))(check-synth)";
        let err = parse_problem(src).unwrap_err();
        assert!(err.message.contains("expects 1 arguments"), "{err}");
    }

    #[test]
    fn error_nonlinear_multiplication() {
        let src = "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var a Int)(declare-var b Int)(constraint (= (f a) (* a b)))(check-synth)";
        let err = parse_problem(src).unwrap_err();
        assert!(err.message.contains("nonlinear"), "{err}");
    }

    #[test]
    fn constant_and_variable_productions() {
        let src = r#"
            (set-logic LIA)
            (synth-fun f ((x Int)) Int
                ((S Int ((Constant Int) (Variable Int) (+ S S)))))
            (constraint (= (f 1) 2))
            (check-synth)
        "#;
        let p = parse_problem(src).unwrap();
        let prods = &p.synth_fun.grammar.nonterminal(0).productions;
        assert!(prods.contains(&GTerm::AnyConst(Sort::Int)));
        assert!(prods.contains(&GTerm::AnyVar(Sort::Int)));
    }

    #[test]
    fn primed_var_declaration() {
        let src = "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-primed-var x Int)(constraint (= (f x) x))(check-synth)";
        let p = parse_problem(src).unwrap();
        assert_eq!(p.declared_vars.len(), 2);
        assert_eq!(p.declared_vars[1].0.as_str(), "x!");
    }

    #[test]
    fn negative_numerals() {
        let src = "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)(constraint (= (f x) (- x -3)))(check-synth)";
        let p = parse_problem(src).unwrap();
        let s = p.constraints[0].to_string();
        assert!(
            s.contains("(- 3)") || s.contains("+ x 3") || s.contains("(+ 3 x)"),
            "{s}"
        );
    }
}
