//! synthlint — repo-aware static analysis for the DryadSynth workspace.
//!
//! Four rule passes over a hand-rolled token/brace model of the workspace's
//! own Rust sources (no `syn`, no external crates — same spirit as the
//! hand-rolled `Json`), plus a bounded-interleaving explorer that
//! model-checks the daemon's lock-free protocols. See DESIGN.md §12.
//!
//! Findings are suppressible only via an inline pragma with a mandatory
//! written reason:
//!
//! ```text
//! // synthlint: allow(unpolled-loop) — bounded by MAX_STEPS above
//! ```
//!
//! The `synthlint` binary renders a deterministic text report, optionally a
//! JSON document (`--json FILE`) in the grammar-lint shape, and exits
//! non-zero under `--deny` when unsuppressed errors remain — that is the CI
//! gate.

pub mod interleave;
pub mod lexer;
pub mod report;
pub mod rules;

pub use lexer::KNOWN_RULES;
pub use report::{Finding, Level, LintRun, Suppressed};
pub use rules::{lint_sources, SourceFile};

use std::path::{Path, PathBuf};

/// Directory names never descended into when collecting sources: build
/// output, vendored shims, VCS metadata, and test/bench/example trees (the
/// rules govern shipped library and binary code; integration tests exercise
/// panics and ad-hoc loops by design).
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    "tests",
    "benches",
    "examples",
    "fixtures",
];

/// Recursively collect `.rs` files under `roots`, skipping [`SKIP_DIRS`].
/// Paths are normalized to `/` separators and sorted for determinism.
pub fn collect_rs_files(roots: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for root in roots {
        walk(root, &mut out)?;
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let meta = std::fs::metadata(path)?;
    if meta.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        let name = entry
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if entry.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&entry, out)?;
        } else if name.ends_with(".rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Read the given files and lint them. Unreadable files are reported as
/// errors by the caller; here they are simply skipped.
pub fn lint_paths(paths: &[PathBuf]) -> LintRun {
    let files: Vec<SourceFile> = paths
        .iter()
        .filter_map(|p| {
            let text = std::fs::read_to_string(p).ok()?;
            Some(SourceFile::new(p.to_string_lossy().replace('\\', "/"), text))
        })
        .collect();
    lint_sources(&files)
}
