//! A mini-loom: bounded-interleaving exploration of concurrency protocols.
//!
//! Virtual threads are lists of step closures over a shared model state `S`.
//! A *schedule* is the sequence of thread indices in execution order; the
//! explorer enumerates schedules depth-first (deterministic, lexicographic)
//! and replays each one against a freshly built state, checking a per-step
//! invariant after every step and a final invariant once all threads finish.
//! When the exhaustive space exceeds the schedule budget, exploration is
//! truncated (`complete = false`) — or, with a seed, schedules are sampled
//! with a deterministic LCG instead (the chaos.rs idiom).
//!
//! The models under test (see `tests/interleave_models.rs`) are protocol
//! transcriptions: the same slot-claim arithmetic as `EventRing::record`, the
//! same two-bank rotation as `LatencyHistogram::rotated`, the same
//! line-buffer discipline as `TagSink` — with each atomic/locked region as
//! one step, which is exactly the granularity at which those protocols claim
//! to be correct.

/// One atomic step of a virtual thread.
pub type Step<S> = Box<dyn Fn(&mut S)>;

/// One virtual thread: an ordered list of atomic steps.
pub struct VThread<S> {
    pub name: String,
    pub steps: Vec<Step<S>>,
}

impl<S> VThread<S> {
    pub fn new(name: impl Into<String>) -> VThread<S> {
        VThread {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    pub fn step(mut self, f: impl Fn(&mut S) + 'static) -> VThread<S> {
        self.steps.push(Box::new(f));
        self
    }
}

/// Exploration limits. `max_schedules` bounds the number of complete
/// schedules replayed; `seed` switches from exhaustive DFS to seeded random
/// sampling of `max_schedules` schedules.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    pub max_schedules: usize,
    pub seed: Option<u64>,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            max_schedules: 50_000,
            seed: None,
        }
    }
}

/// A schedule that violated an invariant, for reproduction in a bug report.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Thread indices in execution order up to and including the bad step.
    pub schedule: Vec<usize>,
    pub message: String,
}

#[derive(Debug)]
pub struct Exploration {
    /// Complete schedules replayed.
    pub schedules: usize,
    /// Total steps executed across all replays.
    pub steps: usize,
    /// Whether the schedule space was exhausted (false when truncated by
    /// `max_schedules` or when sampling randomly).
    pub complete: bool,
    pub violation: Option<Violation>,
}

impl Exploration {
    /// Panic with the offending schedule if a violation was found.
    #[track_caller]
    pub fn assert_ok(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "interleaving violation after {} schedule(s): {} (schedule {:?})",
                self.schedules, v.message, v.schedule
            );
        }
    }
}

type Check<S> = dyn Fn(&S) -> Result<(), String>;

/// Explore interleavings of the threads built by `mk`.
///
/// `mk` returns a fresh `(state, threads)` pair per replay — schedules must
/// not share state. `check_step` runs after every step; `check_final` once
/// all threads have finished.
pub fn explore<S, F>(
    mk: F,
    check_step: &Check<S>,
    check_final: &Check<S>,
    opts: &Explorer,
) -> Exploration
where
    F: Fn() -> (S, Vec<VThread<S>>),
{
    match opts.seed {
        None => explore_exhaustive(&mk, check_step, check_final, opts.max_schedules),
        Some(seed) => explore_random(&mk, check_step, check_final, opts.max_schedules, seed),
    }
}

/// Replay one schedule prefix from scratch. Returns `Err` on invariant
/// violation, `Ok(runnable)` with the per-thread remaining-step counts.
fn replay<S>(
    state: &mut S,
    threads: &[VThread<S>],
    schedule: &[usize],
    check_step: &Check<S>,
) -> Result<Vec<usize>, (usize, String)> {
    let mut pc: Vec<usize> = vec![0; threads.len()];
    for (step_no, &t) in schedule.iter().enumerate() {
        let thread = &threads[t];
        (thread.steps[pc[t]])(state);
        pc[t] += 1;
        if let Err(msg) = check_step(state) {
            return Err((step_no, format!("[after {}#{}] {msg}", thread.name, pc[t] - 1)));
        }
    }
    Ok(pc)
}

fn explore_exhaustive<S, F>(
    mk: &F,
    check_step: &Check<S>,
    check_final: &Check<S>,
    max_schedules: usize,
) -> Exploration
where
    F: Fn() -> (S, Vec<VThread<S>>),
{
    let mut result = Exploration {
        schedules: 0,
        steps: 0,
        complete: true,
        violation: None,
    };
    // DFS over schedule prefixes in lexicographic thread order. Each
    // complete schedule is replayed from a fresh state; the replay cost is
    // O(total steps), which for the bounded models here is tiny.
    let (_, probe) = mk();
    let sizes: Vec<usize> = probe.steps_per_thread();
    let total: usize = sizes.iter().sum();
    if total == 0 {
        return result;
    }
    let mut prefix: Vec<usize> = Vec::with_capacity(total);
    loop {
        // Extend the prefix greedily with the lowest runnable thread.
        let mut remaining = sizes.clone();
        for &t in &prefix {
            remaining[t] -= 1;
        }
        while prefix.len() < total {
            let next = (0..sizes.len()).find(|&t| remaining[t] > 0).expect("steps left");
            prefix.push(next);
            remaining[next] -= 1;
        }
        // Replay the complete schedule.
        let (mut state, threads) = mk();
        result.schedules += 1;
        result.steps += total;
        match replay(&mut state, &threads, &prefix, check_step) {
            Err((step_no, msg)) => {
                result.violation = Some(Violation {
                    schedule: prefix[..=step_no].to_vec(),
                    message: msg,
                });
                return result;
            }
            Ok(_) => {
                if let Err(msg) = check_final(&state) {
                    result.violation = Some(Violation {
                        schedule: prefix.clone(),
                        message: format!("[final] {msg}"),
                    });
                    return result;
                }
            }
        }
        if result.schedules >= max_schedules {
            result.complete = false;
            return result;
        }
        // Backtrack: find the last position where a higher thread index was
        // still runnable, bump to the next runnable one, and truncate.
        let mut bumped = false;
        // Recompute remaining counts at each prefix position from the left.
        let mut pos = prefix.len();
        while pos > 0 {
            pos -= 1;
            let mut counts = sizes.clone();
            for &t in &prefix[..pos] {
                counts[t] -= 1;
            }
            let cur = prefix[pos];
            if let Some(next) = ((cur + 1)..sizes.len()).find(|&t| counts[t] > 0) {
                prefix.truncate(pos);
                prefix.push(next);
                bumped = true;
                break;
            }
        }
        if !bumped {
            return result; // Enumerated every schedule.
        }
    }
}

fn explore_random<S, F>(
    mk: &F,
    check_step: &Check<S>,
    check_final: &Check<S>,
    max_schedules: usize,
    seed: u64,
) -> Exploration
where
    F: Fn() -> (S, Vec<VThread<S>>),
{
    // Same LCG constants as the daemon chaos harness (Numerical Recipes).
    let mut rng = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        rng >> 33
    };
    let mut result = Exploration {
        schedules: 0,
        steps: 0,
        complete: false,
        violation: None,
    };
    for _ in 0..max_schedules {
        let (mut state, threads) = mk();
        let sizes = threads.steps_per_thread();
        let mut remaining = sizes.clone();
        let mut left: usize = sizes.iter().sum();
        let mut schedule = Vec::with_capacity(left);
        while left > 0 {
            let runnable: Vec<usize> =
                (0..sizes.len()).filter(|&t| remaining[t] > 0).collect();
            let t = runnable[(next() as usize) % runnable.len()];
            schedule.push(t);
            remaining[t] -= 1;
            left -= 1;
        }
        result.schedules += 1;
        result.steps += schedule.len();
        match replay(&mut state, &threads, &schedule, check_step) {
            Err((step_no, msg)) => {
                result.violation = Some(Violation {
                    schedule: schedule[..=step_no].to_vec(),
                    message: msg,
                });
                return result;
            }
            Ok(_) => {
                if let Err(msg) = check_final(&state) {
                    result.violation = Some(Violation {
                        schedule,
                        message: format!("[final] {msg}"),
                    });
                    return result;
                }
            }
        }
    }
    result
}

trait StepsPerThread {
    fn steps_per_thread(&self) -> Vec<usize>;
}

impl<S> StepsPerThread for Vec<VThread<S>> {
    fn steps_per_thread(&self) -> Vec<usize> {
        self.iter().map(|t| t.steps.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads of `a` and `b` steps interleave in C(a+b, a) ways.
    fn count_schedules(a: usize, b: usize) -> usize {
        let mk = move || {
            let mut t1 = VThread::new("a");
            for _ in 0..a {
                t1 = t1.step(|s: &mut u32| *s += 1);
            }
            let mut t2 = VThread::new("b");
            for _ in 0..b {
                t2 = t2.step(|s: &mut u32| *s += 1);
            }
            (0u32, vec![t1, t2])
        };
        let r = explore(mk, &|_| Ok(()), &|_| Ok(()), &Explorer::default());
        assert!(r.complete);
        assert!(r.violation.is_none());
        r.schedules
    }

    #[test]
    fn exhaustive_enumeration_counts_match_binomials() {
        assert_eq!(count_schedules(1, 1), 2);
        assert_eq!(count_schedules(2, 2), 6);
        assert_eq!(count_schedules(3, 3), 20);
        assert_eq!(count_schedules(4, 2), 15);
    }

    #[test]
    fn finds_a_lost_update() {
        // Classic read-modify-write race: both threads read, then both
        // write, losing one increment. The explorer must find it.
        #[derive(Default)]
        struct S {
            shared: u32,
            t0_read: u32,
            t1_read: u32,
        }
        let mk = || {
            let t0 = VThread::new("t0")
                .step(|s: &mut S| s.t0_read = s.shared)
                .step(|s: &mut S| s.shared = s.t0_read + 1);
            let t1 = VThread::new("t1")
                .step(|s: &mut S| s.t1_read = s.shared)
                .step(|s: &mut S| s.shared = s.t1_read + 1);
            (S::default(), vec![t0, t1])
        };
        let r = explore(
            mk,
            &|_| Ok(()),
            &|s| {
                if s.shared == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: shared = {}", s.shared))
                }
            },
            &Explorer::default(),
        );
        let v = r.violation.expect("must find the lost update");
        assert!(v.message.contains("lost update"));
    }

    #[test]
    fn atomic_fetch_add_has_no_lost_update() {
        // The fixed protocol: increment is a single step. No interleaving
        // loses an update, so the explorer reports a clean exhaustive run.
        let mk = || {
            let t0 = VThread::new("t0").step(|s: &mut u32| *s += 1);
            let t1 = VThread::new("t1").step(|s: &mut u32| *s += 1);
            (0u32, vec![t0, t1])
        };
        let r = explore(
            mk,
            &|_| Ok(()),
            &|s| if *s == 2 { Ok(()) } else { Err("lost".into()) },
            &Explorer::default(),
        );
        assert!(r.complete);
        assert!(r.violation.is_none());
        r.assert_ok();
    }

    #[test]
    fn truncation_is_reported() {
        let mk = || {
            let mut ts = Vec::new();
            for i in 0..4 {
                let mut t = VThread::new(format!("t{i}"));
                for _ in 0..4 {
                    t = t.step(|_s: &mut ()| {});
                }
                ts.push(t);
            }
            ((), ts)
        };
        let r = explore(
            mk,
            &|_| Ok(()),
            &|_| Ok(()),
            &Explorer {
                max_schedules: 100,
                seed: None,
            },
        );
        assert!(!r.complete);
        assert_eq!(r.schedules, 100);
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let mk = || {
            let t0 = VThread::new("t0").step(|s: &mut u32| *s += 1).step(|s: &mut u32| *s += 1);
            let t1 = VThread::new("t1").step(|s: &mut u32| *s *= 2).step(|s: &mut u32| *s += 3);
            (0u32, vec![t0, t1])
        };
        let opts = Explorer {
            max_schedules: 16,
            seed: Some(42),
        };
        let r1 = explore(mk, &|_| Ok(()), &|_| Ok(()), &opts);
        let r2 = explore(mk, &|_| Ok(()), &|_| Ok(()), &opts);
        assert_eq!(r1.schedules, r2.schedules);
        assert_eq!(r1.steps, r2.steps);
    }
}
