//! Deterministic lint report, text and JSON renderings.
//!
//! The shape deliberately mirrors the grammar `LintReport` in
//! `sygus_ast::analysis`: a flat finding list with levels, a stable sort, and
//! a one-line summary. The JSON document (`version` 1, `tool` `"synthlint"`)
//! is what the CI gate archives and what `bench compare` ingests as a
//! trajectory document.

use std::fmt;

use sygus_ast::Json;

use crate::lexer::KNOWN_RULES;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Warning,
    Error,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Warning => "warning",
            Level::Error => "error",
        }
    }
}

#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule slug: one of `KNOWN_RULES`, or `"pragma"` for pragma hygiene.
    pub rule: &'static str,
    pub level: Level,
    pub file: String,
    pub line: u32,
    /// Enclosing function, when the site is inside one.
    pub function: Option<String>,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}:{}", self.level.as_str(), self.rule, self.file, self.line)?;
        if let Some(func) = &self.function {
            write!(f, " (in {func})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A finding silenced by an inline pragma, kept for the audit trail.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub finding: Finding,
    pub reason: String,
}

/// Result of a lint run over a set of files.
#[derive(Debug, Default)]
pub struct LintRun {
    pub files: usize,
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
}

impl LintRun {
    /// Stable order so text and JSON output are byte-deterministic.
    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.file.clone(), f.line, f.rule, f.message.clone());
        self.findings.sort_by_key(key);
        self.suppressed.sort_by_key(|s| key(&s.finding));
    }

    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.level == Level::Error).count()
    }

    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.level == Level::Warning).count()
    }

    /// Whether `--deny` should fail the run.
    pub fn deny_fails(&self) -> bool {
        self.errors() > 0
    }

    /// Unsuppressed finding count for one rule (bench trajectory input).
    pub fn count_for(&self, rule: &str) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    pub fn suppressed_for(&self, rule: &str) -> usize {
        self.suppressed.iter().filter(|s| s.finding.rule == rule).count()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        for s in &self.suppressed {
            out.push_str(&format!(
                "allowed[{}] {}:{}: {}\n",
                s.finding.rule, s.finding.file, s.finding.line, s.reason
            ));
        }
        out.push_str(&format!(
            "synthlint: {} file(s), {} error(s), {} warning(s), {} suppressed\n",
            self.files,
            self.errors(),
            self.warnings(),
            self.suppressed.len()
        ));
        out
    }

    pub fn to_json(&self) -> Json {
        let finding_json = |f: &Finding| {
            let mut fields = vec![
                ("rule", Json::Str(f.rule.to_string())),
                ("level", Json::Str(f.level.as_str().to_string())),
                ("file", Json::Str(f.file.clone())),
                ("line", Json::Int(i64::from(f.line))),
                ("message", Json::Str(f.message.clone())),
            ];
            if let Some(func) = &f.function {
                fields.insert(4, ("function", Json::Str(func.clone())));
            }
            Json::obj(fields)
        };
        let mut summary = Vec::new();
        for rule in KNOWN_RULES.iter().copied().chain(["pragma"]) {
            summary.push(Json::obj(vec![
                ("rule", Json::Str(rule.to_string())),
                ("findings", Json::Int(self.count_for(rule) as i64)),
                ("suppressed", Json::Int(self.suppressed_for(rule) as i64)),
            ]));
        }
        Json::obj(vec![
            ("version", Json::Int(1)),
            ("tool", Json::Str("synthlint".to_string())),
            ("files", Json::Int(self.files as i64)),
            ("errors", Json::Int(self.errors() as i64)),
            ("warnings", Json::Int(self.warnings() as i64)),
            ("summary", Json::Arr(summary)),
            (
                "findings",
                Json::Arr(self.findings.iter().map(finding_json).collect()),
            ),
            (
                "suppressed",
                Json::Arr(
                    self.suppressed
                        .iter()
                        .map(|s| {
                            let mut j = finding_json(&s.finding);
                            if let Json::Obj(fields) = &mut j {
                                fields.push(("reason".to_string(), Json::Str(s.reason.clone())));
                            }
                            j
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            level: Level::Error,
            file: file.to_string(),
            line,
            function: Some("f".to_string()),
            message: "msg".to_string(),
        }
    }

    #[test]
    fn sort_is_stable_and_text_deterministic() {
        let mut run = LintRun {
            files: 2,
            findings: vec![
                finding("panic-surface", "b.rs", 3),
                finding("unpolled-loop", "a.rs", 9),
                finding("lock-order", "a.rs", 2),
            ],
            suppressed: vec![],
        };
        run.sort();
        let text = run.render_text();
        let first = text.lines().next().unwrap();
        assert!(first.contains("a.rs:2"), "{text}");
        assert!(text.contains("2 file(s), 3 error(s), 0 warning(s), 0 suppressed"));
    }

    #[test]
    fn json_shape_has_summary_per_rule() {
        let run = LintRun {
            files: 1,
            findings: vec![finding("unpolled-loop", "a.rs", 1)],
            suppressed: vec![Suppressed {
                finding: finding("relaxed-handoff", "a.rs", 4),
                reason: "documented".to_string(),
            }],
        };
        let j = run.to_json();
        assert_eq!(j.get("version").and_then(Json::as_i64), Some(1));
        assert_eq!(
            j.get("tool").and_then(Json::as_str),
            Some("synthlint")
        );
        assert_eq!(j.get("errors").and_then(Json::as_i64), Some(1));
        let summary = match j.get("summary") {
            Some(Json::Arr(items)) => items,
            other => panic!("summary missing: {other:?}"),
        };
        // Four rules + pragma hygiene.
        assert_eq!(summary.len(), 5);
        let text = j.to_string();
        let reparsed = Json::parse(&text).expect("round trip");
        assert_eq!(reparsed.get("files").and_then(Json::as_i64), Some(1));
    }
}
