//! A minimal Rust tokenizer for lint purposes.
//!
//! This is deliberately not a full Rust lexer: it produces identifiers,
//! punctuation, and opaque literal tokens with accurate line numbers, and it
//! captures line comments so that `// synthlint: allow(...)` pragmas can be
//! recovered. Strings (including raw and byte strings), char literals,
//! lifetimes, and nested block comments are consumed correctly so that braces
//! and keywords inside them never leak into the token stream — that is the
//! only property the rule passes depend on.

/// Rule names accepted inside `allow(...)`.
pub const KNOWN_RULES: &[&str] = &[
    "unpolled-loop",
    "lock-order",
    "relaxed-handoff",
    "panic-surface",
];

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (braces, dots, operators, ...).
    Punct(char),
    /// String/char/number literal; contents are irrelevant to the rules.
    Lit,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(i) if i == s)
    }
}

/// A parsed suppression pragma: `// synthlint: allow(rule[, rule]) — reason`.
///
/// The reason separator may be an em-dash, `--`, `-`, or `:`. A pragma
/// suppresses findings on its own line and on the line directly below it.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
}

/// A comment that started with `synthlint:` but failed to parse. These are
/// reported as errors so a typo can never silently disable a gate.
#[derive(Debug, Clone)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub pragmas: Vec<Pragma>,
    pub bad_pragmas: Vec<BadPragma>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Tokenize `src`. Never fails: unrecognized bytes become punct tokens.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_comment(&src[start..i], line, &mut out);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment; pragmas are line-comment only.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(b, i + 1, 0, &mut line);
                out.toks.push(Tok { kind: TokKind::Lit, line });
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                // b"..." byte string: escape-aware, unlike raw strings.
                i = skip_string(b, i + 2, 0, &mut line);
                out.toks.push(Tok { kind: TokKind::Lit, line });
            }
            b'r' | b'b' if raw_string_start(b, i).is_some() => {
                let (body, hashes) = raw_string_start(b, i).unwrap();
                i = skip_raw_string(b, body, hashes, &mut line);
                out.toks.push(Tok { kind: TokKind::Lit, line });
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is '<ident> with no
                // closing quote right after the identifier.
                let mut k = i + 1;
                if k < b.len() && is_ident_start(b[k]) {
                    k += 1;
                    while k < b.len() && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'\'' {
                        // 'a' — a char literal.
                        i = k + 1;
                        out.toks.push(Tok { kind: TokKind::Lit, line });
                    } else {
                        // 'a: lifetime; emit nothing.
                        i = k;
                    }
                } else {
                    // Escaped or punctuation char literal like '\n' or '{'.
                    i = skip_string(b, i + 1, 1, &mut line);
                    out.toks.push(Tok { kind: TokKind::Lit, line });
                }
            }
            _ if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
                // Fractional part, but not the `..` of a range expression.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
                out.toks.push(Tok { kind: TokKind::Lit, line });
            }
            _ if is_ident_start(c) => {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Returns `(body_start, hash_count)` if position `i` begins a raw or raw-byte
/// string literal (`r"`, `r#"`, `br"`, ...); `None` if it is an identifier.
fn raw_string_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return None;
        }
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((j + 1, hashes))
    } else {
        None
    }
}

/// Skip past a (byte/char) string body starting at `i` (after the opening
/// quote). `quote_kind` 0 = double quote, 1 = single quote.
fn skip_string(b: &[u8], mut i: usize, quote_kind: u8, line: &mut u32) -> usize {
    let quote = if quote_kind == 0 { b'"' } else { b'\'' };
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_string(b: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Inspect a line comment for a synthlint pragma.
fn scan_comment(text: &str, line: u32, out: &mut Lexed) {
    let t = text.trim_start_matches('/').trim_start_matches('!').trim();
    let Some(rest) = t.strip_prefix("synthlint:") else {
        // Also catch near-misses like "synthlint allow(...)" so a missing
        // colon cannot silently disable a suppression. Prose that merely
        // mentions the tool name does not count.
        if t.starts_with("synthlint") && t.contains("allow") {
            out.bad_pragmas.push(BadPragma {
                line,
                message: "malformed pragma: expected `synthlint: allow(rule, ...) — reason`".into(),
            });
        }
        return;
    };
    match parse_pragma_body(rest.trim(), line) {
        Ok(p) => out.pragmas.push(p),
        Err(message) => out.bad_pragmas.push(BadPragma { line, message }),
    }
}

fn parse_pragma_body(rest: &str, line: u32) -> Result<Pragma, String> {
    let Some(rest) = rest.strip_prefix("allow") else {
        return Err("pragma must start with `allow(`".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("pragma must start with `allow(`".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` rule list".into());
    };
    let mut rules = Vec::new();
    for raw in rest[..close].split(',') {
        let name = raw.trim();
        if name.is_empty() {
            continue;
        }
        if !KNOWN_RULES.contains(&name) {
            return Err(format!(
                "unknown rule `{name}` (known: {})",
                KNOWN_RULES.join(", ")
            ));
        }
        rules.push(name.to_string());
    }
    if rules.is_empty() {
        return Err("empty rule list in `allow()`".into());
    }
    // Everything after the close paren, minus a leading separator, is the
    // mandatory reason.
    let mut reason = rest[close + 1..].trim();
    for sep in ["—", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim();
            break;
        }
    }
    if reason.len() < 3 {
        return Err("pragma requires a written reason after the rule list".into());
    }
    Ok(Pragma {
        line,
        rules,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            let s = "loop { while";
            let r = r#"unwrap() { }"#;
            /* loop { */ let c = 'x'; let nl = '\n';
            // while true {
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"loop".to_string()));
        assert!(!ids.contains(&"while".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert_eq!(ids.iter().filter(|s| *s == "fn").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        // Every brace must balance; an 'a' misread as a char literal would
        // swallow the `>` and unbalance the stream.
        let opens = lexed.toks.iter().filter(|t| t.is_punct('{')).count();
        let closes = lexed.toks.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!(opens, closes);
        assert_eq!(opens, 1);
    }

    #[test]
    fn pragma_round_trip() {
        let src = "// synthlint: allow(unpolled-loop, panic-surface) — bounded by construction\nloop {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        let p = &lexed.pragmas[0];
        assert_eq!(p.line, 1);
        assert_eq!(p.rules, vec!["unpolled-loop", "panic-surface"]);
        assert_eq!(p.reason, "bounded by construction");
        assert!(lexed.bad_pragmas.is_empty());
    }

    #[test]
    fn pragma_without_reason_is_rejected() {
        let lexed = lex("// synthlint: allow(lock-order)\n");
        assert!(lexed.pragmas.is_empty());
        assert_eq!(lexed.bad_pragmas.len(), 1);
    }

    #[test]
    fn pragma_with_unknown_rule_is_rejected() {
        let lexed = lex("// synthlint: allow(no-such-rule) — because\n");
        assert!(lexed.pragmas.is_empty());
        assert_eq!(lexed.bad_pragmas.len(), 1);
        assert!(lexed.bad_pragmas[0].message.contains("no-such-rule"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..capacity { body(i); }";
        let ids = idents(src);
        assert!(ids.contains(&"capacity".to_string()));
        assert!(ids.contains(&"body".to_string()));
    }
}
