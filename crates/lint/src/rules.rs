//! The four synthlint rule passes.
//!
//! All passes run over the token stream from [`crate::lexer`] plus a light
//! structural model: function spans (by brace matching), `#[test]` /
//! `#[cfg(test)]` ranges, and a name-keyed call graph. The analyses are
//! deliberately over-approximate in the quiet direction — a rule stays silent
//! when any function sharing a name satisfies it — so a finding is a strong
//! signal while a clean run is a budget-friendly sanity check, not a proof.
//!
//! Rule catalogue (see DESIGN.md §12 for the rationale):
//!
//! * `unpolled-loop` (R1): a `loop`/`while` in the theory/enumeration/simplex
//!   modules whose condition+body reaches neither a budget-poll idiom nor a
//!   bounded-cap constant. This is the PR 5 bug class (BigInt equality
//!   reduction churning for minutes between polls).
//! * `lock-order` (R2): each function's direct mutex-acquisition sequence
//!   contributes adjacency edges to one global lock graph; any cross-lock
//!   cycle (an SCC of two or more locks) is a potential deadlock.
//!   Sequential re-acquisition of the same lock (`a → a`) is the normal
//!   drop-and-retake pattern and is ignored.
//! * `relaxed-handoff` (R3): an atomic field with an `Ordering::Relaxed`
//!   store that is touched from more than one function, at least one of them
//!   reachable from a `spawn` call site. Pure RMW/load statistic counters
//!   never fire — a Relaxed *store* is what loses increments or reorders
//!   against the data it publishes.
//! * `panic-surface` (R4): `unwrap`/`expect`/`panic!`-family macros/indexing
//!   in the daemon request path, which must answer `engine_fault` instead of
//!   dying.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::lexer::{lex, BadPragma, Pragma, Tok, TokKind};
use crate::report::{Finding, Level, LintRun, Suppressed};

/// One source file handed to the linter: a display path plus its text. The
/// path doubles as the scope key (rules match on path substrings), so tests
/// can exercise scoping with virtual paths.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

impl SourceFile {
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile {
            path: path.into(),
            text: text.into(),
        }
    }
}

/// Budget-poll idioms recognized by R1. Matching is by exact identifier, so
/// `check_sorts` does not count as `check`.
const POLL_IDENTS: &[&str] = &[
    "poll",
    "poll_budget",
    "check_deadline",
    "check_budgeted",
    "solve_budgeted",
    "check",
    "exceeded",
    "is_cancelled",
    "is_exhausted",
    "interrupted",
    "charge_fuel",
    "charge_memory",
];

/// Path fragments that place a file in R1's theory/enumeration scope: the
/// search and theory loops whose iteration count depends on solver state.
/// Arithmetic kernels (`bigint.rs`, `rat.rs`) are out of scope — their loops
/// are bounded by operand width; the PR 5 blowup lived in the *theory* loop
/// that kept calling them with growing operands. The proof checker
/// (`drat.rs`) replays a finite trace and is likewise excluded.
const R1_SCOPE: &[&str] = &[
    "crates/smt/src/sat.rs",
    "crates/smt/src/simplex.rs",
    "crates/smt/src/lia.rs",
    "crates/smt/src/inc_lra.rs",
    "crates/smt/src/dl.rs",
    "crates/smt/src/session.rs",
    "crates/smt/src/solver.rs",
    "crates/enumerative/src",
];

/// Path fragments that place a file in R4's daemon request path.
const R4_SCOPE: &[&str] = &["crates/core/src/daemon", "bin/dryadsynthd.rs"];

const ATOMIC_METHODS: &[&str] = &[
    "store",
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Identifiers that cannot be call targets even when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "fn", "move", "let", "else",
    "mut", "ref", "dyn", "impl", "unsafe", "where", "await", "box", "pub", "use",
];

/// Function names too generic to carry poll credit through the name-merged
/// call graph: `Vec::new()` inside a loop must not inherit the polling of
/// some unrelated project `fn new`.
const GENERIC_FN_NAMES: &[&str] = &[
    "new", "default", "from", "clone", "into", "to_string", "fmt", "drop", "eq", "ne", "cmp",
    "partial_cmp", "hash", "build", "len", "get", "push", "pop", "insert", "remove", "next",
];

struct Func {
    name: String,
    #[allow(dead_code)] // kept for future rules that anchor on the signature
    line: u32,
    /// Token index of the body `{`.
    start: usize,
    /// Token index of the matching `}`.
    end: usize,
}

struct LoopSite {
    line: u32,
    /// Token range covering condition (for `while`) and body, inclusive.
    range: (usize, usize),
    is_while: bool,
    /// Condition token range for `while` loops.
    cond: Option<(usize, usize)>,
}

struct FileModel {
    path: String,
    toks: Vec<Tok>,
    pragmas: Vec<Pragma>,
    bad_pragmas: Vec<BadPragma>,
    funcs: Vec<Func>,
    loops: Vec<LoopSite>,
    /// Token ranges under `#[test]` / `#[cfg(test)]` items, inclusive.
    test_ranges: Vec<(usize, usize)>,
}

fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn in_ranges(idx: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
}

fn build_model(file: &SourceFile) -> FileModel {
    let lexed = lex(&file.text);
    let toks = lexed.toks;

    // Function spans: `fn <name> ... {` with the first `{` outside parens
    // taken as the body. Trait signatures (`;` first) have no body.
    let mut funcs = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue; // `fn(i32)` pointer type
        };
        let mut paren = 0i64;
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                TokKind::Punct('{') if paren == 0 => {
                    body = Some(j);
                    break;
                }
                TokKind::Punct(';') if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = body {
            if let Some(close) = match_brace(&toks, open) {
                funcs.push(Func {
                    name: name.to_string(),
                    line: toks[i].line,
                    start: open,
                    end: close,
                });
            }
        }
    }

    // Test ranges: an attribute containing `test` (but not `not(test)`)
    // marks the next braced item as test-only.
    let mut test_ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                // Find the matching `]`.
                let mut depth = 0i64;
                let mut close = None;
                for (k, t) in toks.iter().enumerate().skip(j) {
                    match t.kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                close = Some(k);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if let Some(close) = close {
                    let attr = &toks[j..=close];
                    let has = |s: &str| attr.iter().any(|t| t.is_ident(s));
                    if has("test") && !has("not") {
                        // Skip over any further attributes, then take the
                        // first braced block as the test item body.
                        let mut k = close + 1;
                        let mut paren = 0i64;
                        while k < toks.len() {
                            match toks[k].kind {
                                TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                                TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                                TokKind::Punct('{') if paren == 0 => {
                                    if let Some(end) = match_brace(&toks, k) {
                                        test_ranges.push((i, end));
                                        i = end;
                                    }
                                    break;
                                }
                                TokKind::Punct(';') if paren == 0 => break,
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    i = i.max(close);
                }
            }
        }
        i += 1;
    }

    // Loop sites.
    let mut loops = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("loop") {
            if let Some(open) = toks.get(i + 1).filter(|t| t.is_punct('{')).map(|_| i + 1) {
                if let Some(end) = match_brace(&toks, open) {
                    loops.push(LoopSite {
                        line: toks[i].line,
                        range: (open, end),
                        is_while: false,
                        cond: None,
                    });
                }
            }
        } else if toks[i].is_ident("while") {
            let mut paren = 0i64;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                    TokKind::Punct('{') if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < toks.len() {
                if let Some(end) = match_brace(&toks, j) {
                    loops.push(LoopSite {
                        line: toks[i].line,
                        range: (i + 1, end),
                        is_while: true,
                        cond: Some((i + 1, j.saturating_sub(1))),
                    });
                }
            }
        }
    }

    FileModel {
        path: file.path.clone(),
        toks,
        pragmas: lexed.pragmas,
        bad_pragmas: lexed.bad_pragmas,
        funcs,
        loops,
        test_ranges,
    }
}

impl FileModel {
    /// Innermost function containing token index `idx`.
    fn enclosing_fn(&self, idx: usize) -> Option<&Func> {
        self.funcs
            .iter()
            .filter(|f| idx >= f.start && idx <= f.end)
            .min_by_key(|f| f.end - f.start)
    }

    fn is_test(&self, idx: usize) -> bool {
        in_ranges(idx, &self.test_ranges)
    }
}

/// Called identifiers in a token range: `name(` and `.name(` sites, macros
/// (`name!`) excluded.
fn called_names(toks: &[Tok], range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in range.0..=range.1.min(toks.len().saturating_sub(1)) {
        let Some(name) = toks[i].ident() else { continue };
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            out.insert(name.to_string());
        }
    }
    out
}

/// ALL_CAPS constant that names an explicit bound: `THEORY_PIVOT_CAP`,
/// `MAX_BRANCH_DEPTH`, `FLIGHT_RING_CAPACITY`... A bare `MAX` (as in
/// `u64::MAX`, often an "unbounded" sentinel) does not qualify.
fn is_cap_const(name: &str) -> bool {
    if !name.contains('_')
        || !name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    {
        return false;
    }
    ["CAP", "MAX", "LIMIT", "BUDGET", "BOUND", "FUEL", "STEPS", "DEPTH"]
        .iter()
        .any(|frag| name.contains(frag))
}

struct CallGraph {
    /// fn name -> union of called names, merged across same-named functions.
    calls: HashMap<String, BTreeSet<String>>,
    /// Names that poll a budget directly or transitively.
    polls: HashSet<String>,
    /// Names reachable (as callees) from any function containing `spawn`.
    thread_reachable: HashSet<String>,
}

fn build_call_graph(models: &[FileModel]) -> CallGraph {
    let mut calls: HashMap<String, BTreeSet<String>> = HashMap::new();
    let mut direct_poll: HashSet<String> = HashSet::new();
    let mut spawners: HashSet<String> = HashSet::new();
    for m in models {
        for f in &m.funcs {
            let entry = calls.entry(f.name.clone()).or_default();
            entry.extend(called_names(&m.toks, (f.start, f.end)));
            let mut has_spawn = false;
            for t in &m.toks[f.start..=f.end] {
                if let Some(id) = t.ident() {
                    if POLL_IDENTS.contains(&id) && !GENERIC_FN_NAMES.contains(&f.name.as_str()) {
                        direct_poll.insert(f.name.clone());
                    }
                    if id == "spawn" {
                        has_spawn = true;
                    }
                }
            }
            if has_spawn {
                spawners.insert(f.name.clone());
            }
        }
    }

    // Polls: direct pollers only — no transitive closure. The call graph is
    // name-merged (no receiver types), so a fixpoint saturates through
    // ubiquitous names like `new`/`push`/`from` and silences everything. One
    // call level covers the real helpers (`check_lia_polled`,
    // `check_budgeted` wrappers); anything deeper takes a cap or a pragma.
    let polls = direct_poll;

    // Thread reachability: propagate from spawners down to callees.
    let mut thread_reachable = spawners;
    loop {
        let mut changed = false;
        let mut next = Vec::new();
        for name in &thread_reachable {
            if let Some(callees) = calls.get(name) {
                for c in callees {
                    if !thread_reachable.contains(c) {
                        next.push(c.clone());
                    }
                }
            }
        }
        for c in next {
            if thread_reachable.insert(c) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    CallGraph {
        calls,
        polls,
        thread_reachable,
    }
}

// ---------------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------------

fn r1_unpolled_loops(m: &FileModel, graph: &CallGraph, out: &mut Vec<Finding>) {
    if !R1_SCOPE.iter().any(|frag| m.path.contains(frag)) {
        return;
    }
    for lp in &m.loops {
        if m.is_test(lp.range.0) {
            continue;
        }
        // `while i < xs.len()` style scans are bounded by the collection.
        if lp.is_while {
            if let Some(cond) = lp.cond {
                let mut bounded = false;
                for i in cond.0..=cond.1.min(m.toks.len().saturating_sub(1)) {
                    if m.toks[i].is_ident("len") && i > 0 && m.toks[i - 1].is_punct('.') {
                        bounded = true;
                    }
                }
                if bounded {
                    continue;
                }
            }
        }
        let mut ok = false;
        for i in lp.range.0..=lp.range.1.min(m.toks.len().saturating_sub(1)) {
            if let Some(id) = m.toks[i].ident() {
                if POLL_IDENTS.contains(&id) || is_cap_const(id) {
                    ok = true;
                    break;
                }
            }
        }
        if !ok {
            let called = called_names(&m.toks, lp.range);
            ok = called.iter().any(|c| graph.polls.contains(c));
        }
        if !ok {
            let func = m.enclosing_fn(lp.range.0).map(|f| f.name.clone());
            out.push(Finding {
                rule: "unpolled-loop",
                level: Level::Error,
                file: m.path.clone(),
                line: lp.line,
                function: func,
                message: format!(
                    "{} reaches neither a budget poll ({}) nor a bounded-cap constant",
                    if lp.is_while { "`while` loop" } else { "`loop`" },
                    "poll/check_budgeted/check_deadline/..."
                ),
            });
        }
    }
}

fn r2_lock_order(models: &[FileModel], out: &mut Vec<Finding>) {
    // Edge set: (from, to) -> first acquisition site, deterministic by
    // (file, line) ordering of discovery over the sorted model list.
    let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    for m in models {
        for f in &m.funcs {
            let mut last: Option<String> = None;
            for i in f.start..=f.end {
                if m.is_test(i) {
                    continue;
                }
                // Direct acquisition at token i?
                if m.toks[i].is_ident("lock")
                    && m.toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && i >= 2
                    && m.toks[i - 1].is_punct('.')
                {
                    if let Some(name) = m.toks[i - 2].ident() {
                        if let Some(prev) = &last {
                            if prev != name {
                                edges
                                    .entry((prev.clone(), name.to_string()))
                                    .or_insert_with(|| (m.path.clone(), m.toks[i].line, f.name.clone()));
                            }
                        }
                        last = Some(name.to_string());
                        continue;
                    }
                }
                // Calls between acquisitions are NOT lifted into edges: the
                // call graph is name-merged, and lifting through it welds
                // every lock into one spurious component. Direct
                // per-function sequences keep the graph honest; a real
                // cross-function inversion still shows up as a -> b in one
                // function and b -> a in another.
            }
        }
    }

    // Cycle detection: any strongly connected component with two or more
    // locks contains an acquisition cycle. SCCs keep the pass linear even on
    // dense call-lifted graphs, and one finding per component is the
    // actionable unit anyway — the fix is a global order for those locks.
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
    }
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&str> = nodes.iter().copied().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (from, to) in edges.keys() {
        adj[index_of[from.as_str()]].push(index_of[to.as_str()]);
    }
    for scc in tarjan_sccs(&adj) {
        if scc.len() < 2 {
            continue;
        }
        let mut members: Vec<&str> = scc.iter().map(|&i| names[i]).collect();
        members.sort_unstable();
        // Anchor at the smallest in-component edge's acquisition site.
        let anchor = edges
            .iter()
            .find(|((from, to), _)| {
                members.contains(&from.as_str()) && members.contains(&to.as_str())
            })
            .map(|(_, site)| site.clone())
            .unwrap_or_default();
        let (file, line, func) = anchor;
        out.push(Finding {
            rule: "lock-order",
            level: Level::Error,
            file,
            line,
            function: Some(func),
            message: format!(
                "locks {{{}}} form an acquisition cycle (potential deadlock); pick one global order",
                members.join(", ")
            ),
        });
    }
}

/// Iterative Tarjan SCC. Returns components in a deterministic order
/// (sorted by their smallest node index).
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit call stack: (node, child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                call.last_mut().expect("non-empty").1 += 1;
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs.sort_by_key(|c| c[0]);
    sccs
}

fn r3_relaxed_handoff(models: &[FileModel], graph: &CallGraph, out: &mut Vec<Finding>) {
    const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    struct Site {
        method: String,
        relaxed: bool,
        func: String,
        file: String,
        line: u32,
    }
    let mut by_field: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    let mut decls: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for m in models {
        // Field declarations `name: AtomicFoo` give the finding its anchor.
        for i in 0..m.toks.len() {
            if let (Some(name), true) = (
                m.toks[i].ident(),
                m.toks.get(i + 1).is_some_and(|t| t.is_punct(':')),
            ) {
                if let Some(ty) = m.toks.get(i + 2).and_then(|t| t.ident()) {
                    if ty.starts_with("Atomic") {
                        decls
                            .entry(name.to_string())
                            .or_insert_with(|| (m.path.clone(), m.toks[i].line));
                    }
                }
            }
        }
        for i in 0..m.toks.len() {
            if m.is_test(i) {
                continue;
            }
            let Some(method) = m.toks[i].ident() else { continue };
            if !ATOMIC_METHODS.contains(&method) {
                continue;
            }
            if i < 2 || !m.toks[i - 1].is_punct('.') {
                continue;
            }
            let Some(field) = m.toks[i - 2].ident() else { continue };
            if !m.toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            // Scan the argument list for an Ordering name; its presence is
            // what marks this as an atomic access rather than e.g. Vec::swap.
            let mut depth = 0i64;
            let mut ordering: Option<&str> = None;
            for t in m.toks.iter().skip(i + 1) {
                match &t.kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident(id) => {
                        if let Some(o) = ORDERINGS.iter().copied().find(|o| o == id) {
                            ordering.get_or_insert(o);
                        }
                    }
                    _ => {}
                }
            }
            let Some(ord) = ordering else { continue };
            let func = m
                .enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "<top>".to_string());
            by_field.entry(field.to_string()).or_default().push(Site {
                method: method.to_string(),
                relaxed: ord == "Relaxed",
                func,
                file: m.path.clone(),
                line: m.toks[i].line,
            });
        }
    }

    for (field, sites) in &by_field {
        let Some(store) = sites
            .iter()
            .find(|s| s.relaxed && (s.method == "store" || s.method == "swap"))
        else {
            continue; // RMW/load-only statistic counters are allowed.
        };
        let funcs: BTreeSet<&str> = sites.iter().map(|s| s.func.as_str()).collect();
        if funcs.len() < 2 {
            continue; // Single-function use: no cross-thread handoff here.
        }
        if !funcs.iter().any(|f| graph.thread_reachable.contains(*f)) {
            continue;
        }
        let (file, line) = decls
            .get(field)
            .cloned()
            .unwrap_or_else(|| (store.file.clone(), store.line));
        let mut fn_list: Vec<&str> = funcs.iter().copied().collect();
        fn_list.truncate(4);
        out.push(Finding {
            rule: "relaxed-handoff",
            level: Level::Error,
            file,
            line,
            function: None,
            message: format!(
                "atomic field `{field}` has a Relaxed store in `{}` ({}:{}) and is accessed from {} function(s) ({}), at least one thread-reachable; document the handoff or strengthen the ordering",
                store.func,
                store.file,
                store.line,
                funcs.len(),
                fn_list.join(", "),
            ),
        });
    }
}

fn r4_panic_surface(m: &FileModel, out: &mut Vec<Finding>) {
    if !R4_SCOPE.iter().any(|frag| m.path.contains(frag)) {
        return;
    }
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    let push = |out: &mut Vec<Finding>, m: &FileModel, i: usize, what: String| {
        let func = m.enclosing_fn(i).map(|f| f.name.clone());
        out.push(Finding {
            rule: "panic-surface",
            level: Level::Error,
            file: m.path.clone(),
            line: m.toks[i].line,
            function: func,
            message: format!("{what} in the daemon request path (must answer engine_fault, not die)"),
        });
    };
    for i in 0..m.toks.len() {
        if m.is_test(i) {
            continue;
        }
        let Some(id) = m.toks[i].ident() else { continue };
        let next_is = |c: char| m.toks.get(i + 1).is_some_and(|t| t.is_punct(c));
        let prev_is_dot = i > 0 && m.toks[i - 1].is_punct('.');
        if (id == "unwrap" || id == "expect") && prev_is_dot && next_is('(') {
            push(out, m, i, format!("`.{id}()`"));
        } else if PANIC_MACROS.contains(&id) && next_is('!') {
            push(out, m, i, format!("`{id}!`"));
        } else if next_is('[') && !NON_CALL_KEYWORDS.contains(&id) {
            push(out, m, i, format!("slice/index expression `{id}[..]`"));
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Run all rule passes over `files` and apply suppression pragmas.
pub fn lint_sources(files: &[SourceFile]) -> LintRun {
    let mut sorted: Vec<&SourceFile> = files.iter().collect();
    sorted.sort_by(|a, b| a.path.cmp(&b.path));
    let models: Vec<FileModel> = sorted.into_iter().map(build_model).collect();
    let graph = build_call_graph(&models);

    let mut findings = Vec::new();
    for m in &models {
        r1_unpolled_loops(m, &graph, &mut findings);
        r4_panic_surface(m, &mut findings);
    }
    r2_lock_order(&models, &mut findings);
    r3_relaxed_handoff(&models, &graph, &mut findings);

    // Pragma application: a pragma suppresses findings for its rules on its
    // own line and the line directly below.
    let mut run = LintRun {
        files: models.len(),
        ..LintRun::default()
    };
    let mut used: HashSet<(usize, u32)> = HashSet::new(); // (model idx, pragma line)
    let model_idx: HashMap<&str, usize> = models
        .iter()
        .enumerate()
        .map(|(i, m)| (m.path.as_str(), i))
        .collect();
    for f in findings {
        let mi = model_idx.get(f.file.as_str()).copied();
        let pragma = mi.and_then(|i| {
            models[i]
                .pragmas
                .iter()
                .find(|p| {
                    (p.line == f.line || p.line + 1 == f.line)
                        && p.rules.iter().any(|r| r == f.rule)
                })
                .map(|p| (i, p))
        });
        match pragma {
            Some((i, p)) => {
                used.insert((i, p.line));
                run.suppressed.push(Suppressed {
                    reason: p.reason.clone(),
                    finding: f,
                });
            }
            None => run.findings.push(f),
        }
    }

    // Pragma hygiene: malformed pragmas are errors, unused ones warnings.
    for (i, m) in models.iter().enumerate() {
        for bp in &m.bad_pragmas {
            run.findings.push(Finding {
                rule: "pragma",
                level: Level::Error,
                file: m.path.clone(),
                line: bp.line,
                function: None,
                message: bp.message.clone(),
            });
        }
        for p in &m.pragmas {
            if !used.contains(&(i, p.line)) {
                run.findings.push(Finding {
                    rule: "pragma",
                    level: Level::Warning,
                    file: m.path.clone(),
                    line: p.line,
                    function: None,
                    message: format!(
                        "pragma allow({}) matches no finding; remove it or move it next to the site",
                        p.rules.join(", ")
                    ),
                });
            }
        }
    }

    run.sort();
    run
}

// Suppress an unused-field warning: `calls` is part of the graph's public
// face for future rules even though current passes use the derived sets.
impl CallGraph {
    #[allow(dead_code)]
    fn callees(&self, name: &str) -> Option<&BTreeSet<String>> {
        self.calls.get(name)
    }
}
