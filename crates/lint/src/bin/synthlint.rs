//! synthlint CLI.
//!
//! ```text
//! synthlint [--deny] [--json FILE] [PATH ...]
//! ```
//!
//! Lints every `.rs` file under the given paths (default `.`), excluding
//! `target/`, `vendor/`, and test/bench/example trees. Prints the
//! deterministic text report to stdout; `--json FILE` additionally writes
//! the JSON document (`-` for stdout). Exit codes: 0 clean (or findings
//! without `--deny`), 1 unsuppressed errors under `--deny`, 2 usage error.
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json_path: Option<String> = None;
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => return usage("--json requires a file argument"),
            },
            "--help" | "-h" => {
                println!("usage: synthlint [--deny] [--json FILE] [PATH ...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => roots.push(PathBuf::from(other)),
        }
    }
    if roots.is_empty() {
        roots.push(PathBuf::from("."));
    }

    let paths = match synthlint::collect_rs_files(&roots) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("synthlint: cannot read sources: {e}");
            return ExitCode::from(2);
        }
    };
    let run = synthlint::lint_paths(&paths);
    print!("{}", run.render_text());

    if let Some(path) = json_path {
        let doc = run.to_json().to_string();
        if path == "-" {
            println!("{doc}");
        } else if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("synthlint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if deny && run.deny_fails() {
        eprintln!(
            "synthlint: --deny: {} unsuppressed error(s)",
            run.errors()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("synthlint: {msg}\nusage: synthlint [--deny] [--json FILE] [PATH ...]");
    ExitCode::from(2)
}
