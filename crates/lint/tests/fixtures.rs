//! Seeded fixture coverage for the four synthlint rules: every rule must
//! fire on a known-bad snippet and stay quiet on the repaired version.
//! The snippets are virtual [`SourceFile`]s with paths chosen to land in
//! (or out of) each rule's scope, so the tests pin the scoping rules too.

use synthlint::{lint_sources, Level, LintRun, SourceFile};

fn lint_one(path: &str, text: &str) -> LintRun {
    lint_sources(&[SourceFile::new(path, text)])
}

fn rules_fired(run: &LintRun) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = run.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------------------
// R1: unpolled-loop
// ---------------------------------------------------------------------------

const R1_BAD: &str = r#"
pub fn saturate(mut x: u64) -> u64 {
    loop {
        x = x.wrapping_mul(3).wrapping_add(1);
        if x == 7 {
            return x;
        }
    }
}
"#;

#[test]
fn r1_fires_on_unpolled_theory_loop() {
    let run = lint_one("crates/smt/src/sat.rs", R1_BAD);
    assert_eq!(rules_fired(&run), vec!["unpolled-loop"], "{}", run.render_text());
    let f = &run.findings[0];
    assert_eq!(f.level, Level::Error);
    assert_eq!(f.function.as_deref(), Some("saturate"));
    assert!(run.deny_fails());
}

#[test]
fn r1_is_scoped_to_theory_and_enumeration_modules() {
    // The identical loop in an arithmetic kernel is out of scope.
    let run = lint_one("crates/smt/src/bigint.rs", R1_BAD);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r1_quiet_with_direct_poll() {
    let fixed = r#"
pub fn saturate(mut x: u64, budget: &Budget) -> u64 {
    loop {
        if budget.poll() {
            return x;
        }
        x = x.wrapping_mul(3).wrapping_add(1);
    }
}
"#;
    let run = lint_one("crates/smt/src/sat.rs", fixed);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r1_quiet_with_bounded_cap_constant() {
    let fixed = r#"
const MAX_STEPS: u64 = 10_000;
pub fn saturate(mut x: u64) -> u64 {
    let mut i = 0u64;
    while i < MAX_STEPS {
        x = x.wrapping_mul(3).wrapping_add(1);
        i += 1;
    }
    x
}
"#;
    let run = lint_one("crates/smt/src/sat.rs", fixed);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r1_quiet_when_loop_calls_a_polling_helper() {
    // One call level of indirection is credited: `drain_one` contains a
    // poll ident, so loops calling it are considered polled.
    let fixed = r#"
fn drain_one(budget: &Budget) -> bool {
    budget.poll()
}
pub fn saturate(mut x: u64, budget: &Budget) -> u64 {
    loop {
        if drain_one(budget) {
            return x;
        }
        x = x.wrapping_mul(3).wrapping_add(1);
    }
}
"#;
    let run = lint_one("crates/smt/src/sat.rs", fixed);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r1_quiet_on_len_bounded_scan() {
    let fixed = r#"
pub fn sum(xs: &[u64]) -> u64 {
    let mut i = 0;
    let mut acc = 0;
    while i < xs.len() {
        acc += xs[i];
        i += 1;
    }
    acc
}
"#;
    let run = lint_one("crates/smt/src/sat.rs", fixed);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r1_skips_test_functions() {
    let text = r#"
#[test]
fn spins() {
    loop {
        if probe() {
            break;
        }
    }
}
"#;
    let run = lint_one("crates/smt/src/sat.rs", text);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

// ---------------------------------------------------------------------------
// R2: lock-order
// ---------------------------------------------------------------------------

const R2_BAD: &str = r#"
impl Sched {
    fn enqueue(&self) {
        let _q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let _s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
    }
    fn report(&self) {
        let _s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let _q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
    }
}
"#;

#[test]
fn r2_fires_on_inverted_acquisition_order() {
    let run = lint_one("crates/core/src/sched.rs", R2_BAD);
    assert_eq!(rules_fired(&run), vec!["lock-order"], "{}", run.render_text());
    let f = &run.findings[0];
    assert!(
        f.message.contains("queue") && f.message.contains("stats"),
        "cycle members named: {}",
        f.message
    );
}

#[test]
fn r2_quiet_with_a_global_order() {
    let fixed = r#"
impl Sched {
    fn enqueue(&self) {
        let _q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let _s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
    }
    fn report(&self) {
        let _q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let _s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
    }
}
"#;
    let run = lint_one("crates/core/src/sched.rs", fixed);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r2_links_edges_across_functions_and_files() {
    // a -> b in one file, b -> a in another: still one cycle.
    let one = SourceFile::new(
        "crates/core/src/a.rs",
        r#"
fn forward(s: &S) {
    let _x = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let _y = s.beta.lock().unwrap_or_else(|e| e.into_inner());
}
"#,
    );
    let two = SourceFile::new(
        "crates/core/src/b.rs",
        r#"
fn backward(s: &S) {
    let _y = s.beta.lock().unwrap_or_else(|e| e.into_inner());
    let _x = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
}
"#,
    );
    let run = lint_sources(&[one, two]);
    assert_eq!(run.count_for("lock-order"), 1, "{}", run.render_text());
}

// ---------------------------------------------------------------------------
// R3: relaxed-handoff
// ---------------------------------------------------------------------------

const R3_BAD: &str = r#"
pub struct Shared {
    ready: AtomicBool,
}
impl Shared {
    fn publish(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }
    fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }
}
pub fn run(s: &'static Shared) {
    std::thread::spawn(move || s.publish());
}
"#;

#[test]
fn r3_fires_on_relaxed_store_crossing_threads() {
    let run = lint_one("crates/core/src/handoff.rs", R3_BAD);
    assert_eq!(rules_fired(&run), vec!["relaxed-handoff"], "{}", run.render_text());
    let f = &run.findings[0];
    assert!(f.message.contains("ready"), "{}", f.message);
    // Anchored at the field declaration, not the store site.
    assert_eq!(f.line, 3, "{}", run.render_text());
}

#[test]
fn r3_quiet_with_release_store() {
    let fixed = R3_BAD.replace(
        "store(true, Ordering::Relaxed)",
        "store(true, Ordering::Release)",
    );
    let run = lint_one("crates/core/src/handoff.rs", &fixed);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r3_allows_relaxed_rmw_counters() {
    // fetch_add statistics counters never hand data off; only plain
    // stores/swaps are flagged.
    let text = r#"
pub struct Stats {
    hits: AtomicU64,
}
impl Stats {
    fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn read(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
pub fn run(s: &'static Stats) {
    std::thread::spawn(move || s.bump());
}
"#;
    let run = lint_one("crates/core/src/stats.rs", text);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r3_quiet_without_thread_reachability() {
    // Same shape but nothing spawns: single-threaded Relaxed is fine.
    let text = r#"
pub struct Shared {
    ready: AtomicBool,
}
impl Shared {
    fn publish(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }
    fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }
}
"#;
    let run = lint_one("crates/core/src/handoff.rs", text);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

// ---------------------------------------------------------------------------
// R4: panic-surface
// ---------------------------------------------------------------------------

const R4_BAD: &str = r#"
pub fn handle(xs: &[u64], i: usize) -> u64 {
    let first = xs.first().copied().unwrap();
    first + xs[i]
}
"#;

#[test]
fn r4_fires_on_unwrap_and_indexing_in_daemon_path() {
    let run = lint_one("crates/core/src/daemon/handler.rs", R4_BAD);
    assert_eq!(run.count_for("panic-surface"), 2, "{}", run.render_text());
    let msgs: Vec<&str> = run.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`.unwrap()`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("xs[..]")), "{msgs:?}");
}

#[test]
fn r4_is_scoped_to_the_daemon() {
    let run = lint_one("crates/core/src/engine.rs", R4_BAD);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r4_quiet_on_fallible_handling() {
    let fixed = r#"
pub fn handle(xs: &[u64], i: usize) -> Option<u64> {
    let first = xs.first().copied()?;
    Some(first + xs.get(i).copied()?)
}
"#;
    let run = lint_one("crates/core/src/daemon/handler.rs", fixed);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

#[test]
fn r4_skips_test_code() {
    let text = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        let xs = vec![1u64];
        assert_eq!(xs.first().copied().unwrap(), xs[0]);
    }
}
"#;
    let run = lint_one("crates/core/src/daemon/handler.rs", text);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

#[test]
fn pragma_suppresses_with_a_reason() {
    let text = r#"
pub fn handle(xs: &[u64]) -> u64 {
    // synthlint: allow(panic-surface) — caller guarantees non-empty input
    xs.first().copied().unwrap()
}
"#;
    let run = lint_one("crates/core/src/daemon/handler.rs", text);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
    assert_eq!(run.suppressed_for("panic-surface"), 1);
    assert_eq!(run.suppressed[0].reason, "caller guarantees non-empty input");
    assert!(!run.deny_fails());
}

#[test]
fn pragma_requires_a_known_rule() {
    let text = r#"
// synthlint: allow(made-up-rule) — whatever
pub fn f() {}
"#;
    let run = lint_one("crates/core/src/x.rs", text);
    assert_eq!(run.count_for("pragma"), 1, "{}", run.render_text());
    assert!(run.deny_fails(), "bad pragmas are deny errors");
}

#[test]
fn pragma_requires_a_reason() {
    let text = r#"
// synthlint: allow(panic-surface)
pub fn handle(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
"#;
    let run = lint_one("crates/core/src/daemon/handler.rs", text);
    // The reasonless pragma is itself an error and suppresses nothing.
    assert!(run.count_for("pragma") >= 1, "{}", run.render_text());
    assert_eq!(run.count_for("panic-surface"), 1, "{}", run.render_text());
}

#[test]
fn unused_pragma_warns_but_does_not_deny_fail() {
    let text = r#"
// synthlint: allow(unpolled-loop) — nothing here loops at all
pub fn f() -> u64 {
    7
}
"#;
    let run = lint_one("crates/smt/src/sat.rs", text);
    assert_eq!(run.errors(), 0, "{}", run.render_text());
    assert_eq!(run.warnings(), 1, "{}", run.render_text());
    assert!(!run.deny_fails(), "warnings alone must not gate CI");
}

// ---------------------------------------------------------------------------
// Report output
// ---------------------------------------------------------------------------

#[test]
fn json_document_matches_the_published_shape() {
    use sygus_ast::Json;
    let text = r#"
pub fn handle(xs: &[u64]) -> u64 {
    // synthlint: allow(panic-surface) — caller guarantees non-empty input
    let first = xs.first().copied().unwrap();
    first + xs.iter().sum::<u64>()
}
pub fn broken(xs: &[u64], i: usize) -> u64 {
    xs[i]
}
"#;
    let run = lint_one("crates/core/src/daemon/handler.rs", text);
    let doc = Json::parse(&run.to_json().to_string()).expect("lint JSON parses");
    assert_eq!(doc.get("version").and_then(Json::as_i64), Some(1));
    assert_eq!(doc.get("tool").and_then(Json::as_str), Some("synthlint"));
    assert_eq!(doc.get("files").and_then(Json::as_i64), Some(1));
    assert_eq!(doc.get("errors").and_then(Json::as_i64), Some(1));
    let summary = match doc.get("summary") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("summary must be an array, got {other:?}"),
    };
    assert_eq!(summary.len(), 5, "four rules plus pragma hygiene");
    let panic_row = summary
        .iter()
        .find(|r| r.get("rule").and_then(Json::as_str) == Some("panic-surface"))
        .expect("panic-surface summary row");
    assert_eq!(panic_row.get("findings").and_then(Json::as_i64), Some(1));
    assert_eq!(panic_row.get("suppressed").and_then(Json::as_i64), Some(1));
    let suppressed = match doc.get("suppressed") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("suppressed must be an array, got {other:?}"),
    };
    assert_eq!(
        suppressed[0].get("reason").and_then(Json::as_str),
        Some("caller guarantees non-empty input")
    );
}

#[test]
fn text_report_is_deterministic_and_summarised() {
    let run = lint_one("crates/core/src/daemon/handler.rs", R4_BAD);
    let text = run.render_text();
    let again = lint_one("crates/core/src/daemon/handler.rs", R4_BAD).render_text();
    assert_eq!(text, again);
    assert!(
        text.trim_end().ends_with("2 error(s), 0 warning(s), 0 suppressed"),
        "{text}"
    );
}
