//! Bounded-interleaving models of the daemon's lock-free protocols, checked
//! exhaustively with [`synthlint::interleave`]. Each protocol gets two
//! models: the shipped design (must survive every schedule) and a
//! deliberately broken variant (the explorer must find the bad schedule) —
//! the broken twin proves the model is strong enough to see the bug class
//! at all.
//!
//! The models mirror the real code step-for-step at the granularity of its
//! atomic operations: everything done under one lock or one atomic RMW is
//! one step; separate atomics are separate steps.

use synthlint::interleave::{explore, Explorer, VThread};

// ---------------------------------------------------------------------------
// EventRing: slot claim + publish across the u64 wrap seam
// ---------------------------------------------------------------------------

/// `EventRing::record` is two independent atomic actions: claim a sequence
/// number with `fetch_add`, then publish into slot `seq & (len - 1)`. The
/// model starts the counter at `u64::MAX - 1` so three writers straddle
/// the wrap.
struct RingState {
    next: u64,
    slots: Vec<Option<u64>>,
    claimed: Vec<Option<u64>>,
    claim_order: Vec<u64>,
}

fn ring_threads(slot_count: usize, pow2_mask: bool, writers: usize) -> (RingState, Vec<VThread<RingState>>) {
    let state = RingState {
        next: u64::MAX - 1,
        slots: vec![None; slot_count],
        claimed: vec![None; writers],
        claim_order: Vec::new(),
    };
    let threads = (0..writers)
        .map(|w| {
            VThread::new(format!("writer-{w}"))
                .step(move |s: &mut RingState| {
                    let seq = s.next;
                    s.next = s.next.wrapping_add(1);
                    s.claimed[w] = Some(seq);
                    s.claim_order.push(seq);
                })
                .step(move |s: &mut RingState| {
                    let seq = s.claimed[w].expect("claim precedes publish");
                    let len = s.slots.len() as u64;
                    let slot = if pow2_mask { seq & (len - 1) } else { seq % len };
                    s.slots[slot as usize] = Some(seq);
                })
        })
        .collect();
    (state, threads)
}

#[test]
fn event_ring_slot_claim_survives_wraparound() {
    let result = explore(
        || ring_threads(4, true, 3),
        &|_| Ok(()),
        &|s: &RingState| {
            // Every claim survived: three consecutive wrapping seqs under a
            // power-of-two mask land in three distinct slots.
            for seq in &s.claim_order {
                let slot = (seq & (s.slots.len() as u64 - 1)) as usize;
                if s.slots[slot] != Some(*seq) {
                    return Err(format!("claim {seq} lost from slot {slot}"));
                }
            }
            // Wrap-aware ordering (sort by wrapping distance from `next`)
            // reconstructs claim order even though raw seq wrapped.
            let mut survivors: Vec<u64> = s.slots.iter().filter_map(|x| *x).collect();
            survivors.sort_by_key(|&seq| std::cmp::Reverse(s.next.wrapping_sub(seq)));
            if survivors != s.claim_order {
                return Err(format!(
                    "recovered order {survivors:?} != claim order {:?}",
                    s.claim_order
                ));
            }
            Ok(())
        },
        &Explorer::default(),
    );
    assert!(result.complete, "schedule space must be exhausted");
    // 3 writers x 2 steps: multinomial 6!/(2!2!2!) = 90 schedules.
    assert_eq!(result.schedules, 90);
    result.assert_ok();
}

#[test]
fn event_ring_modulo_mapping_is_caught_losing_entries_at_the_seam() {
    // The pre-fix design: `seq % len` with a non-power-of-two slot count.
    // At the wrap seam u64::MAX % 3 == 0 and the next claim 0 % 3 == 0, so
    // two adjacent claims collide in one slot and an entry is lost.
    let result = explore(
        || ring_threads(3, false, 3),
        &|_| Ok(()),
        &|s: &RingState| {
            for seq in &s.claim_order {
                let slot = (seq % s.slots.len() as u64) as usize;
                if s.slots[slot] != Some(*seq) {
                    return Err(format!("claim {seq} lost from slot {slot}"));
                }
            }
            Ok(())
        },
        &Explorer::default(),
    );
    let v = result.violation.expect("explorer must expose the seam collision");
    assert!(v.message.contains("lost"), "{}", v.message);
}

// ---------------------------------------------------------------------------
// LatencyHistogram: two-bank window rotation
// ---------------------------------------------------------------------------

/// `LatencyHistogram::record` bumps the lifetime bank (its own atomics) and
/// then, under the windows mutex, rotates if the period advanced and bumps
/// the current bank. The mutex makes rotate+bump one step; the lifetime
/// bump is a separate earlier step. A clock thread advances the period —
/// twice, so both rotation branches (shift and double-jump reset) are
/// reachable.
struct HistState {
    now: u64,
    period: u64,
    current: u64,
    previous: u64,
    dropped: u64,
    lifetime: u64,
    recorded: u64,
}

fn rotate(s: &mut HistState) {
    if s.now == s.period + 1 {
        s.dropped += s.previous;
        s.previous = s.current;
        s.current = 0;
        s.period = s.now;
    } else if s.now > s.period {
        s.dropped += s.previous + s.current;
        s.previous = 0;
        s.current = 0;
        s.period = s.now;
    }
}

fn hist_threads(writers: usize, clock_ticks: usize) -> (HistState, Vec<VThread<HistState>>) {
    let state = HistState {
        now: 0,
        period: 0,
        current: 0,
        previous: 0,
        dropped: 0,
        lifetime: 0,
        recorded: 0,
    };
    let mut threads: Vec<VThread<HistState>> = (0..writers)
        .map(|w| {
            VThread::new(format!("recorder-{w}"))
                .step(|s: &mut HistState| s.lifetime += 1)
                .step(|s: &mut HistState| {
                    rotate(s);
                    s.current += 1;
                    s.recorded += 1;
                })
        })
        .collect();
    let mut clock = VThread::new("clock");
    for _ in 0..clock_ticks {
        clock = clock.step(|s: &mut HistState| s.now += 1);
    }
    threads.push(clock);
    (state, threads)
}

#[test]
fn latency_histogram_rotation_conserves_samples() {
    let conservation = |s: &HistState| {
        if s.recorded != s.current + s.previous + s.dropped {
            return Err(format!(
                "samples leaked: recorded={} current={} previous={} dropped={}",
                s.recorded, s.current, s.previous, s.dropped
            ));
        }
        if s.lifetime < s.recorded {
            return Err(format!(
                "lifetime {} fell behind window recordings {}",
                s.lifetime, s.recorded
            ));
        }
        Ok(())
    };
    let result = explore(
        || hist_threads(2, 2),
        &conservation,
        &move |s: &HistState| {
            conservation(s)?;
            if s.lifetime != 2 || s.recorded != 2 {
                return Err(format!(
                    "writes lost: lifetime={} recorded={}",
                    s.lifetime, s.recorded
                ));
            }
            Ok(())
        },
        &Explorer::default(),
    );
    assert!(result.complete);
    // 2 writers x 2 steps + 1 clock x 2 steps: 6!/(2!2!2!) = 90 schedules.
    assert_eq!(result.schedules, 90);
    result.assert_ok();
}

/// Broken-twin state with explicit bank identities: the writer captures a
/// reference to the current bank in one step and bumps it in a later step.
struct BankState {
    banks: Vec<u64>,
    current: usize,
    previous: Option<usize>,
    recorded: u64,
    target: Option<usize>,
}

#[test]
fn latency_histogram_unlocked_rotation_is_caught() {
    // Broken twin: without the windows mutex, "pick the current bank" and
    // "record into it" are separate steps. Two rotations in between retire
    // the captured bank entirely, so the sample lands outside both live
    // windows and vanishes from every snapshot.
    let mk = || {
        let state = BankState {
            banks: vec![0],
            current: 0,
            previous: None,
            recorded: 0,
            target: None,
        };
        let rotate_shift = |s: &mut BankState| {
            let fresh = s.banks.len();
            s.banks.push(0);
            s.previous = Some(s.current);
            s.current = fresh;
        };
        let writer = VThread::new("recorder")
            .step(|s: &mut BankState| s.target = Some(s.current))
            .step(|s: &mut BankState| {
                let t = s.target.expect("capture precedes bump");
                s.banks[t] += 1;
                s.recorded += 1;
            });
        let clock = VThread::new("clock").step(rotate_shift).step(rotate_shift);
        (state, vec![writer, clock])
    };
    let result = explore(
        mk,
        &|_| Ok(()),
        &|s: &BankState| {
            let live = s.banks[s.current] + s.previous.map_or(0, |i| s.banks[i]);
            if live != s.recorded {
                return Err(format!(
                    "sample recorded into a retired bank: live={live} recorded={}",
                    s.recorded
                ));
            }
            Ok(())
        },
        &Explorer::default(),
    );
    assert!(result.violation.is_some(), "unlocked rotation must be caught");
}

// ---------------------------------------------------------------------------
// TagSink: whole-line atomicity on the shared diagnostics sink
// ---------------------------------------------------------------------------

/// `TagSink::write` buffers per-writer until a newline, then emits
/// `tag + line` in one critical section on the shared sink. Chunked writes
/// from concurrent requests must never interleave bytes within a line.
struct SinkState {
    bufs: Vec<String>,
    out: Vec<String>,
}

fn tag_threads() -> (SinkState, Vec<VThread<SinkState>>) {
    let state = SinkState {
        bufs: vec![String::new(); 2],
        out: Vec::new(),
    };
    let threads = (0..2usize)
        .map(|w| {
            VThread::new(format!("req-{w}"))
                .step(move |s: &mut SinkState| {
                    // Partial chunk: buffered, nothing reaches the sink.
                    s.bufs[w].push_str(&format!("a{w}"));
                })
                .step(move |s: &mut SinkState| {
                    // Newline completes the line; tag + line go out under
                    // one lock acquisition (one step).
                    s.bufs[w].push('b');
                    let line = std::mem::take(&mut s.bufs[w]);
                    s.out.push(format!("[req={w}] {line}"));
                })
        })
        .collect();
    (state, threads)
}

#[test]
fn tag_sink_lines_are_atomic_under_interleaving() {
    let result = explore(
        tag_threads,
        &|s: &SinkState| {
            for line in &s.out {
                let ok = line == "[req=0] a0b" || line == "[req=1] a1b";
                if !ok {
                    return Err(format!("torn line {line:?}"));
                }
            }
            Ok(())
        },
        &|s: &SinkState| {
            if s.out.len() != 2 {
                return Err(format!("expected 2 lines, got {:?}", s.out));
            }
            Ok(())
        },
        &Explorer::default(),
    );
    assert!(result.complete);
    result.assert_ok();
}

#[test]
fn unbuffered_sink_tearing_is_caught() {
    // Broken twin: each fragment goes straight to the shared sink (no
    // per-writer buffer, no lock across the line). Fragments from the two
    // requests interleave and a torn line appears.
    let mk = || {
        let state = SinkState {
            bufs: vec![String::new(); 2],
            out: vec![String::new()],
        };
        let threads = (0..2usize)
            .map(|w| {
                VThread::new(format!("req-{w}"))
                    .step(move |s: &mut SinkState| s.out[0].push_str(&format!("[req={w}] ")))
                    .step(move |s: &mut SinkState| s.out[0].push_str(&format!("a{w}b\n")))
            })
            .collect();
        (state, threads)
    };
    let result = explore(
        mk,
        &|_| Ok(()),
        &|s: &SinkState| {
            for line in s.out[0].lines() {
                if line != "[req=0] a0b" && line != "[req=1] a1b" {
                    return Err(format!("torn line {line:?}"));
                }
            }
            Ok(())
        },
        &Explorer::default(),
    );
    assert!(result.violation.is_some(), "tearing must be observable");
}

// ---------------------------------------------------------------------------
// Scheduler: cancel-vs-solve exactly-once reply
// ---------------------------------------------------------------------------

/// A queued job can be answered by the worker that dequeues it or by a
/// cancel tombstone — whoever claims it first. The shipped protocol claims
/// with one atomic exchange; the reply happens inside that claim's critical
/// section, so exactly one reply is sent.
struct ReplyState {
    claimed: bool,
    replies: u32,
    saw_unclaimed: Vec<bool>,
}

#[test]
fn cancel_vs_solve_replies_exactly_once_with_atomic_claim() {
    let mk = || {
        let state = ReplyState {
            claimed: false,
            replies: 0,
            saw_unclaimed: vec![false; 2],
        };
        let threads = ["solver", "cancel"]
            .iter()
            .map(|name| {
                VThread::new(*name).step(|s: &mut ReplyState| {
                    // swap(true): claim and reply are one atomic step.
                    if !s.claimed {
                        s.claimed = true;
                        s.replies += 1;
                    }
                })
            })
            .collect();
        (state, threads)
    };
    let result = explore(
        mk,
        &|_| Ok(()),
        &|s: &ReplyState| {
            if s.replies != 1 {
                return Err(format!("{} replies for one request", s.replies));
            }
            Ok(())
        },
        &Explorer::default(),
    );
    assert!(result.complete);
    result.assert_ok();
}

#[test]
fn cancel_vs_solve_check_then_act_double_reply_is_caught() {
    // Broken twin: load the claim flag in one step, reply in a later step.
    // Both sides can observe "unclaimed" before either sets it, and the
    // client hears two answers for one id.
    let mk = || {
        let state = ReplyState {
            claimed: false,
            replies: 0,
            saw_unclaimed: vec![false; 2],
        };
        let threads = (0..2usize)
            .map(|w| {
                VThread::new(if w == 0 { "solver" } else { "cancel" })
                    .step(move |s: &mut ReplyState| s.saw_unclaimed[w] = !s.claimed)
                    .step(move |s: &mut ReplyState| {
                        if s.saw_unclaimed[w] {
                            s.claimed = true;
                            s.replies += 1;
                        }
                    })
            })
            .collect();
        (state, threads)
    };
    let result = explore(
        mk,
        &|_| Ok(()),
        &|s: &ReplyState| {
            if s.replies != 1 {
                return Err(format!("{} replies for one request", s.replies));
            }
            Ok(())
        },
        &Explorer::default(),
    );
    let v = result.violation.expect("double reply must be found");
    assert!(v.message.contains("2 replies"), "{}", v.message);
}

// ---------------------------------------------------------------------------
// Explorer plumbing under real models
// ---------------------------------------------------------------------------

#[test]
fn seeded_sampling_agrees_with_exhaustive_on_the_ring_model() {
    // Random sampling is a fallback for bigger models; on a model the
    // exhaustive pass proves clean, sampling must not "find" anything.
    let check = |s: &RingState| {
        for seq in &s.claim_order {
            let slot = (seq & (s.slots.len() as u64 - 1)) as usize;
            if s.slots[slot] != Some(*seq) {
                return Err(format!("claim {seq} lost from slot {slot}"));
            }
        }
        Ok(())
    };
    let sampled = explore(
        || ring_threads(4, true, 3),
        &|_| Ok(()),
        &check,
        &Explorer {
            max_schedules: 500,
            seed: Some(0xD15EA5E),
        },
    );
    assert_eq!(sampled.schedules, 500);
    assert!(!sampled.complete, "sampling never claims exhaustion");
    sampled.assert_ok();
}
