//! Regenerates every table and figure of the paper's evaluation
//! (Section 7) on the generated benchmark suite.
//!
//! Run with: `cargo bench -p bench-harness --bench figures`
//! Optional: `BENCH_TIMEOUT_SECS=10` (per-problem timeout, default 5),
//! `BENCH_TRACK=INV|CLIA|General` (restrict tracks),
//! `BENCH_CSV=path.csv` (dump the raw matrix),
//! `BENCH_OBS_JSON=path.json` (where to write the observability report;
//! default `BENCH_observability.json` in the working directory).

use bench_harness::{
    fig10_solved_by_track, fig11_fastest_by_track, fig12_cumulative, fig13_times_ascending,
    fig15_deduction_share, observability_json, problem_timeout, run_matrix, scatter_pairs,
    table1_solution_sizes, to_csv, unique_solved,
};
use dryadsynth::{
    Cvc4Baseline, DryadSynth, DryadSynthConfig, Engine, EuSolverBaseline, LoopInvGenBaseline,
    Synthesizer,
};

fn main() {
    let timeout = problem_timeout();
    let mut suite = sygus_benchmarks::suite();
    if let Ok(filter) = std::env::var("BENCH_TRACK") {
        suite.retain(|b| b.track.name().eq_ignore_ascii_case(&filter));
    }
    // The full lineup: the competition solvers plus the ablation variants.
    let solvers: Vec<Box<dyn Synthesizer>> = vec![
        Box::new(DryadSynth::default()),
        Box::new(Cvc4Baseline),
        Box::new(EuSolverBaseline),
        Box::new(LoopInvGenBaseline),
        Box::new(DryadSynth::new(DryadSynthConfig {
            engine: Engine::HeightEnumOnly,
            ..DryadSynthConfig::default()
        })),
        Box::new(DryadSynth::new(DryadSynthConfig {
            engine: Engine::DeductionOnly,
            ..DryadSynthConfig::default()
        })),
        Box::new(DryadSynth::new(DryadSynthConfig {
            engine: Engine::BottomUpBacked,
            ..DryadSynthConfig::default()
        })),
    ];
    eprintln!(
        "running {} solvers × {} benchmarks (timeout {:?}/problem)…",
        solvers.len(),
        suite.len(),
        timeout
    );
    let records = run_matrix(&solvers, &suite, timeout, |r| {
        eprintln!(
            "  {:<24} {:<28} {} ({:.2}s)",
            r.benchmark,
            r.solver,
            if r.solved { "solved" } else { "-" },
            r.seconds
        );
    });

    println!("{}", fig10_solved_by_track(&records));
    println!("{}", fig11_fastest_by_track(&records));
    println!("{}", fig12_cumulative(&records));
    println!("{}", fig13_times_ascending(&records));
    println!("{}", table1_solution_sizes(&records));
    println!(
        "[fig14] cooperative vs plain height enumeration\n{}",
        scatter_pairs(&records, "DryadSynth", "HeightEnum")
    );
    println!(
        "{}",
        fig15_deduction_share(&records, "Deduction", "DryadSynth")
    );
    println!(
        "[fig16] vanilla vs EUSolver-backed DryadSynth\n{}",
        scatter_pairs(&records, "DryadSynth", "DryadSynth-EUSolver-backed")
    );
    println!(
        "{}",
        unique_solved(&records, &["DryadSynth", "CVC4", "EUSolver", "LoopInvGen"])
    );

    if let Ok(path) = std::env::var("BENCH_CSV") {
        std::fs::write(&path, to_csv(&records)).expect("write CSV");
        eprintln!("raw matrix written to {path}");
    }

    let obs_path =
        std::env::var("BENCH_OBS_JSON").unwrap_or_else(|_| "BENCH_observability.json".to_owned());
    std::fs::write(&obs_path, observability_json(&records)).expect("write observability report");
    eprintln!("observability report written to {obs_path}");
}
