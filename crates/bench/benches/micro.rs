//! Criterion micro-benchmarks for the substrate layers: the SMT solver,
//! the bottom-up enumerator, and the fixed-height encoders.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dryadsynth::{CliaTreeEncoding, ExamplePool, FixedHeightConfig, FixedHeightSolver};
use enum_synth::{EnumConfig, TermEnumerator};
use smtkit::{SmtResult, SmtSolver};
use sygus_ast::{Definitions, Env, Grammar, Sort, Symbol, Term, Value};

fn bench_smt(c: &mut Criterion) {
    let x = Term::int_var("bx");
    let y = Term::int_var("by");
    // A conjunction of interval and relational constraints with one ite.
    let formula = Term::and([
        Term::ge(x.clone(), Term::int(-50)),
        Term::le(x.clone(), Term::int(50)),
        Term::eq(
            Term::ite(Term::ge(x.clone(), y.clone()), x.clone(), y.clone()),
            Term::int(17),
        ),
        Term::gt(Term::add(x.clone(), y.clone()), Term::int(3)),
    ]);
    c.bench_function("smt/sat_with_ite", |b| {
        b.iter(|| {
            let r = SmtSolver::new().check(&formula).expect("ok");
            assert!(matches!(r, SmtResult::Sat(_)));
        })
    });
    let valid = Term::ge(
        Term::ite(Term::ge(x.clone(), y.clone()), x.clone(), y.clone()),
        y.clone(),
    );
    c.bench_function("smt/validity_max_ge", |b| {
        b.iter(|| {
            assert!(SmtSolver::new().is_valid(&valid).expect("ok"));
        })
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let x = Symbol::new("ex");
    let y = Symbol::new("ey");
    let g = Grammar::clia(&[(x, Sort::Int), (y, Sort::Int)], Sort::Int);
    let defs = Definitions::new();
    let examples = vec![
        Env::from_pairs(&[x, y], &[Value::Int(3), Value::Int(-2)]),
        Env::from_pairs(&[x, y], &[Value::Int(-1), Value::Int(7)]),
    ];
    c.bench_function("enum/clia_size_5", |b| {
        b.iter_batched(
            || TermEnumerator::new(&g, &defs, examples.clone(), EnumConfig::default()),
            |mut e| {
                let n = e.terms_of_size(5).len();
                assert!(n > 0);
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_encoding(c: &mut Criterion) {
    let params = [Symbol::new("k0"), Symbol::new("k1")];
    c.bench_function("encode/clia_tree_h3_interpret", |b| {
        b.iter(|| {
            let enc = CliaTreeEncoding::new(3, &params, Sort::Int);
            let t = enc.interpret(&[5, -3]);
            assert!(t.size() > 10);
        })
    });
}

fn bench_fixed_height(c: &mut Criterion) {
    let p = sygus_parser::parse_problem(
        "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
         (constraint (= (f x) (+ x 3)))(check-synth)",
    )
    .expect("parses");
    c.bench_function("fixed_height/identity_plus_3", |b| {
        b.iter(|| {
            let solver = FixedHeightSolver::new(FixedHeightConfig::default());
            let pool = ExamplePool::default();
            let r = solver.solve_at_height(&p, 1, &pool);
            assert!(matches!(r, dryadsynth::FixedHeightResult::Solved(_)));
        })
    });
}

criterion_group!(
    benches,
    bench_smt,
    bench_enumeration,
    bench_encoding,
    bench_fixed_height
);
criterion_main!(benches);
