//! The `bench` CLI: generate and compare benchmark trajectory files.
//!
//! ```text
//! bench run [--out FILE] [--timeout SECS] [--track INV|CLIA|General]
//!           [--lineup competition|full]
//! bench compare OLD.json NEW.json [--noise FRAC] [--min-seconds S]
//!           [--solved-only]
//! bench explain OLD.json NEW.json
//! ```
//!
//! `run` executes the solver matrix over the generated suite and writes the
//! versioned trajectory document ([`observability_json`]) to `--out`
//! (default stdout) — the format committed as `BENCH_PR5.json` and consumed
//! by `compare`. `compare` diffs two trajectory files and exits non-zero
//! when the new one regresses: the solved set shrank, a per-benchmark or
//! per-stage time exceeded the noise threshold (unless `--solved-only`), or
//! a CDCL search-work counter grew past its gate. See
//! `crates/bench/src/compare.rs` for the exact gates. `explain` prints the
//! deterministic per-stage × per-benchmark-family diff table between two
//! trajectory documents (where did the time and the conflicts move?); it
//! always exits 0 — it is a drill-down, not a gate.
//!
//! Exit codes: 0 = no regression, 1 = regression found, 2 = usage, I/O, or
//! parse error.

use bench_harness::{
    compare, explain, observability_json, problem_timeout, run_matrix, BenchDoc, CompareConfig,
};
use dryadsynth::{
    Cvc4Baseline, DryadSynth, DryadSynthConfig, Engine, EuSolverBaseline, LoopInvGenBaseline,
    Synthesizer,
};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: bench run [--out FILE] [--timeout SECS] \
[--track INV|CLIA|General] [--lineup competition|full] [--theory auto|simplex|dl]\n\
       bench compare OLD.json NEW.json [--noise FRAC] [--min-seconds S] [--solved-only]\n\
       bench explain OLD.json NEW.json\n\
  run writes the trajectory document (observability_json) for the suite;\n\
  compare diffs two trajectory files and exits 1 on regression:\n\
  a shrunken solved set always fails; per-benchmark and per-stage times\n\
  fail when slower by more than --noise (default 0.25) AND --min-seconds\n\
  (default 0.1); search-work counters (conflicts, decisions, propagations,\n\
  theory pivots) fail on the same relative threshold past an absolute\n\
  floor; --solved-only reports time deltas without failing on them\n\
  (the cross-machine CI mode);\n\
  explain prints the deterministic per-stage x per-family diff table\n\
  between two trajectory files (always exits 0).";

fn competition_lineup() -> Vec<Box<dyn Synthesizer>> {
    vec![
        Box::new(DryadSynth::default()),
        Box::new(Cvc4Baseline),
        Box::new(EuSolverBaseline),
        Box::new(LoopInvGenBaseline),
    ]
}

fn full_lineup() -> Vec<Box<dyn Synthesizer>> {
    let mut solvers = competition_lineup();
    for engine in [
        Engine::HeightEnumOnly,
        Engine::DeductionOnly,
        Engine::BottomUpBacked,
    ] {
        solvers.push(Box::new(DryadSynth::new(DryadSynthConfig {
            engine,
            ..DryadSynthConfig::default()
        })));
    }
    solvers
}

fn run_mode(args: &[String]) -> Result<ExitCode, String> {
    let mut out: Option<String> = None;
    let mut timeout = problem_timeout();
    let mut track: Option<String> = None;
    let mut lineup = "competition".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a file path")?.clone()),
            "--timeout" => {
                let v = it.next().ok_or("--timeout needs seconds")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad timeout `{v}`"))?;
                timeout = Duration::from_secs(secs);
            }
            "--track" => track = Some(it.next().ok_or("--track needs a name")?.clone()),
            "--lineup" => lineup = it.next().ok_or("--lineup needs a value")?.clone(),
            "--theory" => {
                let v = it.next().ok_or("--theory needs auto|simplex|dl")?;
                smtkit::set_process_default_theory(v.parse()?);
            }
            other => return Err(format!("unknown run flag `{other}`")),
        }
    }
    let solvers = match lineup.as_str() {
        "competition" => competition_lineup(),
        "full" => full_lineup(),
        other => return Err(format!("unknown lineup `{other}`")),
    };
    let mut suite = sygus_benchmarks::suite();
    if let Some(filter) = &track {
        suite.retain(|b| b.track.name().eq_ignore_ascii_case(filter));
        if suite.is_empty() {
            return Err(format!("no benchmarks in track `{filter}`"));
        }
    }
    eprintln!(
        "bench run: {} solvers x {} benchmarks, {:?}/problem",
        solvers.len(),
        suite.len(),
        timeout
    );
    let records = run_matrix(&solvers, &suite, timeout, |r| {
        eprintln!(
            "  {:<24} {:<28} {} ({:.2}s)",
            r.benchmark,
            r.solver,
            if r.solved { "solved" } else { "-" },
            r.seconds
        );
    });
    let text = observability_json(&records);
    match out {
        Some(path) => std::fs::write(&path, &text).map_err(|e| format!("cannot write {path}: {e}"))?,
        None => println!("{text}"),
    }
    let solved = records.iter().filter(|r| r.solved).count();
    eprintln!("bench run: {solved}/{} runs solved", records.len());
    Ok(ExitCode::SUCCESS)
}

fn compare_mode(args: &[String]) -> Result<ExitCode, String> {
    let mut files: Vec<&String> = Vec::new();
    let mut cfg = CompareConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--noise" => {
                let v = it.next().ok_or("--noise needs a fraction")?;
                cfg.noise_frac = v.parse().map_err(|_| format!("bad noise fraction `{v}`"))?;
            }
            "--min-seconds" => {
                let v = it.next().ok_or("--min-seconds needs seconds")?;
                cfg.min_seconds = v.parse().map_err(|_| format!("bad seconds `{v}`"))?;
            }
            "--solved-only" => cfg.solved_only = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown compare flag `{other}`"))
            }
            _ => files.push(a),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return Err("compare needs exactly OLD.json and NEW.json".to_owned());
    };
    // Either side may be a BENCH*.json trajectory document or a
    // dryadsynthd --audit log (auto-detected by shape).
    let load = |path: &str| -> Result<BenchDoc, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchDoc::parse_any(&text).map_err(|e| format!("{path}: {e}"))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let report = compare(&old, &new, &cfg);
    print!("{}", report.render());
    if report.has_regressions() {
        eprintln!("bench compare: REGRESSED ({old_path} -> {new_path})");
        Ok(ExitCode::from(1))
    } else {
        eprintln!("bench compare: ok ({old_path} -> {new_path})");
        Ok(ExitCode::SUCCESS)
    }
}

fn explain_mode(args: &[String]) -> Result<ExitCode, String> {
    let [old_path, new_path] = args else {
        return Err("explain needs exactly OLD.json and NEW.json".to_owned());
    };
    let load = |path: &str| -> Result<BenchDoc, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchDoc::parse_any(&text).map_err(|e| format!("{path}: {e}"))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    print!("{}", explain(&old, &new));
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run_mode(&args[1..]),
        Some("compare") => compare_mode(&args[1..]),
        Some("explain") => explain_mode(&args[1..]),
        Some("--help" | "-h") | None => Err(USAGE.to_owned()),
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
