//! The `bench explain` mode: a deterministic per-stage × per-family diff
//! table between two trajectory documents.
//!
//! Where `bench compare` answers *whether* the new trajectory regressed,
//! `explain` answers *where the time and search work moved*: it matches
//! runs by `(solver, benchmark)` key, folds each benchmark into its
//! *family* (the name with trailing digits and `_`/`-` separators
//! stripped, so `array_search_2` and `array_search_7` aggregate), and
//! prints one row per `(family, stage)` with the old and new totals, the
//! absolute delta, and the relative change. Wall time and the CDCL
//! conflict count ride along as the pseudo-stages `(wall_us)` and
//! `(search_conflicts)`, so a search-strategy change that shifted work
//! without shifting any single stage is still visible.
//!
//! The output is fully deterministic for a given pair of documents (rows
//! are sorted by family, then stage; all aggregation is integer), so two
//! CI runs over the same artifacts produce byte-identical tables.

use crate::compare::BenchDoc;
use std::collections::BTreeMap;

/// Folds a benchmark name into its family: trailing ASCII digits are
/// stripped, then trailing `_`/`-` separators (`max3` → `max`,
/// `array_search_15` → `array_search`). A name that is *all* digits keeps
/// its last character rather than collapsing to the empty string.
pub fn family(benchmark: &str) -> String {
    let mut name = benchmark;
    while name.len() > 1 && name.ends_with(|c: char| c.is_ascii_digit()) {
        name = &name[..name.len() - 1];
    }
    while name.len() > 1 && (name.ends_with('_') || name.ends_with('-')) {
        name = &name[..name.len() - 1];
    }
    name.to_owned()
}

/// Renders the per-family × per-stage diff table between two trajectory
/// documents. Only runs present in both documents (matched by
/// `(solver, benchmark)` key) contribute; families are aggregated across
/// solvers per family so the table stays readable for multi-solver
/// matrices — the solver is part of the match key, never of the row key.
pub fn explain(old: &BenchDoc, new: &BenchDoc) -> String {
    let new_by_key: BTreeMap<String, &crate::BenchRun> =
        new.runs.iter().map(|r| (r.key(), r)).collect();
    // (family, stage) -> (old total, new total); all integer micros/counts.
    let mut cells: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    let mut matched = 0usize;
    for old_run in &old.runs {
        let Some(new_run) = new_by_key.get(&old_run.key()) else {
            continue;
        };
        matched += 1;
        let fam = family(&old_run.benchmark);
        let mut bump = |stage: String, old_v: u64, new_v: u64| {
            let cell = cells.entry((fam.clone(), stage)).or_insert((0, 0));
            cell.0 += old_v;
            cell.1 += new_v;
        };
        bump(
            "(wall_us)".to_owned(),
            (old_run.seconds * 1e6) as u64,
            (new_run.seconds * 1e6) as u64,
        );
        if let (Some(&o), Some(&n)) = (
            old_run.search.get("conflicts_total"),
            new_run.search.get("conflicts_total"),
        ) {
            bump("(search_conflicts)".to_owned(), o, n);
        }
        for (stage, &old_micros) in &old_run.stage_micros {
            let new_micros = new_run.stage_micros.get(stage).copied().unwrap_or(0);
            bump(stage.clone(), old_micros, new_micros);
        }
        // Stages that only exist in the new run still get a row.
        for (stage, &new_micros) in &new_run.stage_micros {
            if !old_run.stage_micros.contains_key(stage) {
                bump(stage.clone(), 0, new_micros);
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "[explain] per-family x per-stage deltas ({matched} matched runs)\n"
    ));
    out.push_str(&format!(
        "{:<28}{:<20}{:>12}{:>12}{:>12}{:>9}\n",
        "family", "stage", "old", "new", "delta", "pct"
    ));
    for ((fam, stage), (old_v, new_v)) in &cells {
        if *old_v == 0 && *new_v == 0 {
            continue;
        }
        let delta = *new_v as i64 - *old_v as i64;
        let pct = if *old_v == 0 {
            "new".to_owned()
        } else {
            format!("{:+.1}%", 100.0 * delta as f64 / *old_v as f64)
        };
        out.push_str(&format!(
            "{fam:<28}{stage:<20}{old_v:>12}{new_v:>12}{delta:>+12}{pct:>9}\n"
        ));
    }
    if cells.is_empty() {
        out.push_str("(no matched runs)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchRun;
    use std::collections::BTreeMap as Map;

    fn run(b: &str, seconds: f64, smt: u64, enumerate: u64, conflicts: u64) -> BenchRun {
        BenchRun {
            benchmark: b.to_owned(),
            solver: "A".to_owned(),
            solved: true,
            seconds,
            stage_micros: [("smt".to_owned(), smt), ("enum".to_owned(), enumerate)]
                .into_iter()
                .collect(),
            search: [("conflicts_total".to_owned(), conflicts)]
                .into_iter()
                .collect(),
        }
    }

    fn doc(runs: Vec<BenchRun>) -> BenchDoc {
        BenchDoc { version: 5, runs }
    }

    #[test]
    fn families_strip_trailing_indices() {
        assert_eq!(family("max3"), "max");
        assert_eq!(family("array_search_15"), "array_search");
        assert_eq!(family("fg_max-7"), "fg_max");
        assert_eq!(family("plain"), "plain");
        assert_eq!(family("42"), "4", "all-digit names keep a character");
    }

    #[test]
    fn table_aggregates_by_family_and_is_deterministic() {
        let old = doc(vec![
            run("max2", 1.0, 100, 50, 1000),
            run("max3", 1.0, 200, 50, 2000),
            run("search_1", 2.0, 400, 0, 500),
        ]);
        let new = doc(vec![
            run("max2", 1.0, 150, 50, 1500),
            run("max3", 1.0, 250, 50, 2500),
            run("search_1", 2.0, 400, 0, 500),
            run("only_new_9", 1.0, 10, 0, 10),
        ]);
        let table = explain(&old, &new);
        assert!(table.contains("3 matched runs"), "{table}");
        // max2 + max3 fold into one family; smt 300 -> 400.
        let smt_row = table
            .lines()
            .find(|l| l.starts_with("max") && l.contains("smt"))
            .expect("max/smt row");
        assert!(smt_row.contains("300"), "{smt_row}");
        assert!(smt_row.contains("400"), "{smt_row}");
        assert!(smt_row.contains("+33.3%"), "{smt_row}");
        // Search conflicts ride along: 3000 -> 4000 for the max family.
        let conflicts_row = table
            .lines()
            .find(|l| l.starts_with("max") && l.contains("(search_conflicts)"))
            .expect("conflicts row");
        assert!(conflicts_row.contains("+1000"), "{conflicts_row}");
        // Unmatched runs contribute nothing.
        assert!(!table.contains("only_new"), "{table}");
        // Byte-for-byte deterministic.
        assert_eq!(table, explain(&old, &new));
    }

    #[test]
    fn zero_baselines_render_as_new() {
        let mut old_run = run("b1", 1.0, 0, 0, 0);
        old_run.stage_micros = Map::new();
        old_run.search = Map::new();
        let mut new_run = run("b1", 1.0, 900, 0, 0);
        new_run.search = Map::new();
        let table = explain(&doc(vec![old_run]), &doc(vec![new_run]));
        let smt_row = table.lines().find(|l| l.contains("smt")).expect("smt row");
        assert!(smt_row.trim_end().ends_with("new"), "{smt_row}");
    }

    #[test]
    fn empty_intersection_says_so() {
        let old = doc(vec![run("b1", 1.0, 1, 1, 1)]);
        let new = doc(vec![run("b2", 1.0, 1, 1, 1)]);
        assert!(explain(&old, &new).contains("(no matched runs)"));
    }
}
