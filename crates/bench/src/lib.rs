//! `bench-harness`: the evaluation harness that regenerates every table and
//! figure of the paper's Section 7 on the generated benchmark suite.
//!
//! The harness runs each solver on each benchmark once (with a per-problem
//! wall-clock timeout), independently re-verifies every claimed solution,
//! and derives all figures from the resulting [`RunRecord`] matrix:
//!
//! * Figure 10 — solved benchmarks per track per solver;
//! * Figure 11 — fastest-solved counts (pseudo-log buckets);
//! * Figure 12 — #solved vs cumulative time;
//! * Figure 13 — per-benchmark times, ascending;
//! * Table 1 — smallest-solution counts and median sizes;
//! * Figure 14 — cooperative vs plain height enumeration;
//! * Figure 15 — deduction-only vs cooperative solved counts;
//! * Figure 16 — vanilla vs EUSolver-backed DryadSynth;
//! * the "uniquely solved" statistic.

#![warn(missing_docs)]

pub mod compare;
pub mod explain;

use dryadsynth::{outcome_label, verify_solution, SolveRequest, SynthOutcome, Synthesizer};
use std::time::Duration;
use sygus_ast::{Json, Tracer};
use sygus_benchmarks::{Benchmark, Track};

// The shared resource-governance handle, re-exported so harness extensions
// can budget their own verification passes.
pub use compare::{compare, BenchDoc, BenchRun, CompareConfig, CompareReport, TimeDelta};
pub use explain::{explain, family};
pub use dryadsynth::{Budget, BudgetError};

/// One (solver, benchmark) measurement.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Benchmark track.
    pub track: Track,
    /// Solver display name.
    pub solver: String,
    /// Whether a verified solution was produced within the timeout.
    pub solved: bool,
    /// The stable outcome label (`solved` / `timeout` / `resource-exhausted`
    /// / `gave-up`), or `unverified` when a claimed solution failed the
    /// harness's independent re-verification.
    pub outcome: String,
    /// Wall-clock seconds spent.
    pub seconds: f64,
    /// `seconds` on the competition's pseudo-log scale
    /// ([`sygus_ast::time_bucket`]).
    pub time_bucket: usize,
    /// Solution size (node count) when solved.
    pub size: Option<usize>,
    /// `size` on the pseudo-log scale ([`sygus_ast::size_bucket`]).
    pub size_bucket: Option<usize>,
    /// Per-stage cumulative span time in microseconds, from the run's
    /// tracer ([`sygus_ast::Stage`] names, zero-count stages omitted).
    pub stage_micros: Vec<(String, u64)>,
    /// The run's `search.*` analytics counters (CDCL conflicts, decisions,
    /// propagations, LBD sums, theory work — see the smtkit search-analytics
    /// layer), sorted by name; empty when the run never reached the SMT
    /// core.
    pub search: Vec<(String, u64)>,
}

/// Per-problem timeout, configurable with `BENCH_TIMEOUT_SECS`.
pub fn problem_timeout() -> Duration {
    std::env::var("BENCH_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(5))
}

/// Runs one solver on one benchmark, re-verifying any claimed solution.
///
/// Each run gets a fresh metrics-only [`Tracer`] on its [`Budget`], so the
/// per-stage timing totals in the record cover exactly that (solver,
/// benchmark) pair and the instrumentation adds no per-event allocation.
pub fn run_one(solver: &dyn Synthesizer, bench: &Benchmark, timeout: Duration) -> RunRecord {
    let problem = bench.problem();
    let tracer = Tracer::metrics_only();
    let budget = Budget::from_timeout(timeout).with_tracer(tracer.clone());
    let request = SolveRequest::new(&problem)
        .with_budget(budget)
        .with_source(bench.name.clone());
    let report = solver.solve(&request);
    let (outcome, seconds) = (report.outcome, report.seconds);
    let mut label = outcome_label(&outcome);
    let (solved, size) = match &outcome {
        SynthOutcome::Solved(body) => {
            // Never trust a solver in the evaluation: re-verify. The
            // verification pass runs on its own budget (and tracer) so it
            // does not pollute the solver's stage timings.
            let verify_budget = Budget::from_timeout(timeout);
            if verify_solution(&problem, body, Some(&verify_budget)) {
                (true, Some(body.size()))
            } else {
                label = "unverified";
                (false, None)
            }
        }
        _ => (false, None),
    };
    let snapshot = tracer.metrics().snapshot();
    let stage_micros = snapshot
        .stages
        .iter()
        .filter(|s| s.count > 0)
        .map(|s| (s.stage.to_owned(), s.total_micros))
        .collect();
    let search = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("search."))
        .cloned()
        .collect();
    RunRecord {
        benchmark: bench.name.clone(),
        track: bench.track,
        solver: solver.name().to_owned(),
        solved,
        outcome: label.to_owned(),
        seconds,
        time_bucket: sygus_ast::time_bucket(seconds),
        size,
        size_bucket: size.map(sygus_ast::size_bucket),
        stage_micros,
        search,
    }
}

/// Runs the full matrix: every solver on every benchmark.
pub fn run_matrix(
    solvers: &[Box<dyn Synthesizer>],
    suite: &[Benchmark],
    timeout: Duration,
    mut progress: impl FnMut(&RunRecord),
) -> Vec<RunRecord> {
    let mut out = Vec::with_capacity(solvers.len() * suite.len());
    for bench in suite {
        for solver in solvers {
            let rec = run_one(solver.as_ref(), bench, timeout);
            progress(&rec);
            out.push(rec);
        }
    }
    out
}

fn solvers_in(records: &[RunRecord]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in records {
        if !out.contains(&r.solver) {
            out.push(r.solver.clone());
        }
    }
    out
}

fn tracks_in(records: &[RunRecord]) -> Vec<Track> {
    Track::all()
        .into_iter()
        .filter(|t| records.iter().any(|r| r.track == *t))
        .collect()
}

/// Figure 10: solved benchmarks per (solver, track).
pub fn fig10_solved_by_track(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str("[fig10] solved benchmarks (breakdown by track)\n");
    out.push_str(&format!("{:<28}", "solver"));
    for t in tracks_in(records) {
        out.push_str(&format!("{:>9}", t.name()));
    }
    out.push_str(&format!("{:>9}\n", "total"));
    for s in solvers_in(records) {
        out.push_str(&format!("{s:<28}"));
        let mut total = 0;
        for t in tracks_in(records) {
            let n = records
                .iter()
                .filter(|r| r.solver == s && r.track == t && r.solved)
                .count();
            total += n;
            out.push_str(&format!("{n:>9}"));
        }
        out.push_str(&format!("{total:>9}\n"));
    }
    out
}

/// Figure 11: fastest-solved counts per (solver, track), with the
/// competition's pseudo-logarithmic time buckets (ties within a bucket are
/// shared wins).
pub fn fig11_fastest_by_track(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str("[fig11] fastest-solved benchmarks (pseudo-log buckets, breakdown by track)\n");
    out.push_str(&format!("{:<28}", "solver"));
    for t in tracks_in(records) {
        out.push_str(&format!("{:>9}", t.name()));
    }
    out.push('\n');
    let benchmarks: Vec<&str> = {
        let mut v: Vec<&str> = records.iter().map(|r| r.benchmark.as_str()).collect();
        v.sort();
        v.dedup();
        v
    };
    for s in solvers_in(records) {
        out.push_str(&format!("{s:<28}"));
        for t in tracks_in(records) {
            let mut wins = 0;
            for b in &benchmarks {
                let here: Vec<&RunRecord> = records
                    .iter()
                    .filter(|r| r.benchmark == *b && r.track == t && r.solved)
                    .collect();
                let Some(me) = here.iter().find(|r| r.solver == s) else {
                    continue;
                };
                let my_bucket = sygus_ast::time_bucket(me.seconds);
                if here
                    .iter()
                    .all(|r| sygus_ast::time_bucket(r.seconds) >= my_bucket)
                {
                    wins += 1;
                }
            }
            out.push_str(&format!("{wins:>9}"));
        }
        out.push('\n');
    }
    out
}

/// Figure 12: number solved vs cumulative solving time, per track.
pub fn fig12_cumulative(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str("[fig12] solved count vs cumulative time (per track)\n");
    for t in tracks_in(records) {
        out.push_str(&format!("  track {t}\n"));
        for s in solvers_in(records) {
            let mut times: Vec<f64> = records
                .iter()
                .filter(|r| r.solver == s && r.track == t && r.solved)
                .map(|r| r.seconds)
                .collect();
            times.sort_by(|a, b| a.total_cmp(b));
            let mut cum = 0.0;
            let series: Vec<String> = times
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    cum += t;
                    format!("({},{:.2})", i + 1, cum)
                })
                .collect();
            out.push_str(&format!(
                "    {s}: {} solved, cumulative {}\n",
                times.len(),
                if series.is_empty() {
                    "-".to_owned()
                } else {
                    series.join(" ")
                }
            ));
        }
    }
    out
}

/// Figure 13: per-benchmark solving time in ascending order, per track.
pub fn fig13_times_ascending(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str("[fig13] per-benchmark solving time, ascending (per track)\n");
    for t in tracks_in(records) {
        out.push_str(&format!("  track {t}\n"));
        for s in solvers_in(records) {
            let mut times: Vec<f64> = records
                .iter()
                .filter(|r| r.solver == s && r.track == t && r.solved)
                .map(|r| r.seconds)
                .collect();
            times.sort_by(|a, b| a.total_cmp(b));
            let series: Vec<String> = times.iter().map(|x| format!("{x:.3}")).collect();
            out.push_str(&format!("    {s}: [{}]\n", series.join(", ")));
        }
    }
    out
}

/// Table 1: number of smallest solutions (bucketed sizes) and median
/// solution size per (solver, track).
pub fn table1_solution_sizes(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str("[table1] smallest solutions (bucketed) and median size\n");
    out.push_str(&format!(
        "{:<28}{:>22}{:>22}\n",
        "solver", "smallest (I/C/G)", "median size (I/C/G)"
    ));
    let benchmarks: Vec<&str> = {
        let mut v: Vec<&str> = records.iter().map(|r| r.benchmark.as_str()).collect();
        v.sort();
        v.dedup();
        v
    };
    for s in solvers_in(records) {
        let mut smallest = Vec::new();
        let mut medians = Vec::new();
        for t in tracks_in(records) {
            let mut wins = 0;
            let mut sizes: Vec<f64> = Vec::new();
            for b in &benchmarks {
                let here: Vec<&RunRecord> = records
                    .iter()
                    .filter(|r| r.benchmark == *b && r.track == t && r.solved)
                    .collect();
                let Some(me) = here.iter().find(|r| r.solver == s) else {
                    continue;
                };
                let my_size = me.size.expect("solved has size");
                sizes.push(my_size as f64);
                let my_bucket = sygus_ast::size_bucket(my_size);
                if here
                    .iter()
                    .all(|r| sygus_ast::size_bucket(r.size.expect("solved")) >= my_bucket)
                {
                    wins += 1;
                }
            }
            smallest.push(wins.to_string());
            medians.push(
                sygus_ast::median(&mut sizes)
                    .map(|m| format!("{m:.1}"))
                    .unwrap_or_else(|| "-".to_owned()),
            );
        }
        out.push_str(&format!(
            "{s:<28}{:>22}{:>22}\n",
            smallest.join("/"),
            medians.join("/")
        ));
    }
    out
}

/// Figure 14/16 style scatter: per-benchmark time pairs between two
/// solvers (both must appear in the records).
pub fn scatter_pairs(records: &[RunRecord], solver_a: &str, solver_b: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "[scatter] {solver_a} (x) vs {solver_b} (y); TO = not solved\n"
    ));
    let benchmarks: Vec<&str> = {
        let mut v: Vec<&str> = records.iter().map(|r| r.benchmark.as_str()).collect();
        v.sort();
        v.dedup();
        v
    };
    let mut a_better = 0;
    let mut b_better = 0;
    for b in benchmarks {
        let ra = records
            .iter()
            .find(|r| r.benchmark == b && r.solver == solver_a);
        let rb = records
            .iter()
            .find(|r| r.benchmark == b && r.solver == solver_b);
        let (Some(ra), Some(rb)) = (ra, rb) else {
            continue;
        };
        let fmt = |r: &RunRecord| {
            if r.solved {
                format!("{:.3}", r.seconds)
            } else {
                "TO".to_owned()
            }
        };
        match (ra.solved, rb.solved) {
            (true, false) => a_better += 1,
            (false, true) => b_better += 1,
            (true, true) if ra.seconds < rb.seconds => a_better += 1,
            (true, true) if rb.seconds < ra.seconds => b_better += 1,
            _ => {}
        }
        out.push_str(&format!("  {b}: ({}, {})\n", fmt(ra), fmt(rb)));
    }
    out.push_str(&format!(
        "  summary: {solver_a} faster/solves-more on {a_better}, {solver_b} on {b_better}\n"
    ));
    out
}

/// Figure 15: per track, benchmarks solved by pure deduction vs additional
/// ones solved by the full cooperative solver.
pub fn fig15_deduction_share(records: &[RunRecord], deduct: &str, coop: &str) -> String {
    let mut out = String::new();
    out.push_str("[fig15] solved by pure deduction vs with enumeration's help\n");
    let mut ded_total = 0usize;
    let mut coop_total = 0usize;
    for t in tracks_in(records) {
        let ded = records
            .iter()
            .filter(|r| r.solver == deduct && r.track == t && r.solved)
            .count();
        let all = records
            .iter()
            .filter(|r| r.solver == coop && r.track == t && r.solved)
            .count();
        ded_total += ded;
        coop_total += all;
        out.push_str(&format!(
            "  {t}: deduction alone {ded}, cooperative total {all} (enumeration adds {})\n",
            all.saturating_sub(ded)
        ));
    }
    if coop_total > 0 {
        out.push_str(&format!(
            "  share solved by pure deduction: {:.1}%\n",
            100.0 * ded_total as f64 / coop_total as f64
        ));
    }
    out
}

/// Benchmarks solved by exactly one solver (the "58 uniquely solved"
/// statistic), restricted to the competition lineup.
pub fn unique_solved(records: &[RunRecord], lineup: &[&str]) -> String {
    let mut out = String::new();
    out.push_str("[unique] benchmarks solved by exactly one solver\n");
    let benchmarks: Vec<&str> = {
        let mut v: Vec<&str> = records.iter().map(|r| r.benchmark.as_str()).collect();
        v.sort();
        v.dedup();
        v
    };
    for s in lineup {
        let mut uniques: Vec<&str> = Vec::new();
        for b in &benchmarks {
            let solvers_that_solved: Vec<&str> = records
                .iter()
                .filter(|r| r.benchmark == *b && r.solved && lineup.contains(&r.solver.as_str()))
                .map(|r| r.solver.as_str())
                .collect();
            if solvers_that_solved == vec![*s] {
                uniques.push(b);
            }
        }
        out.push_str(&format!(
            "  {s}: {} uniquely solved{}{}\n",
            uniques.len(),
            if uniques.is_empty() { "" } else { ": " },
            uniques.join(", ")
        ));
    }
    out
}

/// Renders the matrix as CSV (for external plotting).
pub fn to_csv(records: &[RunRecord]) -> String {
    let mut out = String::from("benchmark,track,solver,solved,seconds,size\n");
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{:.4},{}\n",
            r.benchmark,
            r.track,
            r.solver,
            r.solved,
            r.seconds,
            r.size.map(|s| s.to_string()).unwrap_or_default()
        ));
    }
    out
}

/// The `BENCH_observability.json` emitter: the whole run matrix as one
/// versioned JSON document (schema version [`dryadsynth::REPORT_VERSION`]),
/// with per-benchmark outcome, wall time, pseudo-log bucket indices, and
/// per-stage timing totals.
pub fn observability_json(records: &[RunRecord]) -> String {
    let runs: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut fields: Vec<(&str, Json)> = vec![
                ("benchmark", Json::str(&r.benchmark)),
                ("track", Json::str(r.track.name())),
                ("solver", Json::str(&r.solver)),
                ("outcome", Json::str(&r.outcome)),
                ("solved", Json::from(r.solved)),
                ("seconds", Json::from(r.seconds)),
                ("time_bucket", Json::from(r.time_bucket)),
            ];
            if let Some(size) = r.size {
                fields.push(("size", Json::from(size)));
            }
            if let Some(bucket) = r.size_bucket {
                fields.push(("size_bucket", Json::from(bucket)));
            }
            fields.push((
                "stage_micros",
                Json::Obj(
                    r.stage_micros
                        .iter()
                        .map(|(stage, micros)| (stage.clone(), Json::from(*micros)))
                        .collect(),
                ),
            ));
            // Search analytics keyed without the `search.` prefix — the
            // same shape `bench compare` reads back for its search gate.
            if !r.search.is_empty() {
                fields.push((
                    "search",
                    Json::Obj(
                        r.search
                            .iter()
                            .map(|(name, value)| {
                                let key = name.strip_prefix("search.").unwrap_or(name);
                                (key.to_owned(), Json::from(*value))
                            })
                            .collect(),
                    ),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj([
        ("version", Json::from(dryadsynth::REPORT_VERSION)),
        ("runs", Json::Arr(runs)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(b: &str, t: Track, s: &str, solved: bool, secs: f64, size: Option<usize>) -> RunRecord {
        RunRecord {
            benchmark: b.to_owned(),
            track: t,
            solver: s.to_owned(),
            solved,
            outcome: if solved { "solved" } else { "timeout" }.to_owned(),
            seconds: secs,
            time_bucket: sygus_ast::time_bucket(secs),
            size,
            size_bucket: size.map(sygus_ast::size_bucket),
            stage_micros: vec![("smt".to_owned(), 120)],
            search: vec![
                ("search.conflicts_total".to_owned(), 40),
                ("search.lbd_count".to_owned(), 40),
                ("search.lbd_sum".to_owned(), 120),
            ],
        }
    }

    fn sample() -> Vec<RunRecord> {
        vec![
            rec("b1", Track::Clia, "A", true, 0.1, Some(5)),
            rec("b1", Track::Clia, "B", true, 2.0, Some(12)),
            rec("b2", Track::Clia, "A", true, 0.5, Some(7)),
            rec("b2", Track::Clia, "B", false, 5.0, None),
            rec("b3", Track::Inv, "A", false, 5.0, None),
            rec("b3", Track::Inv, "B", true, 0.2, Some(3)),
        ]
    }

    #[test]
    fn fig10_counts() {
        let s = fig10_solved_by_track(&sample());
        let a_line = s.lines().find(|l| l.starts_with('A')).unwrap();
        // A: INV 0, CLIA 2, total 2.
        assert!(a_line.trim_end().ends_with('2'), "{a_line}");
    }

    #[test]
    fn fig11_bucketed_ties() {
        let s = fig11_fastest_by_track(&sample());
        // On b1, A is in bucket 0 and B in bucket 1: A wins both CLIA.
        let a_line = s.lines().find(|l| l.starts_with('A')).unwrap();
        assert!(a_line.contains('2'), "{a_line}");
    }

    #[test]
    fn unique_counts() {
        let s = unique_solved(&sample(), &["A", "B"]);
        assert!(s.contains("A: 1 uniquely solved: b2"), "{s}");
        assert!(s.contains("B: 1 uniquely solved: b3"), "{s}");
    }

    #[test]
    fn scatter_summary() {
        let s = scatter_pairs(&sample(), "A", "B");
        assert!(s.contains("(0.100, 2.000)"), "{s}");
        assert!(s.contains("summary"), "{s}");
    }

    #[test]
    fn table1_medians() {
        let s = table1_solution_sizes(&sample());
        assert!(s.contains("6.0"), "median of 5 and 7 expected in {s}");
    }

    #[test]
    fn csv_shape() {
        let csv = to_csv(&sample());
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.lines().nth(1).unwrap().starts_with("b1,CLIA,A,true"));
    }

    #[test]
    fn observability_json_is_versioned_and_parses() {
        let text = observability_json(&sample());
        let doc = Json::parse(&text).expect("emitter output must parse");
        assert_eq!(
            doc.get("version").and_then(Json::as_i64),
            Some(dryadsynth::REPORT_VERSION as i64)
        );
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 6);
        let first = &runs[0];
        assert_eq!(first.get("outcome").and_then(Json::as_str), Some("solved"));
        assert_eq!(first.get("time_bucket").and_then(Json::as_i64), Some(0));
        assert_eq!(first.get("size_bucket").and_then(Json::as_i64), Some(0));
        assert_eq!(
            first
                .get("stage_micros")
                .and_then(|m| m.get("smt"))
                .and_then(Json::as_i64),
            Some(120)
        );
        // Unsolved records omit the size fields but keep the time bucket.
        let unsolved = runs.iter().find(|r| r.get("solved").and_then(Json::as_bool) == Some(false)).unwrap();
        assert!(unsolved.get("size").is_none());
        assert_eq!(unsolved.get("outcome").and_then(Json::as_str), Some("timeout"));
        // Search analytics ride along with the prefix stripped.
        assert_eq!(
            first
                .get("search")
                .and_then(|s| s.get("conflicts_total"))
                .and_then(Json::as_i64),
            Some(40)
        );
    }

    #[test]
    fn fig15_shares() {
        let recs = vec![
            rec("b1", Track::Clia, "Deduction", true, 0.1, Some(5)),
            rec("b1", Track::Clia, "DryadSynth", true, 0.1, Some(5)),
            rec("b2", Track::Clia, "Deduction", false, 5.0, None),
            rec("b2", Track::Clia, "DryadSynth", true, 0.4, Some(9)),
        ];
        let s = fig15_deduction_share(&recs, "Deduction", "DryadSynth");
        assert!(s.contains("deduction alone 1, cooperative total 2"), "{s}");
        assert!(s.contains("50.0%"), "{s}");
    }
}
