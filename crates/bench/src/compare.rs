//! The bench regression harness: diffing two `BENCH*.json` trajectory
//! files (as written by [`observability_json`](crate::observability_json)
//! and the `bench run` subcommand).
//!
//! A comparison matches runs by `(solver, benchmark)` key and reports three
//! classes of difference, each with its own gate:
//!
//! * **Solved-set changes** — a benchmark solved in the old file but not in
//!   the new one (or missing from it entirely) is always a regression; the
//!   solved set is the paper's headline number and must never shrink
//!   silently. Newly solved benchmarks are reported as improvements.
//! * **Per-benchmark time changes** — a solved-in-both run is a regression
//!   when the new time exceeds the old by more than the noise threshold
//!   (relative fraction) *and* the absolute floor (so microsecond-scale
//!   runs cannot trip the relative gate on scheduler noise).
//! * **Per-stage time changes** — same thresholds, applied to the
//!   `stage_micros` totals, so a regression can be attributed to the stage
//!   that slowed down even when the end-to-end time gate stays quiet.
//! * **Search-metric changes** — the same relative threshold applied to
//!   the machine-independent CDCL work counters (`conflicts_total`,
//!   `decisions_total`, `propagations_total`, theory pivot/relaxation
//!   totals) with an absolute floor in counter units, so a search-strategy
//!   regression is caught even on hardware where wall times are noisy.
//!   The gate is skipped per run when either side lacks search data (e.g.
//!   a baseline written before the search-analytics layer existed).
//!
//! With [`CompareConfig::solved_only`] the time gates are reported but do
//! not fail the comparison — the mode for cross-machine CI gates, where
//! absolute times are not comparable but the solved set is. Search-metric
//! gates stay live in that mode: conflict counts are a property of the
//! search, not the machine.

use crate::RunRecord;
use std::collections::BTreeMap;
use sygus_ast::Json;

/// One run parsed back out of a `BENCH*.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRun {
    /// Benchmark name.
    pub benchmark: String,
    /// Solver display name.
    pub solver: String,
    /// Whether the run solved (with verification) within its timeout.
    pub solved: bool,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Per-stage cumulative micros, sorted by stage name.
    pub stage_micros: BTreeMap<String, u64>,
    /// Search-analytics totals (prefix-stripped `search.*` counters:
    /// `conflicts_total`, `lbd_sum`, ...), empty for documents written
    /// before the search-analytics layer.
    pub search: BTreeMap<String, u64>,
}

impl BenchRun {
    /// The `(solver, benchmark)` identity used to match runs across files.
    pub fn key(&self) -> String {
        format!("{}/{}", self.solver, self.benchmark)
    }
}

/// A parsed `BENCH*.json` trajectory document.
#[derive(Clone, Debug, Default)]
pub struct BenchDoc {
    /// The document's schema version field.
    pub version: i64,
    /// Every run in document order.
    pub runs: Vec<BenchRun>,
}

impl BenchDoc {
    /// Parses the output of
    /// [`observability_json`](crate::observability_json).
    ///
    /// # Errors
    ///
    /// A human-readable message when the text is not JSON or runs lack the
    /// required fields.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let version = doc
            .get("version")
            .and_then(Json::as_i64)
            .ok_or("missing `version` field")?;
        let runs_json = doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or("missing `runs` array")?;
        let mut runs = Vec::with_capacity(runs_json.len());
        for (i, run) in runs_json.iter().enumerate() {
            let field_str = |name: &str| {
                run.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or(format!("run {i}: missing `{name}`"))
            };
            let mut stage_micros = BTreeMap::new();
            if let Some(Json::Obj(stages)) = run.get("stage_micros") {
                for (stage, micros) in stages {
                    stage_micros.insert(
                        stage.clone(),
                        micros.as_i64().unwrap_or(0).max(0) as u64,
                    );
                }
            }
            runs.push(BenchRun {
                benchmark: field_str("benchmark")?,
                solver: field_str("solver")?,
                solved: run
                    .get("solved")
                    .and_then(Json::as_bool)
                    .ok_or(format!("run {i}: missing `solved`"))?,
                seconds: run
                    .get("seconds")
                    .and_then(Json::as_f64)
                    .ok_or(format!("run {i}: missing `seconds`"))?,
                stage_micros,
                search: parse_counter_obj(run.get("search")),
            });
        }
        Ok(BenchDoc { version, runs })
    }

    /// Parses a `dryadsynthd` audit log (`--audit`, one JSON object per
    /// line) into a comparable document: benchmark = request id, solver =
    /// `dryadsynthd`, seconds = `solve_us`. Records that never ran an
    /// engine (shed or cancelled while still queued — no `solve_us`) are
    /// skipped; an engine run is a data point whatever its outcome.
    ///
    /// # Errors
    ///
    /// A message naming the first malformed line, or stating that no
    /// engine-run records were found.
    pub fn parse_audit_jsonl(text: &str) -> Result<BenchDoc, String> {
        let mut runs = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("audit line {}: {e}", i + 1))?;
            let field_str = |name: &str| {
                v.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or(format!("audit line {}: missing `{name}`", i + 1))
            };
            let id = field_str("id")?;
            let outcome = field_str("outcome")?;
            let Some(solve_us) = v.get("solve_us").and_then(Json::as_i64) else {
                continue;
            };
            let mut stage_micros = BTreeMap::new();
            if let Some(Json::Obj(stages)) = v.get("stages") {
                for (stage, micros) in stages {
                    stage_micros.insert(
                        stage.clone(),
                        micros.as_i64().unwrap_or(0).max(0) as u64,
                    );
                }
            }
            runs.push(BenchRun {
                benchmark: id,
                solver: "dryadsynthd".to_owned(),
                solved: outcome == "solved",
                seconds: solve_us.max(0) as f64 / 1e6,
                stage_micros,
                search: parse_counter_obj(v.get("search")),
            });
        }
        if runs.is_empty() {
            return Err("no engine-run audit records found".to_owned());
        }
        Ok(BenchDoc {
            version: dryadsynth::REPORT_VERSION as i64,
            runs,
        })
    }

    /// Parses a `synthlint --json` report into a comparable document: one
    /// run per rule, benchmark = rule name, solver = `synthlint`, solved =
    /// zero unsuppressed findings, and `seconds` carrying the finding
    /// *count* (a count, not a time — a rule growing findings between two
    /// snapshots shows up through the same regression gates as a
    /// slowdown). The suppressed count rides in `stage_micros` under
    /// `"suppressed"` so pragma churn is visible in stage drill-downs.
    ///
    /// # Errors
    ///
    /// A message when the text is not a synthlint report or summary rows
    /// lack required fields.
    pub fn parse_lint_json(text: &str) -> Result<BenchDoc, String> {
        let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
        if doc.get("tool").and_then(Json::as_str) != Some("synthlint") {
            return Err("missing `tool: synthlint` marker".to_owned());
        }
        let version = doc
            .get("version")
            .and_then(Json::as_i64)
            .ok_or("missing `version` field")?;
        let summary = doc
            .get("summary")
            .and_then(Json::as_arr)
            .ok_or("missing `summary` array")?;
        let mut runs = Vec::with_capacity(summary.len());
        for (i, row) in summary.iter().enumerate() {
            let rule = row
                .get("rule")
                .and_then(Json::as_str)
                .ok_or(format!("summary row {i}: missing `rule`"))?;
            let findings = row
                .get("findings")
                .and_then(Json::as_i64)
                .ok_or(format!("summary row {i}: missing `findings`"))?;
            let suppressed = row.get("suppressed").and_then(Json::as_i64).unwrap_or(0);
            let mut stage_micros = BTreeMap::new();
            stage_micros.insert("suppressed".to_owned(), suppressed.max(0) as u64);
            runs.push(BenchRun {
                benchmark: rule.to_owned(),
                solver: "synthlint".to_owned(),
                solved: findings == 0,
                seconds: findings.max(0) as f64,
                stage_micros,
                search: BTreeMap::new(),
            });
        }
        Ok(BenchDoc { version, runs })
    }

    /// Parses any supported input by shape: a `BENCH*.json` trajectory
    /// document, a `synthlint --json` report, or a `dryadsynthd` audit
    /// log.
    ///
    /// # Errors
    ///
    /// A message combining the parsers' complaints when the text is none
    /// of the three.
    pub fn parse_any(text: &str) -> Result<BenchDoc, String> {
        let doc_err = match BenchDoc::parse(text) {
            Ok(doc) => return Ok(doc),
            Err(e) => e,
        };
        if let Ok(doc) = BenchDoc::parse_lint_json(text) {
            return Ok(doc);
        }
        BenchDoc::parse_audit_jsonl(text).map_err(|audit_err| {
            format!(
                "neither a bench document ({doc_err}), a synthlint report, nor an audit log ({audit_err})"
            )
        })
    }

    /// Converts an in-process record matrix (no JSON round trip), for tests
    /// and same-process comparisons.
    pub fn from_records(records: &[RunRecord]) -> BenchDoc {
        BenchDoc {
            version: dryadsynth::REPORT_VERSION as i64,
            runs: records
                .iter()
                .map(|r| BenchRun {
                    benchmark: r.benchmark.clone(),
                    solver: r.solver.clone(),
                    solved: r.solved,
                    seconds: r.seconds,
                    stage_micros: r.stage_micros.iter().cloned().collect(),
                    search: r
                        .search
                        .iter()
                        .map(|(name, value)| {
                            let key = name.strip_prefix("search.").unwrap_or(name);
                            (key.to_owned(), *value)
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Extracts a flat `{name: count}` JSON object into a counter map (absent
/// or malformed objects yield an empty map, not an error — older documents
/// simply lack the field).
fn parse_counter_obj(obj: Option<&Json>) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(fields)) = obj {
        for (name, value) in fields {
            out.insert(name.clone(), value.as_i64().unwrap_or(0).max(0) as u64);
        }
    }
    out
}

/// The search counters the comparison gates on: deterministic, monotone
/// work measures. Deliberately excludes derived sums (`lbd_sum`), gauges
/// (`db_clauses`), and bookkeeping (`intervals_total`).
const GATED_SEARCH_METRICS: [&str; 5] = [
    "conflicts_total",
    "decisions_total",
    "propagations_total",
    "simplex_pivots_total",
    "dl_relaxations_total",
];

/// Thresholds and mode for a comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Relative slowdown tolerated before a time counts as regressed
    /// (0.25 = new may be up to 25% slower than old).
    pub noise_frac: f64,
    /// Absolute slowdown floor in seconds: below this, relative changes are
    /// noise regardless of the fraction.
    pub min_seconds: f64,
    /// Absolute floor for search-metric regressions, in counter units: a
    /// search counter must grow by more than this *and* the relative
    /// threshold to count. Keeps tiny problems (a few hundred conflicts)
    /// from tripping the gate on enumeration-order jitter.
    pub min_search_units: u64,
    /// Gate only on the solved set (cross-machine mode): time and stage
    /// regressions are still *reported* but do not fail the comparison.
    /// Search-metric regressions still gate — work counters are
    /// machine-independent.
    pub solved_only: bool,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            noise_frac: 0.25,
            min_seconds: 0.1,
            min_search_units: 1_000,
            solved_only: false,
        }
    }
}

/// One time delta that crossed the thresholds.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeDelta {
    /// The run's `(solver, benchmark)` key (plus `:stage` for stage deltas).
    pub key: String,
    /// Old value (seconds for run deltas, micros for stage deltas).
    pub old: f64,
    /// New value, same unit as `old`.
    pub new: f64,
}

/// The result of comparing two trajectory files; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Runs solved in old but not solved (or absent) in new. Always fatal.
    pub solved_regressions: Vec<String>,
    /// Runs solved in new but not in old.
    pub newly_solved: Vec<String>,
    /// Solved-in-both runs slower than the thresholds allow.
    pub time_regressions: Vec<TimeDelta>,
    /// Solved-in-both runs faster by more than the thresholds.
    pub time_improvements: Vec<TimeDelta>,
    /// Per-stage totals slower than the thresholds allow.
    pub stage_regressions: Vec<TimeDelta>,
    /// Search work counters that grew past the thresholds
    /// ([`GATED_SEARCH_METRICS`] only; `old`/`new` carry counter values).
    pub search_regressions: Vec<TimeDelta>,
    /// Whether the time/stage gates participate in [`Self::has_regressions`].
    pub gate_times: bool,
}

impl CompareReport {
    /// Whether the comparison should fail a gate: the solved set shrank, or
    /// (unless `solved_only`) a time/stage regression crossed the
    /// thresholds.
    pub fn has_regressions(&self) -> bool {
        !self.solved_regressions.is_empty()
            || !self.search_regressions.is_empty()
            || (self.gate_times
                && (!self.time_regressions.is_empty() || !self.stage_regressions.is_empty()))
    }

    /// A human-readable summary, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for key in &self.solved_regressions {
            out.push_str(&format!("REGRESSION solved-set: {key} no longer solved\n"));
        }
        for d in &self.time_regressions {
            out.push_str(&format!(
                "{} time: {} {:.3}s -> {:.3}s (+{:.0}%)\n",
                if self.gate_times { "REGRESSION" } else { "note" },
                d.key,
                d.old,
                d.new,
                100.0 * (d.new - d.old) / d.old.max(1e-9),
            ));
        }
        for d in &self.stage_regressions {
            out.push_str(&format!(
                "{} stage: {} {:.0}us -> {:.0}us (+{:.0}%)\n",
                if self.gate_times { "REGRESSION" } else { "note" },
                d.key,
                d.old,
                d.new,
                100.0 * (d.new - d.old) / d.old.max(1e-9),
            ));
        }
        for d in &self.search_regressions {
            out.push_str(&format!(
                "REGRESSION search: {} {:.0} -> {:.0} (+{:.0}%)\n",
                d.key,
                d.old,
                d.new,
                100.0 * (d.new - d.old) / d.old.max(1e-9),
            ));
        }
        for key in &self.newly_solved {
            out.push_str(&format!("improvement solved-set: {key} newly solved\n"));
        }
        for d in &self.time_improvements {
            out.push_str(&format!(
                "improvement time: {} {:.3}s -> {:.3}s ({:.0}%)\n",
                d.key,
                d.old,
                d.new,
                100.0 * (d.new - d.old) / d.old.max(1e-9),
            ));
        }
        if out.is_empty() {
            out.push_str("no differences beyond the noise thresholds\n");
        }
        out
    }
}

/// Compares `new` against the `old` baseline; see the module docs for the
/// three gates.
pub fn compare(old: &BenchDoc, new: &BenchDoc, cfg: &CompareConfig) -> CompareReport {
    let index = |doc: &BenchDoc| -> BTreeMap<String, BenchRun> {
        doc.runs.iter().map(|r| (r.key(), r.clone())).collect()
    };
    let old_runs = index(old);
    let new_runs = index(new);
    let mut report = CompareReport {
        gate_times: !cfg.solved_only,
        ..CompareReport::default()
    };
    // A slowdown must clear both the relative and the absolute bar.
    let regressed = |old_s: f64, new_s: f64| -> bool {
        new_s > old_s * (1.0 + cfg.noise_frac) && new_s - old_s > cfg.min_seconds
    };
    for (key, old_run) in &old_runs {
        let Some(new_run) = new_runs.get(key) else {
            if old_run.solved {
                report.solved_regressions.push(key.clone());
            }
            continue;
        };
        match (old_run.solved, new_run.solved) {
            (true, false) => {
                report.solved_regressions.push(key.clone());
                continue;
            }
            (false, true) => {
                report.newly_solved.push(key.clone());
                continue;
            }
            (false, false) => continue,
            (true, true) => {}
        }
        if regressed(old_run.seconds, new_run.seconds) {
            report.time_regressions.push(TimeDelta {
                key: key.clone(),
                old: old_run.seconds,
                new: new_run.seconds,
            });
        } else if regressed(new_run.seconds, old_run.seconds) {
            report.time_improvements.push(TimeDelta {
                key: key.clone(),
                old: old_run.seconds,
                new: new_run.seconds,
            });
        }
        for (stage, &old_micros) in &old_run.stage_micros {
            let new_micros = new_run.stage_micros.get(stage).copied().unwrap_or(0);
            if regressed(
                old_micros as f64 / 1e6,
                new_micros as f64 / 1e6,
            ) {
                report.stage_regressions.push(TimeDelta {
                    key: format!("{key}:{stage}"),
                    old: old_micros as f64,
                    new: new_micros as f64,
                });
            }
        }
        // The search gate needs both sides instrumented; a baseline from
        // before the analytics layer (or a run that never hit the SMT
        // core) contributes nothing rather than a spurious zero baseline.
        if !old_run.search.is_empty() && !new_run.search.is_empty() {
            for metric in GATED_SEARCH_METRICS {
                let old_v = old_run.search.get(metric).copied().unwrap_or(0);
                let new_v = new_run.search.get(metric).copied().unwrap_or(0);
                if new_v as f64 > old_v as f64 * (1.0 + cfg.noise_frac)
                    && new_v - old_v > cfg.min_search_units
                {
                    report.search_regressions.push(TimeDelta {
                        key: format!("{key}:{metric}"),
                        old: old_v as f64,
                        new: new_v as f64,
                    });
                }
            }
        }
    }
    for (key, new_run) in &new_runs {
        if new_run.solved && !old_runs.contains_key(key) {
            report.newly_solved.push(key.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(b: &str, s: &str, solved: bool, seconds: f64, smt_micros: u64) -> BenchRun {
        BenchRun {
            benchmark: b.to_owned(),
            solver: s.to_owned(),
            solved,
            seconds,
            stage_micros: [("smt".to_owned(), smt_micros)].into_iter().collect(),
            search: BTreeMap::new(),
        }
    }

    fn with_search(mut r: BenchRun, conflicts: u64) -> BenchRun {
        r.search = [
            ("conflicts_total".to_owned(), conflicts),
            ("decisions_total".to_owned(), conflicts * 2),
        ]
        .into_iter()
        .collect();
        r
    }

    fn doc(runs: Vec<BenchRun>) -> BenchDoc {
        BenchDoc { version: 3, runs }
    }

    #[test]
    fn identical_docs_have_no_regressions() {
        let base = doc(vec![
            run("b1", "A", true, 1.0, 500_000),
            run("b2", "A", false, 5.0, 4_000_000),
        ]);
        let report = compare(&base, &base.clone(), &CompareConfig::default());
        assert!(!report.has_regressions(), "{}", report.render());
        assert!(report.render().contains("no differences"));
    }

    #[test]
    fn twice_as_slow_is_a_regression() {
        let old = doc(vec![run("b1", "A", true, 1.0, 800_000)]);
        let new = doc(vec![run("b1", "A", true, 2.0, 1_600_000)]);
        let report = compare(&old, &new, &CompareConfig::default());
        assert!(report.has_regressions(), "{}", report.render());
        assert_eq!(report.time_regressions.len(), 1);
        assert_eq!(report.time_regressions[0].key, "A/b1");
        // The stage attribution fires too: smt doubled.
        assert_eq!(report.stage_regressions.len(), 1);
        assert_eq!(report.stage_regressions[0].key, "A/b1:smt");
    }

    #[test]
    fn sub_floor_slowdowns_are_noise() {
        // 2x slower but only 40ms absolute: below the 0.1s floor.
        let old = doc(vec![run("b1", "A", true, 0.04, 10_000)]);
        let new = doc(vec![run("b1", "A", true, 0.08, 20_000)]);
        let report = compare(&old, &new, &CompareConfig::default());
        assert!(!report.has_regressions(), "{}", report.render());
    }

    #[test]
    fn a_shrinking_solved_set_always_fails() {
        let old = doc(vec![
            run("b1", "A", true, 1.0, 0),
            run("b2", "A", true, 1.0, 0),
        ]);
        // b1 now times out; b2 vanished from the file entirely.
        let new = doc(vec![run("b1", "A", false, 5.0, 0)]);
        let solved_only = CompareConfig {
            solved_only: true,
            ..CompareConfig::default()
        };
        let report = compare(&old, &new, &solved_only);
        assert!(report.has_regressions(), "{}", report.render());
        assert_eq!(report.solved_regressions, vec!["A/b1", "A/b2"]);
    }

    #[test]
    fn solved_only_ignores_time_regressions_but_reports_them() {
        let old = doc(vec![run("b1", "A", true, 1.0, 900_000)]);
        let new = doc(vec![run("b1", "A", true, 3.0, 2_700_000)]);
        let solved_only = CompareConfig {
            solved_only: true,
            ..CompareConfig::default()
        };
        let report = compare(&old, &new, &solved_only);
        assert!(!report.has_regressions(), "{}", report.render());
        assert_eq!(report.time_regressions.len(), 1);
        assert!(report.render().contains("note time"), "{}", report.render());
    }

    #[test]
    fn improvements_are_reported_not_fatal() {
        let old = doc(vec![
            run("b1", "A", true, 2.0, 0),
            run("b2", "A", false, 5.0, 0),
        ]);
        let new = doc(vec![
            run("b1", "A", true, 0.5, 0),
            run("b2", "A", true, 1.0, 0),
        ]);
        let report = compare(&old, &new, &CompareConfig::default());
        assert!(!report.has_regressions(), "{}", report.render());
        assert_eq!(report.newly_solved, vec!["A/b2"]);
        assert_eq!(report.time_improvements.len(), 1);
    }

    #[test]
    fn docs_round_trip_through_the_emitter() {
        let records = vec![crate::RunRecord {
            benchmark: "b1".to_owned(),
            track: sygus_benchmarks::Track::Clia,
            solver: "A".to_owned(),
            solved: true,
            outcome: "solved".to_owned(),
            seconds: 0.25,
            time_bucket: 0,
            size: Some(7),
            size_bucket: Some(0),
            stage_micros: vec![("smt".to_owned(), 1234)],
            search: vec![
                ("search.conflicts_total".to_owned(), 4096),
                ("search.lbd_sum".to_owned(), 9000),
            ],
        }];
        let text = crate::observability_json(&records);
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed.version, dryadsynth::REPORT_VERSION as i64);
        assert_eq!(parsed.runs, BenchDoc::from_records(&records).runs);
        assert_eq!(parsed.runs[0].stage_micros["smt"], 1234);
        // The search totals survive the round trip with the prefix stripped.
        assert_eq!(parsed.runs[0].search["conflicts_total"], 4096);
        assert_eq!(parsed.runs[0].search["lbd_sum"], 9000);
    }

    #[test]
    fn search_work_blowups_gate_even_in_solved_only_mode() {
        let old = doc(vec![with_search(run("b1", "A", true, 1.0, 0), 10_000)]);
        let new = doc(vec![with_search(run("b1", "A", true, 1.0, 0), 40_000)]);
        let solved_only = CompareConfig {
            solved_only: true,
            ..CompareConfig::default()
        };
        let report = compare(&old, &new, &solved_only);
        assert!(report.has_regressions(), "{}", report.render());
        // conflicts_total and decisions_total both quadrupled.
        assert_eq!(report.search_regressions.len(), 2);
        assert_eq!(report.search_regressions[0].key, "A/b1:conflicts_total");
        assert!(report.render().contains("REGRESSION search"), "{}", report.render());
    }

    #[test]
    fn search_gate_tolerates_noise_and_missing_baselines() {
        // +20% is inside the default 25% noise band.
        let old = doc(vec![with_search(run("b1", "A", true, 1.0, 0), 10_000)]);
        let new = doc(vec![with_search(run("b1", "A", true, 1.0, 0), 12_000)]);
        let report = compare(&old, &new, &CompareConfig::default());
        assert!(!report.has_regressions(), "{}", report.render());
        // Growth under the absolute floor is noise even at a huge ratio.
        let old = doc(vec![with_search(run("b1", "A", true, 1.0, 0), 100)]);
        let new = doc(vec![with_search(run("b1", "A", true, 1.0, 0), 400)]);
        let report = compare(&old, &new, &CompareConfig::default());
        assert!(!report.has_regressions(), "{}", report.render());
        // An uninstrumented baseline skips the gate entirely.
        let old = doc(vec![run("b1", "A", true, 1.0, 0)]);
        let new = doc(vec![with_search(run("b1", "A", true, 1.0, 0), 1_000_000)]);
        let report = compare(&old, &new, &CompareConfig::default());
        assert!(!report.has_regressions(), "{}", report.render());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(BenchDoc::parse("not json").is_err());
        assert!(BenchDoc::parse("{\"runs\": []}").is_err(), "missing version");
        assert!(
            BenchDoc::parse("{\"version\": 3, \"runs\": [{\"solver\": \"A\"}]}").is_err(),
            "run missing fields"
        );
    }

    const AUDIT: &str = concat!(
        "{\"id\": \"q1\", \"outcome\": \"solved\", \"queue_wait_us\": 120, ",
        "\"worker\": 0, \"solve_us\": 250000, \"stages\": {\"smt\": 9000}}\n",
        "{\"id\": \"q2\", \"outcome\": \"overloaded\", \"cause\": \"queue full (3 waiting)\"}\n",
        "{\"id\": \"q3\", \"outcome\": \"timeout\", \"queue_wait_us\": 80, ",
        "\"worker\": 1, \"solve_us\": 2000000}\n",
    );

    #[test]
    fn audit_logs_ingest_as_bench_documents() {
        let doc = BenchDoc::parse_audit_jsonl(AUDIT).unwrap();
        // The shed record never ran an engine and is not a data point.
        assert_eq!(doc.runs.len(), 2);
        assert_eq!(doc.runs[0].benchmark, "q1");
        assert_eq!(doc.runs[0].solver, "dryadsynthd");
        assert!(doc.runs[0].solved);
        assert!((doc.runs[0].seconds - 0.25).abs() < 1e-9);
        assert_eq!(doc.runs[0].stage_micros["smt"], 9000);
        assert!(!doc.runs[1].solved);
        // Comparing an audit log against itself is quiet.
        let report = compare(&doc, &doc, &CompareConfig::default());
        assert!(!report.has_regressions(), "{}", report.render());
    }

    #[test]
    fn parse_any_detects_both_shapes() {
        assert_eq!(BenchDoc::parse_any(AUDIT).unwrap().runs.len(), 2);
        let doc_text = crate::observability_json(&[]);
        assert_eq!(BenchDoc::parse_any(&doc_text).unwrap().runs.len(), 0);
        let err = BenchDoc::parse_any("not either").unwrap_err();
        assert!(err.contains("neither"), "{err}");
        assert!(
            BenchDoc::parse_any("{\"id\": \"only-shed\", \"outcome\": \"overloaded\"}").is_err(),
            "an audit log with no engine runs has nothing to compare"
        );
    }

    const LINT: &str = r#"{"version": 1, "tool": "synthlint", "files": 73,
        "errors": 1, "warnings": 0,
        "summary": [
            {"rule": "unpolled-loop", "findings": 1, "suppressed": 9},
            {"rule": "lock-order", "findings": 0, "suppressed": 0},
            {"rule": "relaxed-handoff", "findings": 0, "suppressed": 6},
            {"rule": "panic-surface", "findings": 0, "suppressed": 4},
            {"rule": "pragma", "findings": 0, "suppressed": 0}
        ],
        "findings": [], "suppressed": []}"#;

    #[test]
    fn parse_lint_json_maps_rules_to_runs() {
        let doc = BenchDoc::parse_lint_json(LINT).unwrap();
        assert_eq!(doc.version, 1);
        assert_eq!(doc.runs.len(), 5);
        let unpolled = &doc.runs[0];
        assert_eq!(unpolled.benchmark, "unpolled-loop");
        assert_eq!(unpolled.solver, "synthlint");
        assert!(!unpolled.solved, "a rule with findings is a failure");
        assert!((unpolled.seconds - 1.0).abs() < f64::EPSILON);
        assert_eq!(unpolled.stage_micros["suppressed"], 9);
        assert!(doc.runs[1].solved, "clean rules count as solved");
        // parse_any routes by the tool marker.
        assert_eq!(BenchDoc::parse_any(LINT).unwrap().runs.len(), 5);
        // An object without the marker is not mistaken for a lint report.
        let err = BenchDoc::parse_lint_json("{\"version\": 1}").unwrap_err();
        assert!(err.contains("synthlint"), "{err}");
    }

    #[test]
    fn lint_snapshots_compare_like_trajectories() {
        // A rule gaining findings between snapshots trips the solved gate.
        let clean = LINT.replace("\"findings\": 1", "\"findings\": 0");
        let old = BenchDoc::parse_any(&clean).unwrap();
        let new = BenchDoc::parse_any(LINT).unwrap();
        let report = compare(&old, &new, &CompareConfig::default());
        assert!(report.has_regressions(), "{}", report.render());
        let quiet = compare(&new, &new, &CompareConfig::default());
        assert!(!quiet.has_regressions(), "{}", quiet.render());
    }
}
