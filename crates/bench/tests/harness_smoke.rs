//! Smoke tests for the evaluation harness: records are produced, solutions
//! are re-verified, and the figure builders consume real data.

use bench_harness::{fig10_solved_by_track, observability_json, run_one, to_csv, RunRecord};
use dryadsynth::DryadSynth;
use std::time::Duration;
use sygus_ast::Json;

#[test]
fn run_one_produces_verified_record() {
    let bench = sygus_benchmarks::max_n(2);
    let solver = DryadSynth::default();
    let rec = run_one(&solver, &bench, Duration::from_secs(20));
    assert_eq!(rec.benchmark, "max2");
    assert_eq!(rec.solver, "DryadSynth");
    assert!(rec.solved, "max2 must solve");
    assert_eq!(rec.outcome, "solved");
    assert!(rec.size.unwrap_or(0) >= 4, "max2 solutions have ≥ 4 nodes");
    assert!(rec.seconds < 20.0);
    assert_eq!(rec.size_bucket, Some(0));
    // The governed run threads a tracer, so stage timings must be present.
    assert!(
        rec.stage_micros.iter().any(|(s, _)| s == "smt"),
        "expected smt stage timings, got {:?}",
        rec.stage_micros
    );
}

#[test]
fn observability_report_parses_from_real_run() {
    let bench = sygus_benchmarks::max_n(2);
    let solver = DryadSynth::default();
    let rec = run_one(&solver, &bench, Duration::from_secs(20));
    let doc = Json::parse(&observability_json(&[rec])).expect("report must parse");
    assert_eq!(
        doc.get("version").and_then(Json::as_i64),
        Some(dryadsynth::REPORT_VERSION as i64)
    );
    let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
    assert_eq!(runs[0].get("benchmark").and_then(Json::as_str), Some("max2"));
    assert_eq!(runs[0].get("outcome").and_then(Json::as_str), Some("solved"));
    assert!(runs[0].get("stage_micros").is_some());
}

#[test]
fn figures_consume_real_records() {
    let solver = DryadSynth::default();
    let records: Vec<RunRecord> = [
        sygus_benchmarks::max_n(2),
        sygus_benchmarks::counter_to(8, 1),
    ]
    .iter()
    .map(|b| run_one(&solver, b, Duration::from_secs(20)))
    .collect();
    let fig10 = fig10_solved_by_track(&records);
    assert!(fig10.contains("DryadSynth"), "{fig10}");
    let csv = to_csv(&records);
    assert_eq!(csv.lines().count(), 3);
}
