//! Smoke tests for the evaluation harness: records are produced, solutions
//! are re-verified, and the figure builders consume real data.

use bench_harness::{fig10_solved_by_track, run_one, to_csv, RunRecord};
use dryadsynth::DryadSynth;
use std::time::Duration;

#[test]
fn run_one_produces_verified_record() {
    let bench = sygus_benchmarks::max_n(2);
    let solver = DryadSynth::default();
    let rec = run_one(&solver, &bench, Duration::from_secs(20));
    assert_eq!(rec.benchmark, "max2");
    assert_eq!(rec.solver, "DryadSynth");
    assert!(rec.solved, "max2 must solve");
    assert!(rec.size.unwrap_or(0) >= 4, "max2 solutions have ≥ 4 nodes");
    assert!(rec.seconds < 20.0);
}

#[test]
fn figures_consume_real_records() {
    let solver = DryadSynth::default();
    let records: Vec<RunRecord> = [
        sygus_benchmarks::max_n(2),
        sygus_benchmarks::counter_to(8, 1),
    ]
    .iter()
    .map(|b| run_one(&solver, b, Duration::from_secs(20)))
    .collect();
    let fig10 = fig10_solved_by_track(&records);
    assert!(fig10.contains("DryadSynth"), "{fig10}");
    let csv = to_csv(&records);
    assert_eq!(csv.lines().count(), 3);
}
