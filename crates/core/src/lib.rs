//! `dryadsynth`: the cooperative SyGuS solver of *Reconciling Enumerative
//! and Deductive Program Synthesis* (PLDI 2020), reimplemented in Rust.

#![warn(missing_docs)]

mod baselines;
mod certify;
mod cooperative;
pub mod daemon;
mod deduction;
mod divide;
mod encode_clia;
mod encode_general;
mod fixed_height;
mod invariant;
pub mod observe;
mod parallel;
pub mod progress;
pub mod runtime;
mod simplify_solution;
mod solver;

/// The `dryadsynthd` wire protocol as a stable public surface.
///
/// Clients that embed the solver and talk to a remote daemon need the
/// request/response types without reaching through the [`daemon`] service
/// internals, so the protocol module is re-exported here under a short,
/// documented path. Every request and terminal response round-trips
/// through its JSON line form:
///
/// ```
/// use dryadsynth::proto::{Request, Response, SolveJob};
///
/// let req = Request::Solve(SolveJob {
///     id: "r1".into(),
///     sygus: "(set-logic LIA)".into(),
///     timeout_ms: Some(5000),
///     engine: Some("coop".into()),
///     certify: true,
/// });
/// let line = req.to_json().to_string();
/// assert_eq!(Request::parse(&line).unwrap(), req);
///
/// let resp_line = r#"{"id":"r1","outcome":"timeout"}"#;
/// let resp = Response::parse(resp_line).unwrap();
/// assert_eq!(resp.id(), Some("r1"));
/// assert_eq!(Response::parse(&resp.to_json().to_string()).unwrap(), resp);
/// ```
pub mod proto {
    pub use crate::daemon::protocol::{
        DrainSummary, LatencyBankStats, LatencyLine, OutcomeResponse, Request, Response,
        SolveJob, StatsLite, StatsReply, DAEMON_VERSION,
    };
}

pub use baselines::{BaselineConfig, CegqiSolver, HoudiniInvSolver};
pub use certify::{certify_solution, Certificate, SpecVerdict};
pub use cooperative::{CoopStats, CooperativeSolver, SynthOutcome};
pub use deduction::{match_into_grammar, Deduced, DeductOutcome, DeductionConfig, DeductiveEngine};
pub use divide::{verify_solution, DivideConfig, Divider, Division, TypeBOutcome, TypeBRecipe};
pub use encode_clia::{tree_nodes, CliaTreeEncoding};
pub use encode_general::GeneralEncoding;
pub use fixed_height::{
    default_examples, ExamplePool, FixedHeightConfig, FixedHeightResult, FixedHeightSolver,
};
pub use invariant::{
    fast_trans, recognize_translation, strengthen_with_summary, summarize, Translation,
};
pub use observe::{dot_graph, outcome_label, trace_jsonl, RunReport, SinkGuard, REPORT_VERSION};
pub use parallel::{BottomUpBackend, EnumBackend, FixedHeightBackend, ParallelHeightBackend};
pub use progress::{Watchdog, WatchdogConfig};
pub use runtime::{Budget, BudgetError, EngineFault};
pub use simplify_solution::{simplify_solution, SimplifyConfig};
pub use solver::{
    competition_solvers, Cvc4Baseline, DryadSynth, DryadSynthConfig, Engine, EuSolverBaseline,
    LoopInvGenBaseline, SolveOptions, SolveReport, SolveRequest, Synthesizer,
};
