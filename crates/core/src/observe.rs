//! Observability sinks for the solver runtime: the versioned machine-readable
//! run report (`--json`), the JSONL trace sink (`--trace`), and the
//! subproblem-graph DOT sink (`--dot`).
//!
//! The data all comes from the [`Tracer`] riding on the run's
//! [`Budget`](crate::Budget) — the sinks here only *format*; they never
//! instrument. See `crates/ast/src/trace.rs` for the recording side and
//! DESIGN.md ("Observability") for the event schema and versioning policy.

use crate::{CoopStats, SynthOutcome};
use std::collections::BTreeMap;
use std::path::PathBuf;
use sygus_ast::trace::{GraphEvent, PathStat, Tracer};
use sygus_ast::{size_bucket, solution_size, time_bucket, Json};

/// The `version` field of the run-report schema. Bump on any breaking change
/// to the report's shape; consumers must check it before reading further.
///
/// Version history: 1 = initial schema; 2 = added the optional `certified`
/// field on solved runs; 3 = added the `profile` span-tree table (top paths
/// by self time, present only on profiling runs); 4 = `metrics.counters`
/// always carries the `interner.symbols` / `interner.bytes` gauges, and
/// `metrics` may carry a `latencies` object on runs that recorded latency
/// histograms; 5 = runs that exercised the SMT core carry a `search`
/// summary block (CDCL/theory search-analytics aggregates: totals,
/// mean/p90 LBD, restarts, propagations-per-decision — see DESIGN.md §13).
pub const REPORT_VERSION: u64 = 5;

/// Paths carried in the report's `profile` table, at most this many, ranked
/// by self time. The folded-stack sink (`--profile`) is unabridged; the
/// report table is a summary.
pub const PROFILE_TOP_PATHS: usize = 20;

/// The stable one-word label of a [`SynthOutcome`] for reports and the bench
/// trajectory (`solved` / `timeout` / `resource-exhausted` / `gave-up`).
pub fn outcome_label(outcome: &SynthOutcome) -> &'static str {
    match outcome {
        SynthOutcome::Solved(_) => "solved",
        SynthOutcome::Timeout => "timeout",
        SynthOutcome::ResourceExhausted(_) => "resource-exhausted",
        SynthOutcome::GaveUp(_) => "gave-up",
    }
}

/// A machine-readable description of one solver run, serialisable as the
/// versioned `--json` report.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The solver/engine display name.
    pub solver: String,
    /// The problem source (file path or benchmark name).
    pub source: String,
    /// The run outcome.
    pub outcome: SynthOutcome,
    /// Wall-clock seconds spent.
    pub seconds: f64,
    /// The cooperative run statistics (empty-default for baselines).
    pub stats: CoopStats,
    /// The metrics snapshot taken from the run's tracer.
    pub metrics: sygus_ast::MetricsSnapshot,
    /// The span-tree profile taken from the run's tracer (empty unless the
    /// tracer had profiling enabled), sorted by path.
    pub profile: Vec<(String, PathStat)>,
    /// Whether the solution passed end-to-end certification (`None` when
    /// certification was not run or the run produced no solution).
    pub certified: Option<bool>,
}

impl RunReport {
    /// Assembles a report from a finished run, snapshotting `tracer`'s
    /// metrics at this moment.
    pub fn new(
        solver: impl Into<String>,
        source: impl Into<String>,
        outcome: SynthOutcome,
        seconds: f64,
        stats: CoopStats,
        tracer: &Tracer,
    ) -> RunReport {
        RunReport {
            solver: solver.into(),
            source: source.into(),
            outcome,
            seconds,
            stats,
            metrics: tracer.metrics().snapshot(),
            profile: tracer.profile(),
            certified: None,
        }
    }

    /// Records the certification verdict on the report (builder style).
    pub fn with_certified(mut self, certified: Option<bool>) -> RunReport {
        self.certified = certified;
        self
    }

    /// The report as a JSON object (schema `version` [`REPORT_VERSION`]).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("version", Json::from(REPORT_VERSION)),
            ("solver", Json::str(&self.solver)),
            ("source", Json::str(&self.source)),
            ("outcome", Json::str(outcome_label(&self.outcome))),
            ("seconds", Json::from(self.seconds)),
            ("time_bucket", Json::from(time_bucket(self.seconds))),
        ];
        match &self.outcome {
            SynthOutcome::Solved(body) => {
                let size = solution_size(body);
                fields.push(("solution", Json::str(body.to_string())));
                fields.push(("solution_size", Json::from(size)));
                fields.push(("size_bucket", Json::from(size_bucket(size))));
                if let Some(certified) = self.certified {
                    fields.push(("certified", Json::Bool(certified)));
                }
            }
            SynthOutcome::ResourceExhausted(reason) | SynthOutcome::GaveUp(reason) => {
                fields.push(("reason", Json::str(reason)));
            }
            SynthOutcome::Timeout => {}
        }
        fields.push(("stats", stats_json(&self.stats)));
        fields.push((
            "faults",
            Json::Arr(
                self.stats
                    .faults
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("stage", Json::str(f.stage)),
                            ("node", Json::from(f.node)),
                            ("message", Json::str(&f.message)),
                        ])
                    })
                    .collect(),
            ),
        ));
        if let Some(search) = search_summary_json(&self.metrics) {
            fields.push(("search", search));
        }
        fields.push(("metrics", self.metrics.to_json()));
        if !self.profile.is_empty() {
            fields.push(("profile", profile_table_json(&self.profile)));
        }
        Json::obj(fields)
    }
}

/// The report's `search` block (schema v5): CDCL/theory search aggregates
/// derived from the `search.*` counters and the `search.lbd` histogram the
/// SMT core's drain layer accumulated. `None` when the run never touched
/// the SAT core, so pure-enumeration reports are unchanged.
fn search_summary_json(metrics: &sygus_ast::MetricsSnapshot) -> Option<Json> {
    let counter = |name: &str| -> u64 {
        metrics
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    };
    let conflicts = counter("search.conflicts_total");
    let decisions = counter("search.decisions_total");
    let propagations = counter("search.propagations_total");
    if conflicts == 0 && decisions == 0 && propagations == 0 {
        return None;
    }
    let lbd_sum = counter("search.lbd_sum");
    let lbd_count = counter("search.lbd_count");
    let mean_lbd = if lbd_count > 0 {
        lbd_sum as f64 / lbd_count as f64
    } else {
        0.0
    };
    let p90_lbd = metrics
        .latencies
        .iter()
        .find(|(k, _)| k == "search.lbd")
        .map_or(0, |(_, snap)| snap.lifetime.p90());
    let propagations_per_decision = if decisions > 0 {
        propagations as f64 / decisions as f64
    } else {
        0.0
    };
    Some(Json::obj([
        ("conflicts", Json::from(conflicts)),
        ("decisions", Json::from(decisions)),
        ("propagations", Json::from(propagations)),
        ("propagations_per_decision", Json::from(propagations_per_decision)),
        ("restarts", Json::from(counter("search.restarts_total"))),
        ("phase_flips", Json::from(counter("search.phase_flips_total"))),
        ("learned_literals", Json::from(counter("search.learned_literals_total"))),
        ("mean_lbd", Json::from(mean_lbd)),
        ("p90_lbd", Json::from(p90_lbd)),
        ("intervals", Json::from(counter("search.intervals_total"))),
        ("db_clauses", Json::from(counter("search.db_clauses"))),
        ("theory_checks", Json::from(counter("search.theory_checks_total"))),
        ("theory_conflicts", Json::from(counter("search.theory_conflicts_total"))),
        ("theory_cert_lits", Json::from(counter("search.theory_cert_lits_total"))),
        ("simplex_pivots", Json::from(counter("search.simplex_pivots_total"))),
        ("dl_relaxations", Json::from(counter("search.dl_relaxations_total"))),
    ]))
}

/// The report's `profile` table: the [`PROFILE_TOP_PATHS`] hottest paths by
/// self time, ties and order made deterministic by the path itself.
fn profile_table_json(profile: &[(String, PathStat)]) -> Json {
    let mut ranked: Vec<&(String, PathStat)> = profile.iter().collect();
    ranked.sort_by(|a, b| b.1.self_micros.cmp(&a.1.self_micros).then(a.0.cmp(&b.0)));
    ranked.truncate(PROFILE_TOP_PATHS);
    Json::Arr(
        ranked
            .iter()
            .map(|(path, stat)| {
                Json::obj([
                    ("path", Json::str(path)),
                    ("count", Json::from(stat.count)),
                    ("self_micros", Json::from(stat.self_micros)),
                    ("total_micros", Json::from(stat.total_micros)),
                ])
            })
            .collect(),
    )
}

fn stats_json(stats: &CoopStats) -> Json {
    Json::obj([
        ("nodes", Json::from(stats.nodes)),
        (
            "solved_by_deduction",
            Json::from(stats.solved_by_deduction),
        ),
        (
            "solved_by_enumeration",
            Json::from(stats.solved_by_enumeration),
        ),
        (
            "source_solved_deductively",
            Json::from(stats.source_solved_deductively),
        ),
        (
            "divisions_proposed",
            Json::Obj(
                stats
                    .divisions_proposed
                    .iter()
                    .map(|&(s, n)| (s.to_owned(), Json::from(n)))
                    .collect(),
            ),
        ),
        ("type_b_fired", Json::from(stats.type_b_fired)),
        ("smt_queries", Json::from(stats.smt_queries)),
        ("smt_retries", Json::from(stats.smt_retries)),
        ("fuel_spent", Json::from(stats.fuel_spent)),
    ])
}

/// Renders the tracer's buffered events as JSONL (one event object per
/// line), the `--trace FILE` sink format. Empty for metrics-only tracers.
pub fn trace_jsonl(tracer: &Tracer) -> String {
    let mut out = String::new();
    for event in tracer.events() {
        out.push_str(&event.to_json().to_string());
        out.push('\n');
    }
    out
}

#[derive(Default)]
struct DotNode {
    label: String,
    engine: Option<&'static str>,
    dead: bool,
}

/// Reconstructs the subproblem graph from the tracer's buffered graph
/// events and renders it as Graphviz DOT, with per-node solver attribution
/// (the paper's Type-A/Type-B analysis). Empty graph for metrics-only
/// tracers.
pub fn dot_graph(tracer: &Tracer) -> String {
    let mut nodes: BTreeMap<usize, DotNode> = BTreeMap::new();
    let mut edges: Vec<(usize, usize, &'static str)> = Vec::new();
    for event in tracer.graph() {
        match event {
            GraphEvent::Node { id, label } => {
                nodes.entry(id).or_default().label = label;
            }
            GraphEvent::Edge {
                parent,
                child,
                strategy,
            } => edges.push((parent, child, strategy)),
            GraphEvent::Solved { id, engine } => {
                nodes.entry(id).or_default().engine = Some(engine);
            }
            GraphEvent::Dead { id } => {
                nodes.entry(id).or_default().dead = true;
            }
        }
    }
    let mut out = String::from(
        "digraph subproblems {\n  rankdir=TB;\n  node [shape=box fontname=\"monospace\"];\n",
    );
    for (id, node) in &nodes {
        let mut label = format!("n{id}");
        if !node.label.is_empty() {
            label.push_str("\\n");
            label.push_str(&dot_escape(&node.label));
        }
        let style = match (node.engine, node.dead) {
            (Some(engine), _) => {
                label.push_str("\\nsolved by ");
                label.push_str(engine);
                match engine {
                    "deduction" => " style=filled fillcolor=palegreen",
                    "enumeration" => " style=filled fillcolor=lightskyblue",
                    _ => " style=filled fillcolor=khaki",
                }
            }
            (None, true) => {
                label.push_str("\\ndead");
                " style=filled fillcolor=lightgray"
            }
            (None, false) => "",
        };
        out.push_str(&format!("  n{id} [label=\"{label}\"{style}];\n"));
    }
    for (parent, child, strategy) in &edges {
        out.push_str(&format!(
            "  n{parent} -> n{child} [label=\"{strategy}\"];\n"
        ));
    }
    out.push_str("}\n");
    out
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Drop-flushing holder for the file sinks (`--trace`, `--dot`,
/// `--profile`). The registered files are written when the guard drops, so
/// buffered events and profile paths reach disk even when the run dies
/// mid-flight — a panic unwinding through the solver, a
/// `ResourceExhausted` bail-out, or a timeout path that skips the normal
/// exit sequence. Call [`SinkGuard::flush`] on the healthy path to surface
/// I/O errors; the drop path is best-effort and swallows them.
pub struct SinkGuard {
    tracer: Tracer,
    trace_path: Option<PathBuf>,
    dot_path: Option<PathBuf>,
    profile_path: Option<PathBuf>,
    search_log_path: Option<PathBuf>,
    flushed: bool,
}

impl SinkGuard {
    /// A guard with no sinks registered (flushing is a no-op until paths
    /// are attached).
    pub fn new(tracer: Tracer) -> SinkGuard {
        SinkGuard {
            tracer,
            trace_path: None,
            dot_path: None,
            profile_path: None,
            search_log_path: None,
            flushed: false,
        }
    }

    /// Registers the JSONL trace sink ([`trace_jsonl`]).
    #[must_use]
    pub fn with_trace(mut self, path: impl Into<PathBuf>) -> SinkGuard {
        self.trace_path = Some(path.into());
        self
    }

    /// Registers the subproblem-graph DOT sink ([`dot_graph`]).
    #[must_use]
    pub fn with_dot(mut self, path: impl Into<PathBuf>) -> SinkGuard {
        self.dot_path = Some(path.into());
        self
    }

    /// Registers the folded-stacks profile sink
    /// ([`Tracer::folded_stacks`]).
    #[must_use]
    pub fn with_profile(mut self, path: impl Into<PathBuf>) -> SinkGuard {
        self.profile_path = Some(path.into());
        self
    }

    /// Registers the search-analytics JSONL sink (`--search-log`) and arms
    /// sample buffering on the tracer's metrics registry — the SMT core's
    /// drain layer only buffers interval records once this is called.
    #[must_use]
    pub fn with_search_log(mut self, path: impl Into<PathBuf>) -> SinkGuard {
        self.tracer.metrics().enable_search_log();
        self.search_log_path = Some(path.into());
        self
    }

    /// Writes every registered sink now and disarms the drop hook.
    /// Subsequent flushes (including the one in `Drop`) are no-ops, so the
    /// files reflect the tracer state at the *first* flush.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.flushed {
            return Ok(());
        }
        self.flushed = true;
        if let Some(path) = &self.trace_path {
            std::fs::write(path, trace_jsonl(&self.tracer))?;
        }
        if let Some(path) = &self.dot_path {
            std::fs::write(path, dot_graph(&self.tracer))?;
        }
        if let Some(path) = &self.profile_path {
            std::fs::write(path, self.tracer.folded_stacks())?;
        }
        if let Some(path) = &self.search_log_path {
            let samples = self.tracer.metrics().search_samples();
            let mut out = String::new();
            for line in &samples {
                out.push_str(line);
                out.push('\n');
            }
            std::fs::write(path, out)?;
        }
        Ok(())
    }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineFault;

    fn sample_stats() -> CoopStats {
        CoopStats {
            nodes: 3,
            solved_by_deduction: 1,
            solved_by_enumeration: 1,
            divisions_proposed: vec![("subterm", 2), ("weaker-spec-or", 1)],
            type_b_fired: 2,
            faults: vec![EngineFault {
                stage: "enumerate",
                node: 1,
                message: "injected".into(),
            }],
            smt_queries: 9,
            ..CoopStats::default()
        }
    }

    #[test]
    fn report_round_trips_with_current_version() {
        let tracer = Tracer::metrics_only();
        tracer.metrics().bump("smt.sat");
        let report = RunReport::new(
            "DryadSynth",
            "bench/max2.sl",
            SynthOutcome::Solved(sygus_ast::Term::int_var("x")),
            2.5,
            sample_stats(),
            &tracer,
        );
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("version").and_then(Json::as_i64), Some(5));
        assert_eq!(
            parsed.get("outcome").and_then(Json::as_str),
            Some("solved")
        );
        assert_eq!(parsed.get("time_bucket").and_then(Json::as_i64), Some(1));
        assert_eq!(parsed.get("size_bucket").and_then(Json::as_i64), Some(0));
        assert_eq!(
            parsed
                .get("stats")
                .and_then(|s| s.get("smt_queries"))
                .and_then(Json::as_i64),
            Some(9)
        );
        let faults = parsed.get("faults").and_then(Json::as_arr).unwrap();
        assert_eq!(faults[0].get("stage").and_then(Json::as_str), Some("enumerate"));
        // The metrics snapshot rode along.
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("smt.sat"))
                .and_then(Json::as_i64),
            Some(1)
        );
    }

    #[test]
    fn certified_field_appears_only_when_recorded() {
        let tracer = Tracer::metrics_only();
        let report = RunReport::new(
            "DryadSynth",
            "bench/max2.sl",
            SynthOutcome::Solved(sygus_ast::Term::int_var("x")),
            0.2,
            CoopStats::default(),
            &tracer,
        );
        let absent = Json::parse(&report.to_json().to_string()).unwrap();
        assert!(absent.get("certified").is_none());
        let with = Json::parse(
            &report
                .clone()
                .with_certified(Some(true))
                .to_json()
                .to_string(),
        )
        .unwrap();
        assert_eq!(with.get("certified").and_then(Json::as_bool), Some(true));
        let failed = Json::parse(
            &report
                .with_certified(Some(false))
                .to_json()
                .to_string(),
        )
        .unwrap();
        assert_eq!(failed.get("certified").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn unsuccessful_outcomes_carry_reasons() {
        let tracer = Tracer::metrics_only();
        let report = RunReport::new(
            "DryadSynth",
            "p.sl",
            SynthOutcome::GaveUp("search space exhausted".into()),
            0.1,
            CoopStats::default(),
            &tracer,
        );
        let parsed = Json::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("outcome").and_then(Json::as_str), Some("gave-up"));
        assert_eq!(
            parsed.get("reason").and_then(Json::as_str),
            Some("search space exhausted")
        );
        assert!(parsed.get("solution").is_none());
    }

    #[test]
    fn profile_table_appears_only_on_profiling_runs_and_ranks_by_self_time() {
        let plain = RunReport::new(
            "DryadSynth",
            "p.sl",
            SynthOutcome::Timeout,
            0.1,
            CoopStats::default(),
            &Tracer::metrics_only(),
        );
        let parsed = Json::parse(&plain.to_json().to_string()).unwrap();
        assert!(parsed.get("profile").is_none());

        let tracer = Tracer::profiling();
        {
            let _outer = tracer.span(sygus_ast::Stage::Enumerate);
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = tracer.span(sygus_ast::Stage::Smt);
            std::thread::sleep(std::time::Duration::from_millis(4));
        }
        let report = RunReport::new(
            "DryadSynth",
            "p.sl",
            SynthOutcome::Timeout,
            0.1,
            CoopStats::default(),
            &tracer,
        );
        let parsed = Json::parse(&report.to_json().to_string()).unwrap();
        let table = parsed.get("profile").and_then(Json::as_arr).unwrap();
        assert_eq!(table.len(), 2);
        // Ranked by self time: the inner SMT span slept longer.
        assert_eq!(
            table[0].get("path").and_then(Json::as_str),
            Some("enumerate;smt")
        );
        assert_eq!(table[1].get("path").and_then(Json::as_str), Some("enumerate"));
        let self0 = table[0].get("self_micros").and_then(Json::as_i64).unwrap();
        let self1 = table[1].get("self_micros").and_then(Json::as_i64).unwrap();
        assert!(self0 >= self1, "{self0} {self1}");
        assert!(table[0].get("total_micros").and_then(Json::as_i64).unwrap() > 0);
    }

    #[test]
    fn search_block_appears_only_with_search_counters() {
        // A run that never touched the SAT core: no `search` block, so
        // pure-enumeration reports keep their old shape.
        let tracer = Tracer::metrics_only();
        let quiet = RunReport::new(
            "DryadSynth",
            "b.sl",
            SynthOutcome::Timeout,
            1.0,
            CoopStats::default(),
            &tracer,
        );
        assert!(quiet.to_json().get("search").is_none());

        // A run with drained search counters carries the aggregates.
        let tracer = Tracer::metrics_only();
        let m = tracer.metrics();
        m.add("search.conflicts_total", 100);
        m.add("search.decisions_total", 50);
        m.add("search.propagations_total", 500);
        m.add("search.restarts_total", 2);
        m.add("search.lbd_sum", 300);
        m.add("search.lbd_count", 100);
        for _ in 0..95 {
            m.record_latency("search.lbd", 3);
        }
        for _ in 0..5 {
            m.record_latency("search.lbd", 9);
        }
        let report = RunReport::new(
            "DryadSynth",
            "b.sl",
            SynthOutcome::Timeout,
            1.0,
            CoopStats::default(),
            &tracer,
        );
        let parsed = Json::parse(&report.to_json().to_string()).unwrap();
        let search = parsed.get("search").expect("search block present");
        assert_eq!(search.get("conflicts").and_then(Json::as_i64), Some(100));
        assert_eq!(search.get("restarts").and_then(Json::as_i64), Some(2));
        assert_eq!(search.get("mean_lbd").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            search.get("propagations_per_decision").and_then(Json::as_f64),
            Some(10.0)
        );
        // p90 of 95×3 + 5×9 sits in the fast mode.
        assert_eq!(search.get("p90_lbd").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn sink_guard_flushes_search_log_jsonl() {
        let dir = std::env::temp_dir().join("dryadsynth-sink-guard-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("search.jsonl");
        let _ = std::fs::remove_file(&path);
        let tracer = Tracer::metrics_only();
        let mut guard = SinkGuard::new(tracer.clone()).with_search_log(&path);
        // with_search_log armed the buffer, so drained samples accumulate.
        assert!(tracer.metrics().search_log_enabled());
        tracer
            .metrics()
            .push_search_sample("{\"type\":\"search_interval\",\"seq\":0}".into());
        tracer
            .metrics()
            .push_search_sample("{\"type\":\"search_interval\",\"seq\":1}".into());
        guard.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("type").and_then(Json::as_str), Some("search_interval"));
        }
    }

    #[test]
    fn sink_guard_flushes_on_panic() {
        let dir = std::env::temp_dir().join("dryadsynth-sink-guard-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.jsonl");
        let profile_path = dir.join("profile.folded");
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&profile_path);
        let tracer = Tracer::new(true, true);
        drop(tracer.span(sygus_ast::Stage::Smt));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = SinkGuard::new(tracer.clone())
                .with_trace(&trace_path)
                .with_profile(&profile_path);
            panic!("engine died mid-run");
        }));
        assert!(result.is_err());
        // Both sinks reached disk despite the panic.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"name\":\"smt\""), "{trace}");
        let folded = std::fs::read_to_string(&profile_path).unwrap();
        assert!(folded.starts_with("smt "), "{folded}");
    }

    #[test]
    fn sink_guard_flush_disarms_the_drop_hook() {
        let dir = std::env::temp_dir().join("dryadsynth-sink-guard-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flush-once.folded");
        let tracer = Tracer::profiling();
        drop(tracer.span(sygus_ast::Stage::Verify));
        let mut guard = SinkGuard::new(tracer.clone()).with_profile(&path);
        guard.flush().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        // More spans after the flush must not change the file on drop.
        drop(tracer.span(sygus_ast::Stage::Verify));
        drop(guard);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
    }

    #[test]
    fn jsonl_sink_emits_one_parseable_line_per_event() {
        let tracer = Tracer::recording();
        drop(tracer.span(sygus_ast::Stage::Deduct).with_node(0));
        drop(tracer.span(sygus_ast::Stage::Smt));
        let jsonl = trace_jsonl(&tracer);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Json::parse(line).unwrap();
        }
        assert!(trace_jsonl(&Tracer::metrics_only()).is_empty());
    }

    #[test]
    fn dot_graph_attributes_solvers_and_strategies() {
        let tracer = Tracer::recording();
        tracer.graph_event(|| GraphEvent::Node {
            id: 0,
            label: "(= (f x) \"q\")".into(),
        });
        tracer.graph_event(|| GraphEvent::Node {
            id: 1,
            label: "aux".into(),
        });
        tracer.graph_event(|| GraphEvent::Edge {
            parent: 0,
            child: 1,
            strategy: "subterm",
        });
        tracer.graph_event(|| GraphEvent::Solved {
            id: 1,
            engine: "deduction",
        });
        tracer.graph_event(|| GraphEvent::Dead { id: 0 });
        let dot = dot_graph(&tracer);
        assert!(dot.starts_with("digraph subproblems {"));
        assert!(dot.contains("n0 -> n1 [label=\"subterm\"]"));
        assert!(dot.contains("solved by deduction"));
        assert!(dot.contains("fillcolor=palegreen"));
        assert!(dot.contains("\\\"q\\\""), "quotes must be escaped: {dot}");
        assert!(dot.trim_end().ends_with('}'));
    }
}
