//! The decision-tree normal form encoding for the full CLIA grammar
//! (Section 5.2, Figure 5 of the paper).
//!
//! A height-`h` candidate is a full binary tree with `2^h − 1` nodes in heap
//! layout. Every node `i` carries an unknown integer coefficient vector
//! `c_i` over the function's arguments plus a constant. Internal nodes test
//! `c_i·(x ⊕ 1) ≥ 0`; leaves produce the value `c_i·(x ⊕ 1)` (integer
//! functions) or the atom `c_i·(x ⊕ 1) ≥ 0` (predicates).
//!
//! Because the inductive-synthesis query instantiates the arguments with
//! *concrete* counterexample values, the unknowns occur linearly and the
//! query stays inside QF_LIA (`interpret_h` of the paper).

use smtkit::Model;
use std::fmt;
use sygus_ast::{Sort, Symbol, Term};

/// The symbolic skeleton of one fixed-height decision tree: the coefficient
/// unknowns for every node.
#[derive(Clone, Debug)]
pub struct CliaTreeEncoding {
    /// Tree height (≥ 1); height 1 is a single leaf.
    pub height: usize,
    /// Function parameters, in order.
    pub params: Vec<Symbol>,
    /// Return sort of the function.
    pub ret: Sort,
    /// `coeffs[node][j]`: unknown for parameter `j`; `coeffs[node][n]` is
    /// the constant term. Nodes are in heap order (children of `i` are
    /// `2i+1` and `2i+2`).
    pub coeffs: Vec<Vec<Symbol>>,
}

/// Number of nodes in a full binary tree of the given height.
pub fn tree_nodes(height: usize) -> usize {
    (1usize << height) - 1
}

impl CliaTreeEncoding {
    /// Allocates fresh unknowns for a height-`height` tree over `params`.
    ///
    /// # Panics
    ///
    /// Panics if `height` is 0 or absurdly large (> 24).
    pub fn new(height: usize, params: &[Symbol], ret: Sort) -> CliaTreeEncoding {
        assert!((1..=24).contains(&height), "unreasonable tree height");
        let nodes = tree_nodes(height);
        let coeffs = (0..nodes)
            .map(|i| {
                (0..=params.len())
                    .map(|j| Symbol::fresh(&format!("c{i}_{j}")))
                    .collect()
            })
            .collect();
        CliaTreeEncoding {
            height,
            params: params.to_vec(),
            ret,
            coeffs,
        }
    }

    /// All unknown symbols, flattened.
    pub fn unknowns(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.coeffs.iter().flatten().copied()
    }

    /// Side constraints bounding every coefficient unknown: parameters by
    /// `coeff_bound`, constants by `const_bound` (the coefficient-bound
    /// widening of the paper's implementation).
    pub fn bound_constraints(&self, coeff_bound: i64, const_bound: i64) -> Term {
        let n = self.params.len();
        Term::and(self.coeffs.iter().flat_map(|node| {
            node.iter().enumerate().map(move |(j, &c)| {
                let b = if j == n { const_bound } else { coeff_bound };
                let v = Term::var(c, Sort::Int);
                Term::and([
                    Term::ge(v.clone(), Term::int(-b)),
                    Term::le(v, Term::int(b)),
                ])
            })
        }))
    }

    /// The linear form of node `i` on concrete argument values:
    /// `Σ_j d_j·c_{i,j} + c_{i,n}` — a term over the unknowns only.
    fn lin_at(&self, node: usize, point: &[i64]) -> Term {
        let n = self.params.len();
        let parts = (0..n)
            .map(|j| {
                Term::mul(
                    Term::int(point[j]),
                    Term::var(self.coeffs[node][j], Sort::Int),
                )
            })
            .chain(std::iter::once(Term::var(self.coeffs[node][n], Sort::Int)));
        Term::sum(parts)
    }

    /// `interpret_h(c, point)`: the symbolic value of the tree on the
    /// concrete input `point` — a term over the coefficient unknowns.
    pub fn interpret(&self, point: &[i64]) -> Term {
        assert_eq!(point.len(), self.params.len(), "arity mismatch");
        self.interpret_node(0, 1, point)
    }

    fn interpret_node(&self, node: usize, depth: usize, point: &[i64]) -> Term {
        let lin = self.lin_at(node, point);
        if depth == self.height {
            return match self.ret {
                Sort::Int => lin,
                Sort::Bool => Term::ge(lin, Term::int(0)),
            };
        }
        let cond = Term::ge(lin, Term::int(0));
        Term::ite(
            cond,
            self.interpret_node(2 * node + 1, depth + 1, point),
            self.interpret_node(2 * node + 2, depth + 1, point),
        )
    }

    /// The linear form of node `i` over the parameter *variables* with
    /// concrete coefficients from a model.
    fn lin_decoded(&self, node: usize, model: &Model) -> Term {
        let n = self.params.len();
        let parts = (0..n)
            .filter_map(|j| {
                let c = model.int(self.coeffs[node][j]).to_i64().unwrap_or(0);
                if c == 0 {
                    None
                } else {
                    Some(Term::scale(c, Term::var(self.params[j], Sort::Int)))
                }
            })
            .chain({
                let d = model.int(self.coeffs[node][n]).to_i64().unwrap_or(0);
                if d == 0 { None } else { Some(Term::int(d)) }.into_iter()
            });
        Term::sum(parts)
    }

    /// Decodes a model of the unknowns into the concrete candidate term
    /// over the parameters (constant-folded and pruned).
    pub fn decode(&self, model: &Model) -> Term {
        self.decode_node(0, 1, model)
    }

    fn decode_node(&self, node: usize, depth: usize, model: &Model) -> Term {
        let lin = self.lin_decoded(node, model);
        if depth == self.height {
            return match self.ret {
                Sort::Int => lin,
                Sort::Bool => Term::ge(lin, Term::int(0)),
            };
        }
        Term::ite(
            Term::ge(lin, Term::int(0)),
            self.decode_node(2 * node + 1, depth + 1, model),
            self.decode_node(2 * node + 2, depth + 1, model),
        )
    }
}

impl fmt::Display for CliaTreeEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decision tree of height {} over {} parameters",
            self.height,
            self.params.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtkit::{SmtResult, SmtSolver};
    use sygus_ast::{Definitions, Env, Value};

    #[test]
    fn node_counts() {
        assert_eq!(tree_nodes(1), 1);
        assert_eq!(tree_nodes(2), 3);
        assert_eq!(tree_nodes(3), 7);
    }

    #[test]
    fn height_one_is_linear_function() {
        let x = Symbol::new("fx");
        let enc = CliaTreeEncoding::new(1, &[x], Sort::Int);
        let t = enc.interpret(&[5]);
        // Σ 5·c + d : two unknowns, no ite.
        assert!(!t.to_string().contains("ite"));
        assert_eq!(t.free_vars().len(), 2);
    }

    #[test]
    fn height_two_has_condition() {
        let x = Symbol::new("fx");
        let enc = CliaTreeEncoding::new(2, &[x], Sort::Int);
        let t = enc.interpret(&[1]);
        assert!(t.to_string().contains("ite"));
        assert_eq!(t.free_vars().len(), 6); // 3 nodes × 2 unknowns
    }

    #[test]
    fn synthesizes_max2_shape_via_smt() {
        // Find coefficients making the height-2 tree compute max(x, y) on
        // three counterexample points.
        let x = Symbol::new("mx");
        let y = Symbol::new("my");
        let enc = CliaTreeEncoding::new(2, &[x, y], Sort::Int);
        let points: [([i64; 2], i64); 4] = [([3, 1], 3), ([1, 3], 3), ([-2, -7], -2), ([0, 0], 0)];
        let query = Term::and(
            points
                .iter()
                .map(|(p, want)| Term::eq(enc.interpret(p), Term::int(*want)))
                .chain(std::iter::once(enc.bound_constraints(1, 1))),
        );
        match SmtSolver::new().check(&query).expect("solver ok") {
            SmtResult::Sat(model) => {
                let cand = enc.decode(&model);
                // Decoded candidate agrees with max on the points.
                let defs = Definitions::new();
                for (p, want) in points {
                    let env = Env::from_pairs(&[x, y], &[Value::Int(p[0]), Value::Int(p[1])]);
                    assert_eq!(
                        cand.eval(&env, &defs),
                        Ok(Value::Int(want)),
                        "candidate {cand} at {p:?}"
                    );
                }
            }
            SmtResult::Unsat => panic!("max2 must be expressible at height 2"),
        }
    }

    #[test]
    fn unsat_when_height_insufficient() {
        // A height-1 (purely linear) tree cannot match max on these points.
        let x = Symbol::new("ux");
        let y = Symbol::new("uy");
        let enc = CliaTreeEncoding::new(1, &[x, y], Sort::Int);
        let points: [([i64; 2], i64); 4] = [([3, 0], 3), ([0, 3], 3), ([0, 0], 0), ([3, 3], 3)];
        let query = Term::and(
            points
                .iter()
                .map(|(p, want)| Term::eq(enc.interpret(p), Term::int(*want)))
                .chain(std::iter::once(enc.bound_constraints(2, 2))),
        );
        assert_eq!(
            SmtSolver::new().check(&query).expect("solver ok"),
            SmtResult::Unsat
        );
    }

    #[test]
    fn predicate_leaves_are_atoms() {
        let x = Symbol::new("px");
        let enc = CliaTreeEncoding::new(1, &[x], Sort::Bool);
        let t = enc.interpret(&[7]);
        assert_eq!(t.sort(), Sort::Bool);
        // Solve for "true at x=7": trivially sat.
        assert!(matches!(
            SmtSolver::new()
                .check(&Term::and([t, enc.bound_constraints(1, 1)]))
                .unwrap(),
            SmtResult::Sat(_)
        ));
    }

    #[test]
    fn decode_drops_zero_coefficients() {
        let x = Symbol::new("dx");
        let enc = CliaTreeEncoding::new(1, &[x], Sort::Int);
        // Model with all-zero coefficients decodes to the constant 0.
        let model = Model::default();
        assert_eq!(enc.decode(&model), Term::int(0));
    }

    #[test]
    fn bound_constraints_limit_magnitude() {
        let x = Symbol::new("bx");
        let enc = CliaTreeEncoding::new(1, &[x], Sort::Int);
        // Force the function to return 100 at x=0 with const bound 1: unsat.
        let q = Term::and([
            Term::eq(enc.interpret(&[0]), Term::int(100)),
            enc.bound_constraints(1, 1),
        ]);
        assert_eq!(SmtSolver::new().check(&q).unwrap(), SmtResult::Unsat);
        // With a generous constant bound it becomes sat.
        let q2 = Term::and([
            Term::eq(enc.interpret(&[0]), Term::int(100)),
            enc.bound_constraints(1, 128),
        ]);
        assert!(matches!(
            SmtSolver::new().check(&q2).unwrap(),
            SmtResult::Sat(_)
        ));
    }
}
