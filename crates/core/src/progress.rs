//! Live progress reporting and stall detection for long solver runs.
//!
//! A [`Watchdog`] is a background thread watching the
//! [`ProgressState`](sygus_ast::ProgressState) that every engine layer
//! updates through its [`Budget`](crate::Budget)'s tracer. It does two
//! jobs, each independently optional:
//!
//! * **Heartbeats** (`--progress`): every heartbeat interval it prints a
//!   one-line summary to its sink — current stage, CEGIS height and round
//!   count, counterexamples, SMT checks/conflicts, and the budget's
//!   remaining fuel and wall time.
//! * **Stall dumps** (`--stall-after SECS`): "progress" is defined as the
//!   progress tick counter moving (see `crates/ast/src/progress.rs`). When
//!   the tick freezes for longer than the stall window the watchdog writes
//!   one full diagnostic — the progress counters, every thread's open span
//!   stack, the active SMT query size, and the named metric counters — then
//!   arms again only after the tick next advances, so a single stall
//!   episode produces exactly one dump no matter how long it lasts.
//!
//! The watchdog never interrupts the solver; it only observes and reports.
//! Stop it with [`Watchdog::stop`] after the run finishes.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sygus_ast::Budget;

/// What the watchdog thread should do and how often.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Print a heartbeat line this often (`None` = no heartbeats).
    pub heartbeat: Option<Duration>,
    /// Dump a diagnostic when the progress tick freezes for this long
    /// (`None` = no stall detection).
    pub stall_after: Option<Duration>,
    /// Polling granularity of the background thread.
    pub poll: Duration,
}

impl WatchdogConfig {
    /// A config with sub-second polling, suitable for the CLI flags.
    pub fn new(heartbeat: Option<Duration>, stall_after: Option<Duration>) -> WatchdogConfig {
        let mut poll = Duration::from_millis(200);
        for window in [heartbeat, stall_after].into_iter().flatten() {
            poll = poll.min(window / 4).max(Duration::from_millis(5));
        }
        WatchdogConfig {
            heartbeat,
            stall_after,
            poll,
        }
    }
}

/// Handle to the background reporter thread; see the module docs.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    stall_dumps: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the reporter thread watching `budget`'s tracer, writing to
    /// `sink` (stderr in the CLI; a shared buffer in tests).
    pub fn spawn(
        budget: &Budget,
        config: WatchdogConfig,
        mut sink: Box<dyn Write + Send>,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stall_dumps = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_dumps = Arc::clone(&stall_dumps);
        let budget = budget.clone();
        let handle = std::thread::Builder::new()
            .name("watchdog".into())
            .spawn(move || {
                let tracer = budget.tracer().clone();
                let started = Instant::now();
                let mut last_ticks = tracer.progress().ticks();
                let mut last_advance = Instant::now();
                let mut dumped_this_stall = false;
                let mut next_heartbeat = config.heartbeat.map(|h| started + h);
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::park_timeout(config.poll);
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let now = Instant::now();
                    let ticks = tracer.progress().ticks();
                    if ticks != last_ticks {
                        last_ticks = ticks;
                        last_advance = now;
                        dumped_this_stall = false;
                    }
                    if let Some(at) = next_heartbeat {
                        if now >= at {
                            let _ = writeln!(
                                sink,
                                "[progress +{:.1}s] {} {}",
                                started.elapsed().as_secs_f64(),
                                tracer.progress().snapshot(),
                                budget_line(&budget),
                            );
                            let _ = sink.flush();
                            next_heartbeat = Some(at + config.heartbeat.unwrap());
                        }
                    }
                    if let Some(window) = config.stall_after {
                        if !dumped_this_stall && now.duration_since(last_advance) >= window {
                            dumped_this_stall = true;
                            thread_dumps.fetch_add(1, Ordering::Relaxed);
                            let _ = write_stall_dump(&mut sink, &budget, window);
                            let _ = sink.flush();
                        }
                    }
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            stop,
            stall_dumps,
            handle: Some(handle),
        }
    }

    /// Stall dumps written so far.
    pub fn stall_dumps(&self) -> u64 {
        self.stall_dumps.load(Ordering::Relaxed)
    }

    /// Stops and joins the reporter thread, returning the number of stall
    /// dumps it wrote.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.stall_dumps()
    }

    fn shutdown(&mut self) {
        // synthlint: allow(relaxed-handoff) — monotonic stop latch; unpark below provides the wakeup edge
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn budget_line(budget: &Budget) -> String {
    let fuel = match (budget.fuel_limit(), budget.fuel_spent()) {
        (Some(limit), spent) => format!("{}", limit.saturating_sub(spent)),
        (None, _) => "inf".into(),
    };
    let time = match budget.remaining_time() {
        Some(left) => format!("{:.1}s", left.as_secs_f64()),
        None => "inf".into(),
    };
    format!("fuel_left={fuel} time_left={time}")
}

/// The full "what is the solver doing" diagnostic written on a stall.
fn write_stall_dump(
    sink: &mut Box<dyn Write + Send>,
    budget: &Budget,
    window: Duration,
) -> std::io::Result<()> {
    let tracer = budget.tracer();
    writeln!(
        sink,
        "[stall] no progress for {:.1}s; diagnostic dump:",
        window.as_secs_f64()
    )?;
    writeln!(sink, "[stall]   {} {}", tracer.progress().snapshot(), budget_line(budget))?;
    let stacks = tracer.live_stacks();
    if stacks.is_empty() {
        writeln!(sink, "[stall]   no open spans (profiling off or between stages)")?;
    }
    for (thread, stack) in stacks {
        writeln!(sink, "[stall]   thread {}: {}", thread, stack.join(";"))?;
    }
    let snapshot = tracer.metrics().snapshot();
    for (name, value) in &snapshot.counters {
        writeln!(sink, "[stall]   counter {name}={value}")?;
    }
    // When a flight recorder rides the tracer (the daemon attaches one per
    // worker), its recent-event timeline lands in the same dump.
    if let Some(ring) = tracer.flight_recorder() {
        writeln!(sink, "[stall]   flight-recorder timeline:")?;
        for line in ring.render_timeline() {
            writeln!(sink, "[stall]   flight {line}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use sygus_ast::{Stage, Tracer};

    /// A `Write` sink tests can read back from outside the watchdog thread.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl SharedSink {
        fn contents(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
        }
    }

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn profiling_budget() -> Budget {
        Budget::unlimited().with_tracer(Tracer::profiling())
    }

    #[test]
    fn a_stalled_run_produces_exactly_one_dump() {
        let budget = profiling_budget();
        let tracer = budget.tracer().clone();
        // Leave a span open so the dump has a live stack to show, then
        // freeze: no further progress updates.
        let _span = tracer.span(Stage::Smt);
        tracer.progress().note_smt_check(77);
        let sink = SharedSink::default();
        let config = WatchdogConfig {
            heartbeat: None,
            stall_after: Some(Duration::from_millis(40)),
            poll: Duration::from_millis(5),
        };
        let watchdog = Watchdog::spawn(&budget, config, Box::new(sink.clone()));
        // Several stall windows pass with no progress: still one dump.
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(watchdog.stop(), 1);
        let out = sink.contents();
        assert_eq!(out.matches("[stall] no progress").count(), 1, "{out}");
        assert!(out.contains("query_size=77"), "{out}");
        assert!(out.contains("thread "), "{out}");
        assert!(out.contains("smt"), "{out}");
    }

    #[test]
    fn progress_rearms_the_stall_detector() {
        let budget = profiling_budget();
        let tracer = budget.tracer().clone();
        let sink = SharedSink::default();
        let config = WatchdogConfig {
            heartbeat: None,
            stall_after: Some(Duration::from_millis(30)),
            poll: Duration::from_millis(5),
        };
        let watchdog = Watchdog::spawn(&budget, config, Box::new(sink.clone()));
        std::thread::sleep(Duration::from_millis(120)); // first stall
        tracer.progress().note_cegis_round(); // progress resumes
        std::thread::sleep(Duration::from_millis(120)); // second stall
        assert_eq!(watchdog.stop(), 2);
        let out = sink.contents();
        assert_eq!(out.matches("[stall] no progress").count(), 2, "{out}");
    }

    #[test]
    fn an_active_run_emits_heartbeats_but_no_dump() {
        let budget = profiling_budget();
        let tracer = budget.tracer().clone();
        let sink = SharedSink::default();
        let config = WatchdogConfig {
            heartbeat: Some(Duration::from_millis(20)),
            stall_after: Some(Duration::from_millis(200)),
            poll: Duration::from_millis(5),
        };
        let watchdog = Watchdog::spawn(&budget, config, Box::new(sink.clone()));
        for _ in 0..15 {
            tracer.progress().note_cegis_round();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(watchdog.stop(), 0);
        let out = sink.contents();
        assert!(out.contains("[progress +"), "{out}");
        assert!(out.contains("cegis="), "{out}");
        assert!(out.contains("fuel_left=inf"), "{out}");
        assert!(!out.contains("[stall]"), "{out}");
    }

    #[test]
    fn a_ring_attached_tracer_dumps_its_flight_timeline_on_stall() {
        let ring = Arc::new(sygus_ast::EventRing::new(8));
        let tracer = Tracer::with_flight_recorder(true, true, Arc::clone(&ring));
        let budget = Budget::unlimited().with_tracer(tracer.clone());
        ring.note("request", "id=r1 start");
        tracer.progress().note_smt_check(5);
        let sink = SharedSink::default();
        let config = WatchdogConfig {
            heartbeat: None,
            stall_after: Some(Duration::from_millis(40)),
            poll: Duration::from_millis(5),
        };
        let watchdog = Watchdog::spawn(&budget, config, Box::new(sink.clone()));
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(watchdog.stop(), 1);
        let out = sink.contents();
        assert!(out.contains("flight-recorder timeline"), "{out}");
        assert!(out.contains("id=r1 start"), "{out}");
    }

    #[test]
    fn config_polls_finer_than_the_smallest_window() {
        let config = WatchdogConfig::new(
            Some(Duration::from_millis(100)),
            Some(Duration::from_millis(40)),
        );
        assert_eq!(config.poll, Duration::from_millis(10));
        let coarse = WatchdogConfig::new(None, None);
        assert_eq!(coarse.poll, Duration::from_millis(200));
    }
}
