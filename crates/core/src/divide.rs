//! The three divide-and-conquer strategies of Section 4 (Figure 4):
//! subterm-based, fixed-term-based, and weaker-spec-based division.
//!
//! Each strategy proposes Type-A subproblems; once a Type-A subproblem is
//! solved, [`Division::type_b`] turns the solution into the corresponding
//! Type-B subproblem (or directly into a full solution when the Type-B part
//! is deterministic, as for `FixedTerm`).

use crate::deduction::match_into_grammar;
use smtkit::{SmtConfig, SmtSolver, Validity};
use std::sync::Arc;
use sygus_ast::runtime::Budget;
use sygus_ast::trace::Stage;
use sygus_ast::{
    conjuncts, simplify, FuncDef, Grammar, GrammarFlavor, Op, Problem, Sort, Symbol, SynthFun,
    Term, TermNode,
};

/// One proposed division: the Type-A subproblem plus the recipe for the
/// Type-B step.
#[derive(Clone)]
pub struct Division {
    /// Human-readable strategy tag (for tracing and the experiment
    /// harness).
    pub strategy: &'static str,
    /// The Type-A subproblem to solve first.
    pub type_a: Problem,
    /// The Type-B recipe, applied to the Type-A solution.
    pub recipe: TypeBRecipe,
}

/// What to do with a Type-A solution.
#[derive(Clone)]
pub enum TypeBRecipe {
    /// Subterm division: extend the parent grammar with the auxiliary
    /// operator (defined by the Type-A solution) and re-solve the parent
    /// spec; the final solution inlines the auxiliary function.
    Subterm {
        /// The auxiliary function name.
        aux: Symbol,
        /// Auxiliary parameters.
        params: Vec<(Symbol, Sort)>,
        /// Auxiliary return sort.
        ret: Sort,
    },
    /// Fixed-term division: the Type-B solution is deterministic —
    /// `ite(Φ[t/f], t, P(y))` where `t` is the fixed term and `P` the
    /// Type-A solution.
    FixedTerm {
        /// The fixed candidate term (over the parent parameters).
        fixed: Term,
        /// `Φ[t/f]` as a condition over the parent parameters.
        guard: Term,
    },
    /// Weaker-spec division: the parent solution is `P ⊕ Q` where `P` is
    /// the Type-A solution and `Q` solves the Type-B problem.
    WeakerSpec {
        /// The combinator: `true` for ∧, `false` for ∨.
        conjunction: bool,
    },
}

/// Result of applying a Type-B recipe.
// Short-lived return value, never stored in bulk; boxing the large variant
// would churn every match site for no measurable win.
#[allow(clippy::large_enum_variant)]
pub enum TypeBOutcome {
    /// The parent problem is already solved by this body.
    Solved(Term),
    /// A Type-B subproblem remains; `wrap` maps its solution to the parent
    /// solution.
    Subproblem {
        /// The Type-B problem.
        problem: Problem,
        /// Recombination into the parent's solution space.
        wrap: Arc<dyn Fn(Term) -> Term + Send + Sync>,
    },
}

impl Division {
    /// Applies the Type-B recipe to a Type-A solution.
    pub fn type_b(&self, parent: &Problem, a_solution: &Term) -> TypeBOutcome {
        match &self.recipe {
            TypeBRecipe::Subterm { aux, params, ret } => {
                let mut b = parent.clone();
                b.synth_fun.grammar = parent.synth_fun.grammar.with_operator(
                    *aux,
                    &params.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
                    *ret,
                );
                let def = FuncDef::new(params.clone(), *ret, a_solution.clone());
                b.definitions.define(*aux, def.clone());
                let aux = *aux;
                let parent_grammar = parent.synth_fun.grammar.clone();
                let parent_defs = parent.definitions.clone();
                TypeBOutcome::Subproblem {
                    problem: b,
                    wrap: Arc::new(move |q: Term| {
                        // Inline the auxiliary operator; prefer the inlined
                        // form when it stays in the original grammar.
                        let inlined = simplify(&q.instantiate_func(aux, &def));
                        if parent_grammar.generates(&inlined) {
                            inlined
                        } else {
                            // Try rewriting back into the grammar with the
                            // parent's interpreted functions.
                            let mut probe = Problem::new(SynthFun {
                                name: Symbol::fresh("probe"),
                                params: Vec::new(),
                                ret: Sort::Int,
                                grammar: parent_grammar.clone(),
                            });
                            probe.definitions = parent_defs.clone();
                            match_into_grammar(&probe, &inlined).unwrap_or(inlined)
                        }
                    }),
                }
            }
            TypeBRecipe::FixedTerm { fixed, guard } => {
                let body = Term::ite(guard.clone(), fixed.clone(), a_solution.clone());
                TypeBOutcome::Solved(simplify(&body))
            }
            TypeBRecipe::WeakerSpec { conjunction } => {
                let p_sol = a_solution.clone();
                let conj = *conjunction;
                // Type-B spec: Φ[λy.(P ⊕ g)/f] — synthesize g under the
                // original spec with f replaced by the combination.
                let g = Symbol::fresh(&format!("{}_ws", parent.synth_fun.name));
                let sf = &parent.synth_fun;
                let g_app = Term::apply(g, sf.ret, sf.param_terms());
                let combined_body = if conj {
                    Term::and([p_sol.clone(), g_app])
                } else {
                    Term::or([p_sol.clone(), g_app])
                };
                let replacement = FuncDef::new(sf.params.clone(), sf.ret, combined_body);
                let mut b = parent.clone();
                b.synth_fun = SynthFun {
                    name: g,
                    params: sf.params.clone(),
                    ret: sf.ret,
                    grammar: sf.grammar.clone(),
                };
                b.constraints = parent
                    .constraints
                    .iter()
                    .map(|c| simplify(&c.instantiate_func(parent.synth_fun.name, &replacement)))
                    .collect();
                TypeBOutcome::Subproblem {
                    problem: b,
                    wrap: Arc::new(move |q: Term| {
                        if conj {
                            Term::and([p_sol.clone(), q])
                        } else {
                            Term::or([p_sol.clone(), q])
                        }
                    }),
                }
            }
        }
    }
}

/// Configuration for the divider.
#[derive(Clone, Debug)]
pub struct DivideConfig {
    /// Maximum number of subterm-based divisions proposed per problem.
    pub max_subterm_divisions: usize,
    /// Whether fixed-term division is enabled (needs the CLIA grammar so
    /// the `ite` combination stays inside the grammar).
    pub fixed_term: bool,
    /// Shared resource governor for side-condition checks.
    pub budget: Budget,
}

impl Default for DivideConfig {
    fn default() -> DivideConfig {
        DivideConfig {
            max_subterm_divisions: 4,
            fixed_term: true,
            budget: Budget::unlimited(),
        }
    }
}

/// The divide-and-conquer splitter of the cooperative framework.
#[derive(Clone, Debug, Default)]
pub struct Divider {
    config: DivideConfig,
}

impl Divider {
    /// Creates a divider.
    pub fn new(config: DivideConfig) -> Divider {
        Divider { config }
    }

    /// Proposes all Type-A subproblems of `problem`
    /// (`TypeASubproblems` in Algorithm 1).
    pub fn divide(&self, problem: &Problem) -> Vec<Division> {
        let tracer = self.config.budget.tracer().clone();
        let mut out = Vec::new();
        let subterm = self.subterm_divisions(problem);
        tracer.point(Stage::Divide, None, || {
            format!("strategy=subterm proposals={}", subterm.len())
        });
        out.extend(subterm);
        let weaker = self.weaker_spec_divisions(problem);
        tracer.point(Stage::Divide, None, || {
            format!("strategy=weaker-spec proposals={}", weaker.len())
        });
        out.extend(weaker);
        if self.config.fixed_term {
            let fixed = self.fixed_term_division(problem);
            tracer.point(Stage::Divide, None, || {
                format!("strategy=fixed-term proposals={}", fixed.len())
            });
            out.extend(fixed);
        }
        out
    }

    /// Subterm-based division (Section 4.1): when the spec is a reference
    /// implementation `f(y) = e`, propose auxiliary functions for
    /// interesting subterms of `e`.
    fn subterm_divisions(&self, problem: &Problem) -> Vec<Division> {
        let f = problem.synth_fun.name;
        let spec = problem.spec().inline_defs(&problem.definitions);
        let cs = conjuncts(&spec);
        // Reference-implementation shape: a single conjunct f(y) = e.
        let mut reference: Option<(Vec<Term>, Term)> = None;
        if cs.len() == 1 {
            if let Some((Op::Eq, args)) = cs[0].as_app().map(|(o, a)| (*o, a)) {
                for (lhs, rhs) in [(&args[0], &args[1]), (&args[1], &args[0])] {
                    if let TermNode::App(Op::Apply(g, _), fargs) = lhs.node() {
                        if *g == f && !rhs.applies(f) {
                            reference = Some((fargs.clone(), rhs.clone()));
                        }
                    }
                }
            }
        }
        let Some((fargs, e)) = reference else {
            return Vec::new();
        };
        // Arguments must be distinct variables for the inversion.
        let mut argvars = Vec::new();
        for a in &fargs {
            match a.node() {
                TermNode::Var(v, s) if !argvars.contains(&(*v, *s)) => argvars.push((*v, *s)),
                _ => return Vec::new(),
            }
        }
        // Candidate subterms: proper, f-free, nontrivial; prefer ite-headed
        // (conditionals are what make syntax trees tall).
        let mut candidates: Vec<Term> = e
            .subterms()
            .into_iter()
            .filter(|s| s != &e && s.size() >= 3 && !s.applies(f))
            .collect();
        candidates.sort_by_key(|s| {
            let ite_bonus = if matches!(s.node(), TermNode::App(Op::Ite, _)) {
                0
            } else {
                1
            };
            (ite_bonus, std::cmp::Reverse(s.size()))
        });
        candidates.truncate(self.config.max_subterm_divisions);

        let mut out = Vec::new();
        for sub in candidates {
            if sub.sort() != Sort::Int && sub.sort() != Sort::Bool {
                continue;
            }
            let fv = sub.free_vars();
            let aux_params: Vec<(Symbol, Sort)> = argvars
                .iter()
                .copied()
                .filter(|(v, _)| fv.contains_key(v))
                .collect();
            if aux_params.is_empty() {
                continue;
            }
            let aux = Symbol::fresh("aux");
            let ret = sub.sort();
            // Type-A problem: aux(vars) = sub, same grammar restricted to
            // the auxiliary parameters.
            let grammar = restrict_grammar(&problem.synth_fun.grammar, &aux_params);
            let mut a = Problem::new(SynthFun {
                name: aux,
                params: aux_params.clone(),
                ret,
                grammar,
            });
            a.definitions = problem.definitions.clone();
            for &(v, s) in &aux_params {
                a.declare_var(v.as_str(), s);
            }
            let app = Term::apply(
                aux,
                ret,
                aux_params.iter().map(|&(v, s)| Term::var(v, s)).collect(),
            );
            a.add_constraint(Term::eq(app, sub.clone()));
            out.push(Division {
                strategy: "subterm",
                type_a: a,
                recipe: TypeBRecipe::Subterm {
                    aux,
                    params: aux_params,
                    ret,
                },
            });
        }
        out
    }

    /// Weaker-spec-based division (Section 4.3), instantiated for Horn-shaped
    /// predicate specifications (in particular INV problems): drop one
    /// conjunct group and recombine with ∧ or ∨ (Definition 4.1 with
    /// `⊕ ∈ {∧, ∨}`).
    fn weaker_spec_divisions(&self, problem: &Problem) -> Vec<Division> {
        if problem.synth_fun.ret != Sort::Bool {
            return Vec::new();
        }
        let f = problem.synth_fun.name;
        let cs: Vec<Term> = problem
            .constraints
            .iter()
            .filter(|c| c.applies(f))
            .cloned()
            .collect();
        if cs.len() < 3 {
            return Vec::new();
        }
        // Classify conjuncts by the polarity of f occurrences after NNF:
        // positive-only (pre → inv), negative-only (inv → post), or mixed
        // (inductiveness). The two classic INV splits:
        //   drop the negative-only group, recombine with ∧;
        //   drop the positive-only group, recombine with ∨.
        let mut positive = Vec::new();
        let mut negative = Vec::new();
        let mut mixed = Vec::new();
        for c in &cs {
            match polarity(f, &sygus_ast::nnf(c)) {
                Some(Polarity::Positive) => positive.push(c.clone()),
                Some(Polarity::Negative) => negative.push(c.clone()),
                _ => mixed.push(c.clone()),
            }
        }
        if positive.is_empty() || negative.is_empty() {
            return Vec::new();
        }
        let others: Vec<Term> = problem
            .constraints
            .iter()
            .filter(|c| !c.applies(f))
            .cloned()
            .collect();
        let make = |kept: Vec<Term>, conjunction: bool| -> Division {
            let mut a = problem.clone();
            a.constraints = others.iter().cloned().chain(kept).collect();
            Division {
                strategy: if conjunction {
                    "weaker-spec-and"
                } else {
                    "weaker-spec-or"
                },
                type_a: a,
                recipe: TypeBRecipe::WeakerSpec { conjunction },
            }
        };
        let mut out = Vec::new();
        // Φ∧Δ (pre + inductive), recombine with ∧.
        let mut keep_and = positive.clone();
        keep_and.extend(mixed.iter().cloned());
        if keep_and.len() < cs.len() {
            out.push(make(keep_and, true));
        }
        // Δ∧Ψ (inductive + post), recombine with ∨.
        let mut keep_or = mixed.clone();
        keep_or.extend(negative.iter().cloned());
        if keep_or.len() < cs.len() {
            out.push(make(keep_or, false));
        }
        out
    }

    /// Fixed-term-based division (Section 4.2): generate a quick candidate
    /// with a shallow fixed-height search; if it is good on part of the
    /// input space, Subproblem A only needs to cover the rest.
    fn fixed_term_division(&self, problem: &Problem) -> Vec<Division> {
        if problem.synth_fun.grammar.flavor() != GrammarFlavor::Clia {
            return Vec::new();
        }
        let f = problem.synth_fun.name;
        // The rule needs `f(e) ∼ e ≼ Φ`: a comparison between f and a term.
        let spec = problem.spec();
        let has_comparison = conjuncts(&spec).iter().any(|c| {
            c.as_app().is_some_and(|(op, args)| {
                op.is_comparison() && (args[0].applies(f) || args[1].applies(f))
            })
        });
        if !has_comparison {
            return Vec::new();
        }
        // A quick unverified candidate from a shallow symbolic query plays
        // the role of the "failed CEGIS candidate" of Section 4.2.
        let fh = crate::FixedHeightSolver::new(crate::FixedHeightConfig {
            max_cegis_rounds: 10,
            budget: self.config.budget.clone(),
            ..crate::FixedHeightConfig::default()
        });
        let Some(candidate) = fh.propose_candidate(problem, 2) else {
            return Vec::new();
        };
        let guard = simplify(&problem.verification_formula(&candidate));
        // Degenerate guards make useless divisions.
        if guard.as_bool_const().is_some() {
            return Vec::new();
        }
        // Type-A: synthesize g with spec Φ[t/f] ∨ Φ[g/f].
        let mut a = problem.clone();
        let g = Symbol::fresh(&format!("{f}_rest"));
        a.synth_fun = SynthFun {
            name: g,
            params: problem.synth_fun.params.clone(),
            ret: problem.synth_fun.ret,
            grammar: problem.synth_fun.grammar.clone(),
        };
        let spec_g = spec.replace_apps(f, &|args| {
            Term::apply(g, problem.synth_fun.ret, args.to_vec())
        });
        // Rebind Φ[t/f] over the declared variables (guard is already over
        // declared variables since verification_formula instantiates f).
        a.constraints = vec![Term::or([guard.clone(), spec_g])];
        // The final combination guard must be over the parameters: rename
        // declared vars to params positionally via the application sites.
        let param_guard = guard_over_params(problem, &candidate);
        let Some(param_guard) = param_guard else {
            return Vec::new();
        };
        vec![Division {
            strategy: "fixed-term",
            type_a: a,
            recipe: TypeBRecipe::FixedTerm {
                fixed: candidate,
                guard: param_guard,
            },
        }]
    }
}

/// Restricts variable productions of a grammar to the given parameters
/// (used when an auxiliary function has fewer arguments than its parent).
fn restrict_grammar(grammar: &Grammar, params: &[(Symbol, Sort)]) -> Grammar {
    use sygus_ast::GTerm;
    fn allowed(pat: &GTerm, params: &[(Symbol, Sort)]) -> bool {
        match pat {
            GTerm::Var(v, s) => params.iter().any(|&(p, ps)| p == *v && ps == *s),
            GTerm::App(_, args) => args.iter().all(|a| allowed(a, params)),
            _ => true,
        }
    }
    let mut g = Grammar::new();
    for nt in grammar.nonterminals() {
        g.add_nonterminal(nt.name, nt.sort);
    }
    g.set_start(grammar.start());
    for (i, nt) in grammar.nonterminals().iter().enumerate() {
        for p in &nt.productions {
            if allowed(p, params) {
                g.add_production(i, p.clone());
            }
        }
    }
    g.set_flavor(grammar.flavor());
    g
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Polarity {
    Positive,
    Negative,
}

/// Polarity of every occurrence of `f` in an NNF term, if uniform.
fn polarity(f: Symbol, t: &Term) -> Option<Polarity> {
    fn go(f: Symbol, t: &Term, negated: bool, acc: &mut Option<Option<Polarity>>) {
        match t.node() {
            TermNode::App(Op::Not, args) => go(f, &args[0], !negated, acc),
            TermNode::App(Op::Apply(g, _), args) => {
                if *g == f {
                    let p = if negated {
                        Polarity::Negative
                    } else {
                        Polarity::Positive
                    };
                    match acc {
                        None => *acc = Some(Some(p)),
                        Some(Some(q)) if *q == p => {}
                        _ => *acc = Some(None),
                    }
                }
                for a in args {
                    go(f, a, negated, acc);
                }
            }
            TermNode::App(Op::Implies, args) => {
                go(f, &args[0], !negated, acc);
                go(f, &args[1], negated, acc);
            }
            TermNode::App(_, args) => {
                for a in args {
                    go(f, a, negated, acc);
                }
            }
            _ => {}
        }
    }
    let mut acc: Option<Option<Polarity>> = None;
    go(f, t, false, &mut acc);
    acc.flatten()
}

/// `Φ[t/f]` expressed over the synth-fun parameters, derivable when the
/// spec applies `f` to one tuple of distinct variables.
fn guard_over_params(problem: &Problem, candidate: &Term) -> Option<Term> {
    let f = problem.synth_fun.name;
    let spec = problem.spec().inline_defs(&problem.definitions);
    let sites = spec.application_sites(f);
    let first = sites.first()?;
    if sites.iter().any(|s| s != first) {
        return None;
    }
    let mut rename = std::collections::BTreeMap::new();
    for (arg, &(p, s)) in first.iter().zip(&problem.synth_fun.params) {
        match arg.node() {
            TermNode::Var(v, _) => {
                rename.insert(*v, Term::var(p, s));
            }
            _ => return None,
        }
    }
    if rename.len() != first.len() {
        return None;
    }
    let def = FuncDef::new(
        problem.synth_fun.params.clone(),
        problem.synth_fun.ret,
        candidate.clone(),
    );
    let inst = spec.instantiate_func(f, &def);
    Some(simplify(&inst.subst_vars(&rename)))
}

/// Verifies a recombined solution against the parent spec (used by the
/// cooperative loop before accepting a Type-B result). `None` runs
/// unbounded.
pub fn verify_solution(problem: &Problem, body: &Term, budget: Option<&Budget>) -> bool {
    let budget = budget.cloned().unwrap_or_default();
    let tracer = budget.tracer().clone();
    let _span = tracer.span(Stage::Verify);
    let smt = SmtSolver::with_config(SmtConfig {
        budget,
        ..SmtConfig::default()
    });
    let formula = problem.verification_formula(body);
    matches!(smt.check_valid(&formula), Ok(Validity::Valid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus_parser::parse_problem;

    fn divider() -> Divider {
        Divider::new(DivideConfig::default())
    }

    const MAX3_QM: &str = r#"
        (set-logic LIA)
        (define-fun qm ((a Int) (b Int)) Int (ite (< a 0) b a))
        (synth-fun max3 ((x Int) (y Int) (z Int)) Int
            ((S Int (x y z 0 1 (+ S S) (- S S) (qm S S)))))
        (declare-var x Int)
        (declare-var y Int)
        (declare-var z Int)
        (constraint (= (max3 x y z)
            (ite (and (>= x y) (>= x z)) x (ite (>= y z) y z))))
        (check-synth)
    "#;

    #[test]
    fn subterm_division_proposed_for_reference_specs() {
        let p = parse_problem(MAX3_QM).unwrap();
        let divisions = divider().divide(&p);
        let subterms: Vec<&Division> = divisions
            .iter()
            .filter(|d| d.strategy == "subterm")
            .collect();
        assert!(!subterms.is_empty());
        // The inner ite(y >= z, y, z) must be among the proposals (it is the
        // paper's aux target in Example 3.2).
        let found = subterms.iter().any(|d| {
            d.type_a.constraints[0]
                .to_string()
                .contains("(ite (>= y z) y z)")
        });
        assert!(found, "expected the inner ite as an aux target");
    }

    #[test]
    fn subterm_type_a_has_restricted_params() {
        let p = parse_problem(MAX3_QM).unwrap();
        let divisions = divider().divide(&p);
        let d = divisions
            .iter()
            .find(|d| {
                d.strategy == "subterm"
                    && d.type_a.constraints[0]
                        .to_string()
                        .contains("(ite (>= y z) y z)")
            })
            .expect("inner ite proposal");
        // aux(y, z): two parameters.
        assert_eq!(d.type_a.synth_fun.params.len(), 2);
        // Grammar's variable productions restricted to y, z.
        let g = &d.type_a.synth_fun.grammar;
        let vars: Vec<String> = g
            .nonterminal(0)
            .productions
            .iter()
            .filter_map(|pr| match pr {
                sygus_ast::GTerm::Var(v, _) => Some(v.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(vars, vec!["y", "z"]);
    }

    #[test]
    fn subterm_type_b_extends_grammar_and_wraps() {
        let p = parse_problem(MAX3_QM).unwrap();
        let divisions = divider().divide(&p);
        let d = divisions
            .iter()
            .find(|d| {
                d.strategy == "subterm"
                    && d.type_a.constraints[0]
                        .to_string()
                        .contains("(ite (>= y z) y z)")
            })
            .expect("inner ite proposal");
        // Pretend Type-A was solved with the paper's aux: p1 + qm(p2-p1, 0).
        let (p1, s1) = d.type_a.synth_fun.params[0];
        let (p2, s2) = d.type_a.synth_fun.params[1];
        let a_sol = Term::app(
            Op::Add,
            vec![
                Term::var(p1, s1),
                Term::apply(
                    "qm",
                    Sort::Int,
                    vec![
                        Term::app(Op::Sub, vec![Term::var(p2, s2), Term::var(p1, s1)]),
                        Term::int(0),
                    ],
                ),
            ],
        );
        match d.type_b(&p, &a_sol) {
            TypeBOutcome::Subproblem { problem, wrap } => {
                // The extended grammar admits aux applications.
                let TypeBRecipe::Subterm { aux, .. } = &d.recipe else {
                    panic!("wrong recipe");
                };
                let aux_app = Term::apply(
                    *aux,
                    Sort::Int,
                    vec![Term::int_var("x"), Term::int_var("y")],
                );
                assert!(problem.synth_fun.grammar.generates(&aux_app));
                // Wrapping inlines aux back into the base grammar.
                let wrapped = wrap(aux_app);
                assert!(!wrapped.applies(*aux));
            }
            TypeBOutcome::Solved(_) => panic!("subterm type-B is a subproblem"),
        }
    }

    #[test]
    fn weaker_spec_divisions_for_invariants() {
        let p = parse_problem(
            r#"
            (set-logic LIA)
            (synth-inv inv ((x Int)))
            (define-fun pre ((x Int)) Bool (= x 0))
            (define-fun trans ((x Int) (x! Int)) Bool (= x! (+ x 1)))
            (define-fun post ((x Int)) Bool (>= x 0))
            (inv-constraint inv pre trans post)
            (check-synth)
        "#,
        )
        .unwrap();
        let divisions = divider().divide(&p);
        let tags: Vec<&str> = divisions.iter().map(|d| d.strategy).collect();
        assert!(tags.contains(&"weaker-spec-and"), "{tags:?}");
        assert!(tags.contains(&"weaker-spec-or"), "{tags:?}");
        // Each Type-A drops exactly one constraint.
        for d in divisions
            .iter()
            .filter(|d| d.strategy.starts_with("weaker"))
        {
            assert_eq!(d.type_a.constraints.len(), 2);
        }
    }

    #[test]
    fn weaker_spec_type_b_combines() {
        let p = parse_problem(
            r#"
            (set-logic LIA)
            (synth-inv inv ((x Int)))
            (define-fun pre ((x Int)) Bool (= x 0))
            (define-fun trans ((x Int) (x! Int)) Bool (= x! (+ x 1)))
            (define-fun post ((x Int)) Bool (>= x 0))
            (inv-constraint inv pre trans post)
            (check-synth)
        "#,
        )
        .unwrap();
        let divisions = divider().divide(&p);
        let d = divisions
            .iter()
            .find(|d| d.strategy == "weaker-spec-and")
            .expect("and-split exists");
        let a_sol = Term::ge(Term::int_var("x"), Term::int(0));
        match d.type_b(&p, &a_sol) {
            TypeBOutcome::Subproblem { problem, wrap } => {
                assert_ne!(problem.synth_fun.name, p.synth_fun.name);
                let q = Term::tt();
                let combined = wrap(q);
                // P ∧ true = P.
                assert_eq!(combined, a_sol);
                // And it is a genuine solution of the original problem.
                assert!(verify_solution(&p, &combined, None));
            }
            TypeBOutcome::Solved(_) => panic!("weaker-spec type-B is a subproblem"),
        }
    }

    #[test]
    fn polarity_classification() {
        let f = Symbol::new("pol_f");
        let app = Term::apply(f, Sort::Bool, vec![Term::int_var("x")]);
        let pre = Term::or([Term::lt(Term::int_var("x"), Term::int(0)), app.clone()]);
        assert!(matches!(polarity(f, &pre), Some(Polarity::Positive)));
        let post = Term::or([
            Term::not(app.clone()),
            Term::ge(Term::int_var("x"), Term::int(0)),
        ]);
        assert!(matches!(polarity(f, &post), Some(Polarity::Negative)));
        let mixed = Term::or([Term::not(app.clone()), app.clone()]);
        assert!(polarity(f, &mixed).is_none());
    }

    #[test]
    fn no_subterm_division_for_constraint_specs() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun max2 ((x Int) (y Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint (>= (max2 x y) x))(constraint (>= (max2 x y) y))\
             (constraint (or (= (max2 x y) x) (= (max2 x y) y)))(check-synth)",
        )
        .unwrap();
        let divisions = divider().divide(&p);
        assert!(divisions.iter().all(|d| d.strategy != "subterm"));
    }

    #[test]
    fn restrict_grammar_keeps_structure() {
        let p = parse_problem(MAX3_QM).unwrap();
        let y = Symbol::new("y");
        let g = restrict_grammar(&p.synth_fun.grammar, &[(y, Sort::Int)]);
        assert!(g.generates(&Term::int_var("y")));
        assert!(!g.generates(&Term::int_var("x")));
        assert!(g.generates(&Term::apply(
            "qm",
            Sort::Int,
            vec![Term::int_var("y"), Term::int(0)]
        )));
    }
}
