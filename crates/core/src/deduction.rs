//! The deductive component (Section 6, Algorithm 3): a set of rewrite rules
//! that simplify the specification to fixpoint and, when it collapses to a
//! reference implementation inside the grammar, solve the problem outright.
//!
//! Implemented rules (Figures 7 and 8):
//! * general: `IntEq`, `IntNeq`, `BoolPos`, `BoolNeg`, `RemoveVar`
//!   (syntactic), `RemoveArg`, `Match`;
//! * GCLIA: `GeMax`, `LeMin`, `GeMin`, `LeMax`, `Eq`, `NotEq`, `CNF`
//!   factoring, plus equality-distribution so Figure 9's rewriting sequence
//!   goes through;
//! * bookkeeping: dropping theory-valid f-free conjuncts (discharged by the
//!   SMT substrate) and detecting unsatisfiable specs.

use smtkit::{SmtConfig, SmtSolver, Validity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use sygus_ast::runtime::Budget;
use sygus_ast::{
    conjuncts, disjuncts, nnf, simplify, FuncDef, Op, Problem, Sort, Symbol, Term, TermNode,
};

/// Outcome of a deduction pass.
#[derive(Clone)]
// Short-lived return value, never stored in bulk; boxing the large variant
// would churn every match site for no measurable win.
#[allow(clippy::large_enum_variant)]
pub enum DeductOutcome {
    /// The problem is completely solved: a verified body over the
    /// parameters.
    Solved(Term),
    /// The spec was simplified (possibly with a changed target function);
    /// `wrap` recovers the original solution from the simplified one.
    Simplified(Deduced),
    /// The specification is unsatisfiable — no implementation exists.
    Unsolvable,
    /// No rule applied.
    Unchanged,
}

/// A simplified problem plus the recombination wrapper.
#[derive(Clone)]
pub struct Deduced {
    /// The simplified problem.
    pub problem: Problem,
    /// Maps a solution body of the simplified problem back to a solution
    /// body of the original problem.
    pub wrap: std::sync::Arc<dyn Fn(Term) -> Term + Send + Sync>,
}

impl std::fmt::Debug for DeductOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeductOutcome::Solved(t) => write!(f, "Solved({t})"),
            DeductOutcome::Simplified(d) => write!(f, "Simplified({})", d.problem.spec()),
            DeductOutcome::Unsolvable => write!(f, "Unsolvable"),
            DeductOutcome::Unchanged => write!(f, "Unchanged"),
        }
    }
}

/// Configuration for the deductive engine.
#[derive(Clone, Debug, Default)]
pub struct DeductionConfig {
    /// Shared resource governor for the rewrite loop and the embedded SMT
    /// side-condition checks.
    pub budget: Budget,
}

/// The deductive synthesis engine (`deduct` in Algorithm 1).
#[derive(Clone, Debug, Default)]
pub struct DeductiveEngine {
    config: DeductionConfig,
}

/// A conjunct-level view of a comparison against one application site of
/// the target function: `f(args) rel rhs` with `rhs` f-free.
#[derive(Clone, Debug)]
struct FBound {
    app: Term,
    rel: Op, // Ge | Le | Eq
    rhs: Term,
}

impl DeductiveEngine {
    /// Creates the engine.
    pub fn new(config: DeductionConfig) -> DeductiveEngine {
        DeductiveEngine { config }
    }

    fn smt(&self) -> SmtSolver {
        SmtSolver::with_config(SmtConfig {
            budget: self.config.budget.clone(),
            ..SmtConfig::default()
        })
    }

    /// Whether an f-free formula is T-valid (errors count as "don't know").
    fn valid(&self, t: &Term) -> bool {
        matches!(self.smt().check_valid(t), Ok(Validity::Valid))
    }

    /// Algorithm 3: simplify the spec to fixpoint, then report.
    pub fn deduct(&self, problem: &Problem) -> DeductOutcome {
        self.config.budget.tracer().metrics().bump("deduct.passes");
        let f = problem.synth_fun.name;
        let mut cs: Vec<Term> = Vec::new();
        for c in &problem.constraints {
            let inlined = c.inline_defs(&problem.definitions);
            cs.extend(conjuncts(&nnf(&simplify(&inlined))));
        }
        let mut changed_any = false;
        for _round in 0..32 {
            if self.config.budget.charge_fuel(1).is_err() {
                break;
            }
            let mut changed = false;
            changed |= cnf_factor(f, &mut cs);
            changed |= distribute_equalities(f, &mut cs);
            changed |= self.merge_conjunction_bounds(f, &mut cs);
            changed |= self.merge_disjunction_bounds(f, &mut cs);
            changed |= self.eq_rule(f, &mut cs);
            changed |= self.noteq_rule(f, &mut cs);
            changed |= self.substitute_definitions(f, &mut cs);
            changed |= self.intneq_rule(f, &mut cs);
            match self.drop_valid(f, &mut cs) {
                Ok(c) => changed |= c,
                Err(()) => return DeductOutcome::Unsolvable,
            }
            if !changed {
                break;
            }
            changed_any = true;
        }
        // Try to read off a solution.
        if let Some(body) = self.extract_solution(problem, &cs) {
            return DeductOutcome::Solved(body);
        }
        // Structure-changing rules (new target function).
        if let Some(out) = self.bool_abs_rule(problem, &cs) {
            return out;
        }
        if let Some(out) = self.remove_arg_rule(problem, &cs) {
            return out;
        }
        if changed_any {
            let mut p = problem.clone();
            p.constraints = cs;
            // Drop declared variables no longer mentioned (RemoveVar).
            let mut used: BTreeSet<Symbol> = BTreeSet::new();
            for c in &p.constraints {
                for (v, _) in c.free_vars() {
                    used.insert(v);
                }
            }
            p.declared_vars.retain(|(v, _)| used.contains(v));
            let d = Deduced {
                problem: p,
                wrap: std::sync::Arc::new(|t| t),
            };
            DeductOutcome::Simplified(d)
        } else {
            DeductOutcome::Unchanged
        }
    }

    /// GeMax / LeMin: merge same-direction bounds on the same application.
    fn merge_conjunction_bounds(&self, f: Symbol, cs: &mut Vec<Term>) -> bool {
        let mut changed = false;
        loop {
            let mut merged = false;
            'outer: for i in 0..cs.len() {
                let Some(a) = as_f_bound(f, &cs[i]) else {
                    continue;
                };
                for j in (i + 1)..cs.len() {
                    let Some(b) = as_f_bound(f, &cs[j]) else {
                        continue;
                    };
                    if a.app != b.app || a.rel != b.rel {
                        continue;
                    }
                    let combined = match a.rel {
                        // f ≥ e1 ∧ f ≥ e2 ⇒ f ≥ max(e1, e2)
                        Op::Ge => Term::ge(
                            a.app.clone(),
                            Term::ite(
                                Term::ge(a.rhs.clone(), b.rhs.clone()),
                                a.rhs.clone(),
                                b.rhs.clone(),
                            ),
                        ),
                        // f ≤ e1 ∧ f ≤ e2 ⇒ f ≤ min(e1, e2)
                        Op::Le => Term::le(
                            a.app.clone(),
                            Term::ite(
                                Term::ge(a.rhs.clone(), b.rhs.clone()),
                                b.rhs.clone(),
                                a.rhs.clone(),
                            ),
                        ),
                        _ => continue,
                    };
                    cs[i] = combined;
                    cs.remove(j);
                    merged = true;
                    changed = true;
                    break 'outer;
                }
            }
            if !merged {
                return changed;
            }
        }
    }

    /// GeMin / LeMax: a disjunction whose disjuncts all bound the same
    /// application in the same direction collapses.
    fn merge_disjunction_bounds(&self, f: Symbol, cs: &mut [Term]) -> bool {
        let mut changed = false;
        for c in cs.iter_mut() {
            let ds = disjuncts(c);
            if ds.len() < 2 {
                continue;
            }
            let bounds: Option<Vec<FBound>> = ds.iter().map(|d| as_f_bound(f, d)).collect();
            let Some(bounds) = bounds else { continue };
            let app = bounds[0].app.clone();
            let rel = bounds[0].rel;
            if !(rel == Op::Ge || rel == Op::Le)
                || bounds.iter().any(|b| b.app != app || b.rel != rel)
            {
                continue;
            }
            // f ≥ e1 ∨ f ≥ e2 ⇒ f ≥ min(e1, e2);  dual for ≤ with max.
            let mut acc = bounds[0].rhs.clone();
            for b in &bounds[1..] {
                let cond = Term::ge(acc.clone(), b.rhs.clone());
                acc = match rel {
                    Op::Ge => Term::ite(cond, b.rhs.clone(), acc),
                    _ => Term::ite(cond, acc, b.rhs.clone()),
                };
            }
            *c = match rel {
                Op::Ge => Term::ge(app.clone(), acc),
                _ => Term::le(app.clone(), acc),
            };
            changed = true;
        }
        changed
    }

    /// Eq: `f ≥ e1 ∧ f ≤ e2` with `T ⊨ e1 = e2` becomes `f = e1`.
    fn eq_rule(&self, f: Symbol, cs: &mut Vec<Term>) -> bool {
        for i in 0..cs.len() {
            let Some(a) = as_f_bound(f, &cs[i]) else {
                continue;
            };
            if a.rel != Op::Ge {
                continue;
            }
            for j in 0..cs.len() {
                if i == j {
                    continue;
                }
                let Some(b) = as_f_bound(f, &cs[j]) else {
                    continue;
                };
                if b.rel != Op::Le || a.app != b.app {
                    continue;
                }
                if a.rhs == b.rhs || self.valid(&Term::eq(a.rhs.clone(), b.rhs.clone())) {
                    cs[i] = Term::eq(a.app.clone(), a.rhs.clone());
                    cs.remove(j);
                    return true;
                }
            }
        }
        false
    }

    /// IntEq: a defining conjunct `f(y) = e` (with `y` distinct variables
    /// covering `e`) substitutes into every other conjunct.
    fn substitute_definitions(&self, f: Symbol, cs: &mut [Term]) -> bool {
        let mut changed = false;
        for i in 0..cs.len() {
            let Some(b) = as_f_bound(f, &cs[i]) else {
                continue;
            };
            if b.rel != Op::Eq {
                continue;
            }
            let Some(def) = invertible_definition(f, &b.app, &b.rhs) else {
                continue;
            };
            for (j, cj) in cs.iter_mut().enumerate() {
                if i == j || !cj.applies(f) {
                    continue;
                }
                *cj = simplify(&cj.instantiate_func(f, &def));
                changed = true;
            }
        }
        changed
    }

    /// NotEq: a disjunction `f ≥ e1 ∨ f ≤ e2` with `T ⊨ e1 = e2 + 2`
    /// collapses to the single literal `f ≠ e1 − 1` (Figure 8).
    fn noteq_rule(&self, f: Symbol, cs: &mut [Term]) -> bool {
        for c in cs.iter_mut() {
            let ds = disjuncts(c);
            if ds.len() != 2 {
                continue;
            }
            let (Some(a), Some(b)) = (as_f_bound(f, &ds[0]), as_f_bound(f, &ds[1])) else {
                continue;
            };
            let (ge, le) = match (a.rel, b.rel) {
                (Op::Ge, Op::Le) => (&a, &b),
                (Op::Le, Op::Ge) => (&b, &a),
                _ => continue,
            };
            if ge.app != le.app {
                continue;
            }
            // T ⊨ e1 = e2 + 2, i.e. the two bounds leave exactly one gap.
            let gap = Term::eq(ge.rhs.clone(), Term::add(le.rhs.clone(), Term::int(2)));
            if self.valid(&gap) {
                let hole = Term::sub(ge.rhs.clone(), Term::int(1));
                *c = Term::not(Term::eq(ge.app.clone(), simplify(&hole)));
                return true;
            }
        }
        false
    }

    /// IntNeq: inside a disjunctive conjunct `f(y) ≠ e ∨ Ψ`, the remaining
    /// disjuncts may assume `f = λy.e` (Figure 7).
    fn intneq_rule(&self, f: Symbol, cs: &mut [Term]) -> bool {
        let mut changed = false;
        for c in cs.iter_mut() {
            let ds = disjuncts(c);
            if ds.len() < 2 {
                continue;
            }
            // Find a disequality literal on an invertible application.
            let mut def = None;
            let mut neq_idx = None;
            for (i, d) in ds.iter().enumerate() {
                let TermNode::App(Op::Not, args) = d.node() else {
                    continue;
                };
                let Some(b) = as_f_bound(f, &args[0]) else {
                    continue;
                };
                if b.rel != Op::Eq {
                    continue;
                }
                if let Some(fd) = invertible_definition(f, &b.app, &b.rhs) {
                    def = Some(fd);
                    neq_idx = Some(i);
                    break;
                }
            }
            let (Some(def), Some(neq_idx)) = (def, neq_idx) else {
                continue;
            };
            let mut new_ds = Vec::with_capacity(ds.len());
            let mut local_change = false;
            for (i, d) in ds.iter().enumerate() {
                if i == neq_idx || !d.applies(f) {
                    new_ds.push(d.clone());
                } else {
                    let substituted = simplify(&d.instantiate_func(f, &def));
                    local_change |= substituted != *d;
                    new_ds.push(substituted);
                }
            }
            if local_change {
                *c = Term::or(new_ds);
                changed = true;
            }
        }
        changed
    }

    /// Drops f-free conjuncts that are T-valid; an f-free conjunct that is
    /// unsatisfiable makes the whole spec unsolvable.
    fn drop_valid(&self, f: Symbol, cs: &mut Vec<Term>) -> Result<bool, ()> {
        let mut changed = false;
        let mut i = 0;
        while i < cs.len() {
            if cs[i].applies(f) {
                i += 1;
                continue;
            }
            match self.smt().check_valid(&cs[i]) {
                Ok(Validity::Valid) => {
                    cs.remove(i);
                    changed = true;
                }
                _ => {
                    // Not valid: if unsatisfiable, the spec is dead.
                    if matches!(self.smt().check(&cs[i]), Ok(smtkit::SmtResult::Unsat)) {
                        return Err(());
                    }
                    i += 1;
                }
            }
        }
        Ok(changed)
    }

    /// IsSolution: the spec collapsed to a single defining equation whose
    /// right-hand side is (rewritable into) a grammar member.
    fn extract_solution(&self, problem: &Problem, cs: &[Term]) -> Option<Term> {
        let f = problem.synth_fun.name;
        if cs.len() != 1 {
            return None;
        }
        let b = as_f_bound(f, &cs[0])?;
        if b.rel != Op::Eq {
            return None;
        }
        let def = invertible_definition(f, &b.app, &b.rhs)?;
        // Rename to the synth-fun parameters.
        let body = def.instantiate(&problem.synth_fun.param_terms());
        let body = simplify(&body);
        let final_body = if problem.grammar_admits(&body) {
            body
        } else {
            match_into_grammar(problem, &body)?
        };
        // Belt and braces: verify before claiming a solution.
        let formula = problem.verification_formula(&final_body);
        match self.smt().check_valid(&formula) {
            Ok(Validity::Valid) => Some(final_body),
            _ => None,
        }
    }

    /// BoolPos / BoolNeg for predicate targets: a conjunct `f(y) ∨ Φ` (or
    /// `¬f(y) ∨ Φ`) with f-free `Φ` is absorbed into the target.
    ///
    /// Not applied to invariant problems: absorbing `pre → inv` would
    /// destroy the three-part structure that weaker-spec division exploits
    /// (and produce boolean bodies far outside the useful search space).
    fn bool_abs_rule(&self, problem: &Problem, cs: &[Term]) -> Option<DeductOutcome> {
        let f = problem.synth_fun.name;
        if problem.synth_fun.ret != Sort::Bool || problem.inv.is_some() {
            return None;
        }
        if problem.synth_fun.grammar.flavor() != sygus_ast::GrammarFlavor::Clia {
            // The absorbed body `¬Φ ∨ g` is generally outside custom
            // grammars.
            return None;
        }
        for (i, c) in cs.iter().enumerate() {
            let ds = disjuncts(c);
            if ds.len() < 2 {
                continue;
            }
            // Find the single f-literal; the rest must be f-free.
            let mut f_lit: Option<(bool, &Term)> = None; // (negated, application)
            let mut rest: Vec<Term> = Vec::new();
            let mut ok = true;
            for d in &ds {
                if let Some(app) = as_f_application(f, d) {
                    if f_lit.is_some() {
                        ok = false;
                        break;
                    }
                    f_lit = Some((false, app));
                } else if let TermNode::App(Op::Not, args) = d.node() {
                    if let Some(app) = as_f_application(f, &args[0]) {
                        if f_lit.is_some() {
                            ok = false;
                            break;
                        }
                        f_lit = Some((true, app));
                        continue;
                    }
                    if args[0].applies(f) {
                        ok = false;
                        break;
                    }
                    rest.push(d.clone());
                } else if d.applies(f) {
                    ok = false;
                    break;
                } else {
                    rest.push(d.clone());
                }
            }
            let Some((negated, app)) = f_lit else {
                continue;
            };
            if !ok || rest.is_empty() {
                continue;
            }
            // The application must be on distinct variables so Φ can be
            // rewritten over the parameters.
            let phi = Term::or(rest);
            let Some(phi_def) = invertible_definition(f, app, &phi) else {
                continue;
            };
            let phi_params = simplify(&phi_def.instantiate(&problem.synth_fun.param_terms()));
            // Remaining spec with f replaced by the absorbed form:
            //   BoolPos: f := λy. ¬Φ ∨ g(y)    (constraint f∨Φ auto-satisfied)
            //   BoolNeg: f := λy. Φ ∧ g(y)     (constraint ¬f∨Φ auto-satisfied)
            let g = Symbol::fresh(&format!("{f}_abs"));
            let g_app = Term::apply(g, Sort::Bool, problem.synth_fun.param_terms());
            let f_body_of = move |gb: Term, phi_params: &Term| -> Term {
                if negated {
                    Term::and([phi_params.clone(), gb])
                } else {
                    Term::or([Term::not(phi_params.clone()), gb])
                }
            };
            let replacement_body = f_body_of(g_app, &phi_params);
            let replacement = FuncDef::new(
                problem.synth_fun.params.clone(),
                Sort::Bool,
                replacement_body,
            );
            let mut new_cs: Vec<Term> = Vec::new();
            for (j, other) in cs.iter().enumerate() {
                if j == i {
                    continue;
                }
                new_cs.push(simplify(&other.instantiate_func(f, &replacement)));
            }
            let mut p = problem.clone();
            p.synth_fun.name = g;
            p.constraints = new_cs;
            let phi_for_wrap = phi_params.clone();
            let d = Deduced {
                problem: p,
                wrap: std::sync::Arc::new(move |gb| {
                    if negated {
                        Term::and([phi_for_wrap.clone(), gb])
                    } else {
                        Term::or([Term::not(phi_for_wrap.clone()), gb])
                    }
                }),
            };
            return Some(DeductOutcome::Simplified(d));
        }
        None
    }

    /// RemoveArg: if the i-th argument of every application is the same
    /// constant, synthesize a function of smaller arity.
    fn remove_arg_rule(&self, problem: &Problem, cs: &[Term]) -> Option<DeductOutcome> {
        let f = problem.synth_fun.name;
        let spec = Term::and(cs.iter().cloned());
        let sites = spec.application_sites(f);
        if sites.is_empty() {
            return None;
        }
        let arity = problem.synth_fun.params.len();
        let drop_idx = (0..arity).find(|&i| {
            let first = sites[0].get(i).and_then(Term::as_int_const);
            first.is_some()
                && sites
                    .iter()
                    .all(|s| s.get(i).and_then(Term::as_int_const) == first)
        })?;
        let g = Symbol::fresh(&format!("{f}_narrow"));
        let mut g_params = problem.synth_fun.params.clone();
        let dropped_param = g_params.remove(drop_idx);
        let ret = problem.synth_fun.ret;
        let new_cs: Vec<Term> = cs
            .iter()
            .map(|c| {
                c.replace_apps(f, &|args| {
                    let mut a = args.to_vec();
                    a.remove(drop_idx);
                    Term::apply(g, ret, a)
                })
            })
            .collect();
        let mut p = problem.clone();
        p.synth_fun = sygus_ast::SynthFun {
            name: g,
            params: g_params,
            ret,
            grammar: problem.synth_fun.grammar.clone(),
        };
        p.constraints = new_cs;
        let _ = dropped_param;
        let d = Deduced {
            problem: p,
            wrap: std::sync::Arc::new(|t| t), // dropped parameter is unused
        };
        Some(DeductOutcome::Simplified(d))
    }
}

/// Views a conjunct as `f(args) ⋈ rhs` with an f-free rhs, normalizing
/// direction and strictness over the integers.
fn as_f_bound(f: Symbol, c: &Term) -> Option<FBound> {
    let (op, args) = c.as_app()?;
    if !op.is_comparison() {
        return None;
    }
    let (app, rhs, rel) = if as_f_application(f, &args[0]).is_some() {
        (args[0].clone(), args[1].clone(), *op)
    } else if as_f_application(f, &args[1]).is_some() {
        let flipped = match op {
            Op::Ge => Op::Le,
            Op::Le => Op::Ge,
            Op::Gt => Op::Lt,
            Op::Lt => Op::Gt,
            other => *other,
        };
        (args[1].clone(), args[0].clone(), flipped)
    } else {
        return None;
    };
    if rhs.applies(f) {
        return None;
    }
    // Strict to non-strict over Z.
    let (rel, rhs) = match rel {
        Op::Gt => (Op::Ge, Term::add(rhs, Term::int(1))),
        Op::Lt => (Op::Le, Term::sub(rhs, Term::int(1))),
        other => (other, rhs),
    };
    Some(FBound { app, rel, rhs })
}

/// The application term itself, if `t` is exactly `f(…)`.
fn as_f_application(f: Symbol, t: &Term) -> Option<&Term> {
    match t.node() {
        TermNode::App(Op::Apply(g, _), _) if *g == f => Some(t),
        _ => None,
    }
}

/// Builds `λ args . rhs` when the application's arguments are distinct
/// variables covering the free variables of `rhs`.
fn invertible_definition(f: Symbol, app: &Term, rhs: &Term) -> Option<FuncDef> {
    let (op, args) = app.as_app()?;
    let Op::Apply(g, ret) = op else { return None };
    if *g != f || rhs.applies(f) {
        return None;
    }
    let mut params: Vec<(Symbol, Sort)> = Vec::new();
    let mut seen = BTreeSet::new();
    for a in args {
        match a.node() {
            TermNode::Var(v, s) if seen.insert(*v) => params.push((*v, *s)),
            _ => return None,
        }
    }
    let fv = rhs.free_vars();
    if !fv.keys().all(|v| seen.contains(v)) {
        return None;
    }
    Some(FuncDef::new(params, *ret, rhs.clone()))
}

/// CNF factoring: `(Φ ∨ Ψ1) ∧ (Φ ∨ Ψ2)  ⇒  Φ ∨ (Ψ1 ∧ Ψ2)` where `Φ` is the
/// set of shared disjuncts — applied only when `f` does not occur in the
/// remainders `Ψ1, Ψ2` (the side condition of Figure 8; without it the rule
/// would merge an invariant's inductiveness and postcondition constraints
/// into one opaque blob and defeat weaker-spec division).
fn cnf_factor(f: Symbol, cs: &mut Vec<Term>) -> bool {
    for i in 0..cs.len() {
        let di: BTreeSet<Term> = disjuncts(&cs[i]).into_iter().collect();
        if di.len() < 2 {
            continue;
        }
        for j in (i + 1)..cs.len() {
            let dj: BTreeSet<Term> = disjuncts(&cs[j]).into_iter().collect();
            if dj.len() < 2 {
                continue;
            }
            let shared: Vec<Term> = di.intersection(&dj).cloned().collect();
            if shared.is_empty() {
                continue;
            }
            let rest_i = Term::or(di.difference(&dj).cloned());
            let rest_j = Term::or(dj.difference(&di).cloned());
            if rest_i.applies(f) || rest_j.applies(f) {
                continue;
            }
            let mut parts = shared;
            parts.push(Term::and([rest_i, rest_j]));
            cs[i] = Term::or(parts);
            cs.remove(j);
            return true;
        }
    }
    false
}

/// Distributes a disjunction of equalities on the same application into the
/// CNF of one-sided bounds (Figure 9's first step):
/// `f=e1 ∨ … ∨ f=en  ⇒  ∧ over choices of {≥,≤} of (f⋈e1 ∨ … ∨ f⋈en)`.
fn distribute_equalities(f: Symbol, cs: &mut Vec<Term>) -> bool {
    for i in 0..cs.len() {
        let ds = disjuncts(&cs[i]);
        // 2^n conjuncts come out of the distribution; 8 disjuncts (256
        // conjuncts) is where the fixpoint loop still finishes comfortably.
        if !(2..=8).contains(&ds.len()) {
            continue;
        }
        let bounds: Option<Vec<FBound>> = ds.iter().map(|d| as_f_bound(f, d)).collect();
        let Some(bounds) = bounds else { continue };
        let app = bounds[0].app.clone();
        if bounds.iter().any(|b| b.app != app || b.rel != Op::Eq) {
            continue;
        }
        // 2^n sign choices.
        let n = bounds.len();
        let mut new_conjuncts: Vec<Term> = Vec::new();
        for mask in 0..(1u32 << n) {
            let lits: Vec<Term> = bounds
                .iter()
                .enumerate()
                .map(|(k, b)| {
                    if mask >> k & 1 == 0 {
                        Term::ge(app.clone(), b.rhs.clone())
                    } else {
                        Term::le(app.clone(), b.rhs.clone())
                    }
                })
                .collect();
            new_conjuncts.push(Term::or(lits));
        }
        cs.remove(i);
        cs.extend(new_conjuncts);
        return true;
    }
    false
}

/// Rewrites n-ary `+`/`and`/`or` nodes into balanced binary trees (the
/// smart constructors flatten them, but grammars and definition patterns
/// are binary).
fn binarize_balanced(t: &Term) -> Term {
    match t.node() {
        TermNode::App(op, args) => {
            let new_args: Vec<Term> = args.iter().map(binarize_balanced).collect();
            match op {
                Op::Add | Op::And | Op::Or if new_args.len() > 2 => {
                    fn build(op: Op, parts: &[Term]) -> Term {
                        match parts {
                            [one] => one.clone(),
                            _ => {
                                let mid = parts.len() / 2;
                                Term::app(
                                    op,
                                    vec![build(op, &parts[..mid]), build(op, &parts[mid..])],
                                )
                            }
                        }
                    }
                    build(*op, &new_args)
                }
                _ => Term::app(*op, new_args),
            }
        }
        _ => t.clone(),
    }
}

/// Left-nested variant of [`binarize_balanced`].
fn binarize_left(t: &Term) -> Term {
    match t.node() {
        TermNode::App(op, args) => {
            let new_args: Vec<Term> = args.iter().map(binarize_left).collect();
            match op {
                Op::Add | Op::And | Op::Or if new_args.len() > 2 => {
                    let mut it = new_args.into_iter();
                    let first = it.next().expect("nonempty");
                    it.fold(first, |acc, x| Term::app(*op, vec![acc, x]))
                }
                _ => Term::app(*op, new_args),
            }
        }
        _ => t.clone(),
    }
}

/// Match rule: rewrite `body` using the interpreted-function definitions
/// until it becomes a member of the problem grammar (bounded search).
///
/// Seeds the search with several binarizations of the (flattened) body so
/// binary grammar productions and definition patterns can fire.
pub fn match_into_grammar(problem: &Problem, body: &Term) -> Option<Term> {
    let seeds = [body.clone(), binarize_balanced(body), binarize_left(body)];
    for s in &seeds {
        if problem.grammar_admits(s) {
            return Some(s.clone());
        }
    }
    let defs: Vec<(Symbol, FuncDef)> = problem
        .definitions
        .iter()
        .map(|(n, d)| (n, d.clone()))
        .collect();
    if defs.is_empty() {
        return None;
    }
    let mut queue: VecDeque<Term> = VecDeque::new();
    let mut visited: BTreeSet<Term> = BTreeSet::new();
    for s in seeds {
        if visited.insert(s.clone()) {
            queue.push_back(s);
        }
    }
    let mut steps = 0;
    while let Some(cur) = queue.pop_front() {
        steps += 1;
        if steps > 600 {
            return None;
        }
        for (name, def) in &defs {
            for sub in cur.subterms() {
                if let Some(binding) = match_pattern(&def.body, &def.params, &sub) {
                    let args: Vec<Term> =
                        def.params.iter().map(|(p, _)| binding[p].clone()).collect();
                    let replacement = Term::apply(*name, def.ret, args);
                    let next = cur.replace_term(&sub, &replacement);
                    if visited.insert(next.clone()) {
                        if problem.grammar_admits(&next) {
                            return Some(next);
                        }
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    None
}

/// Syntactic matching of a definition body (parameters are pattern
/// variables) against a subject term.
fn match_pattern(
    pattern: &Term,
    params: &[(Symbol, Sort)],
    subject: &Term,
) -> Option<BTreeMap<Symbol, Term>> {
    fn go(
        pat: &Term,
        subject: &Term,
        params: &BTreeSet<Symbol>,
        binding: &mut BTreeMap<Symbol, Term>,
    ) -> bool {
        match pat.node() {
            TermNode::Var(v, _) if params.contains(v) => match binding.get(v) {
                Some(bound) => bound == subject,
                None => {
                    binding.insert(*v, subject.clone());
                    true
                }
            },
            TermNode::App(op, args) => match subject.node() {
                TermNode::App(sop, sargs) if sop == op && sargs.len() == args.len() => args
                    .iter()
                    .zip(sargs)
                    .all(|(p, s)| go(p, s, params, binding)),
                _ => false,
            },
            _ => pat == subject,
        }
    }
    let param_set: BTreeSet<Symbol> = params.iter().map(|&(p, _)| p).collect();
    let mut binding = BTreeMap::new();
    if go(pattern, subject, &param_set, &mut binding)
        && params.iter().all(|(p, _)| binding.contains_key(p))
    {
        Some(binding)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtkit::Validity;
    use sygus_parser::parse_problem;

    fn engine() -> DeductiveEngine {
        DeductiveEngine::new(DeductionConfig::default())
    }

    fn assert_deduces(src: &str) -> Term {
        let p = parse_problem(src).unwrap();
        match engine().deduct(&p) {
            DeductOutcome::Solved(t) => {
                let formula = p.verification_formula(&t);
                assert_eq!(
                    SmtSolver::new().check_valid(&formula),
                    Ok(Validity::Valid),
                    "deduced solution {t} fails verification"
                );
                t
            }
            other => panic!("expected Solved, got {other:?}"),
        }
    }

    #[test]
    fn int_eq_direct_definition() {
        let t = assert_deduces(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var a Int)\
             (constraint (= (f a) (+ a 2)))(check-synth)",
        );
        assert_eq!(t.to_string(), "(+ x 2)");
    }

    #[test]
    fn max2_from_bounds_figure9_style() {
        // The Example 6.1 pipeline on the standard max2 spec.
        let t = assert_deduces(
            "(set-logic LIA)(synth-fun max2 ((x Int) (y Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint (>= (max2 x y) x))(constraint (>= (max2 x y) y))\
             (constraint (or (= (max2 x y) x) (= (max2 x y) y)))(check-synth)",
        );
        assert!(t.to_string().contains("ite"), "{t}");
    }

    #[test]
    fn max3_deduced() {
        let t = assert_deduces(
            "(set-logic LIA)(synth-fun max3 ((x Int) (y Int) (z Int)) Int)\
             (declare-var x Int)(declare-var y Int)(declare-var z Int)\
             (constraint (>= (max3 x y z) x))(constraint (>= (max3 x y z) y))\
             (constraint (>= (max3 x y z) z))\
             (constraint (or (= (max3 x y z) x) (or (= (max3 x y z) y) (= (max3 x y z) z))))\
             (check-synth)",
        );
        assert!(t.height() >= 3, "{t}");
    }

    #[test]
    fn match_rule_double() {
        // Example from Section 6: x+x+x+x with only double in the grammar.
        let t = assert_deduces(
            "(set-logic LIA)\
             (define-fun double ((a Int)) Int (+ a a))\
             (synth-fun f ((x Int)) Int ((S Int (x (double S)))))\
             (declare-var x Int)\
             (constraint (= (f x) (+ (+ x x) (+ x x))))(check-synth)",
        );
        assert_eq!(t.to_string(), "(double (double x))");
    }

    #[test]
    fn min2_via_le_bounds() {
        let t = assert_deduces(
            "(set-logic LIA)(synth-fun min2 ((x Int) (y Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint (<= (min2 x y) x))(constraint (<= (min2 x y) y))\
             (constraint (or (= (min2 x y) x) (= (min2 x y) y)))(check-synth)",
        );
        assert!(t.to_string().contains("ite"), "{t}");
    }

    #[test]
    fn flipped_comparisons_normalized() {
        // Same spec with f on the right-hand side of comparisons.
        let t = assert_deduces(
            "(set-logic LIA)(synth-fun max2 ((x Int) (y Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint (<= x (max2 x y)))(constraint (<= y (max2 x y)))\
             (constraint (or (= (max2 x y) x) (= (max2 x y) y)))(check-synth)",
        );
        assert!(t.to_string().contains("ite"), "{t}");
    }

    #[test]
    fn unsolvable_detected() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var a Int)\
             (constraint (> a a))(check-synth)",
        )
        .unwrap();
        assert!(matches!(engine().deduct(&p), DeductOutcome::Unsolvable));
    }

    #[test]
    fn valid_ffree_conjuncts_dropped() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var a Int)\
             (constraint (>= a a))(constraint (= (f a) a))(check-synth)",
        )
        .unwrap();
        match engine().deduct(&p) {
            DeductOutcome::Solved(t) => assert_eq!(t.to_string(), "x"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unchanged_when_no_rule_applies() {
        // Multi-invocation symmetric spec: none of the rules fire.
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)\
             (declare-var a Int)(declare-var b Int)\
             (constraint (= (f a) (f b)))(check-synth)",
        )
        .unwrap();
        assert!(matches!(engine().deduct(&p), DeductOutcome::Unchanged));
    }

    #[test]
    fn remove_arg_constant_argument() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int) (k Int)) Int)\
             (declare-var a Int)(declare-var b Int)\
             (constraint (= (f a 5) (f b 5)))(check-synth)",
        )
        .unwrap();
        match engine().deduct(&p) {
            DeductOutcome::Simplified(d) => {
                assert_eq!(d.problem.synth_fun.params.len(), 1);
                // Sub-solution "0" wraps to a valid original solution.
                let wrapped = (d.wrap)(Term::int(0));
                let formula = p.verification_formula(&wrapped);
                assert_eq!(SmtSolver::new().check_valid(&formula), Ok(Validity::Valid));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bool_abs_rule_fires() {
        // (p(a) ∨ a < 0) ∧ (¬p(a) ∨ a ≥ 0): BoolPos absorbs the first
        // conjunct; p(x) = (x ≥ 0) is the intended solution.
        let p = parse_problem(
            "(set-logic LIA)(synth-fun p ((x Int)) Bool)(declare-var a Int)\
             (constraint (or (p a) (< a 0)))\
             (constraint (or (not (p a)) (>= a 0)))(check-synth)",
        )
        .unwrap();
        match engine().deduct(&p) {
            DeductOutcome::Simplified(d) => {
                // Simplified problem over a fresh predicate; wrapping any of
                // its solutions must satisfy the original spec.
                assert_ne!(d.problem.synth_fun.name, p.synth_fun.name);
                // g := false solves the simplified problem (the wrap
                // supplies the ¬Φ part); wrapped, it must satisfy the
                // original spec.
                let wrapped = (d.wrap)(Term::ff());
                let formula = p.verification_formula(&wrapped);
                assert_eq!(SmtSolver::new().check_valid(&formula), Ok(Validity::Valid));
            }
            DeductOutcome::Solved(t) => {
                let formula = p.verification_formula(&t);
                assert_eq!(SmtSolver::new().check_valid(&formula), Ok(Validity::Valid));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn match_pattern_basics() {
        let a = Symbol::new("mp_a");
        let pattern = Term::add(Term::var(a, Sort::Int), Term::var(a, Sort::Int));
        let params = vec![(a, Sort::Int)];
        let x = Term::int_var("x");
        let subject = Term::app(Op::Add, vec![x.clone(), x.clone()]);
        let binding = match_pattern(&pattern, &params, &subject).expect("matches");
        assert_eq!(binding[&a], x);
        // Mismatched children fail.
        let bad = Term::app(Op::Add, vec![x.clone(), Term::int(1)]);
        assert!(match_pattern(&pattern, &params, &bad).is_none());
    }

    #[test]
    fn cnf_factoring() {
        let f = Symbol::new("cf_f");
        let x = Term::int_var("cf_x");
        let p = Term::ge(x.clone(), Term::int(0));
        let q = Term::le(x.clone(), Term::int(5));
        let r = Term::eq(x.clone(), Term::int(9));
        let mut cs = vec![
            Term::or([p.clone(), q.clone()]),
            Term::or([p.clone(), r.clone()]),
        ];
        assert!(cnf_factor(f, &mut cs));
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0], Term::or([p.clone(), Term::and([q.clone(), r])]));
        // Side condition: f in a remainder blocks factoring.
        let fr = Term::ge(Term::apply(f, Sort::Int, vec![x.clone()]), Term::int(0));
        let mut cs2 = vec![Term::or([p.clone(), q]), Term::or([p, fr])];
        assert!(!cnf_factor(f, &mut cs2));
        assert_eq!(cs2.len(), 2);
    }
}

#[cfg(test)]
mod extra_rule_tests {
    use super::*;
    use smtkit::Validity;
    use sygus_parser::parse_problem;

    fn engine() -> DeductiveEngine {
        DeductiveEngine::new(DeductionConfig::default())
    }

    #[test]
    fn noteq_rule_collapses_gap_disjunction() {
        let f = Symbol::new("ne_f");
        let app = Term::apply(f, Sort::Int, vec![Term::int_var("a")]);
        // f(a) >= 7 ∨ f(a) <= 5  ⇒  f(a) ≠ 6
        let mut cs = vec![Term::or([
            Term::app(Op::Ge, vec![app.clone(), Term::int(7)]),
            Term::app(Op::Le, vec![app.clone(), Term::int(5)]),
        ])];
        assert!(engine().noteq_rule(f, &mut cs));
        assert_eq!(cs[0].to_string(), format!("(not (= {app} 6))"));
    }

    #[test]
    fn noteq_rule_requires_exact_gap() {
        let f = Symbol::new("ne_g");
        let app = Term::apply(f, Sort::Int, vec![Term::int_var("a")]);
        // Gap of two values: rule must not fire.
        let mut cs = vec![Term::or([
            Term::app(Op::Ge, vec![app.clone(), Term::int(8)]),
            Term::app(Op::Le, vec![app.clone(), Term::int(5)]),
        ])];
        assert!(!engine().noteq_rule(f, &mut cs));
    }

    #[test]
    fn intneq_substitutes_in_sibling_disjuncts() {
        let f = Symbol::new("inq_f");
        let a = Term::int_var("a");
        let app = Term::apply(f, Sort::Int, vec![a.clone()]);
        // f(a) ≠ a ∨ f(a) ≥ a: under the second disjunct f = λa.a, giving
        // a ≥ a ≡ true, so the whole conjunct becomes valid.
        let mut cs = vec![Term::or([
            Term::not(Term::eq(app.clone(), a.clone())),
            Term::app(Op::Ge, vec![app.clone(), a.clone()]),
        ])];
        assert!(engine().intneq_rule(f, &mut cs));
        assert_eq!(cs[0], Term::tt());
    }

    #[test]
    fn full_pipeline_with_noteq_spec() {
        // Solvable spec exercising NotEq + IntEq: f(a) = a constrained via a
        // gap disjunction plus a direct definition.
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var a Int)\
             (constraint (or (>= (f a) (+ a 1)) (<= (f a) (- a 1))))\
             (constraint (= (f a) (+ a 2)))(check-synth)",
        )
        .unwrap();
        match engine().deduct(&p) {
            DeductOutcome::Solved(t) => {
                let formula = p.verification_formula(&t);
                assert_eq!(
                    smtkit::SmtSolver::new().check_valid(&formula),
                    Ok(Validity::Valid)
                );
            }
            // Simplified is acceptable (enumeration finishes it); Unchanged
            // would mean the rules regressed.
            DeductOutcome::Simplified(_) => {}
            other => panic!("{other:?}"),
        }
    }
}
