//! The daemon's fault-isolated scheduler: a bounded worker pool fed by an
//! admission-controlled queue, multiplexing concurrent solve requests with
//! per-request budgets, panic isolation, cancellation, and graceful drain.
//!
//! Lifecycle invariants (the chaos harness asserts these end to end):
//!
//! * **Exactly once** — every admitted solve id receives exactly one
//!   terminal response, whatever mix of panics, cancels, worker deaths,
//!   shed decisions and shutdowns occurs.
//! * **Fault isolation** — an engine panic is contained inside the
//!   worker's `catch_unwind` envelope and answered as `engine_fault`; a
//!   worker thread that dies between requests is respawned by the monitor.
//!   The process never dies for an engine's sins.
//! * **Bounded admission** — the queue has a hard cap; beyond it requests
//!   are shed immediately with `overloaded` plus a `retry_after_ms` hint,
//!   never silently dropped or unboundedly buffered.
//! * **Fair aging** — the queue orders by `arrival + size-penalty`, so
//!   small requests may overtake one large one, but an old large request's
//!   score is eventually lowest: it cannot starve.
//! * **Graceful drain** — shutdown stops admission and lets queued and
//!   in-flight work finish inside the drain deadline; past it, remaining
//!   requests are cancelled through their budgets and still answered.

use crate::daemon::chaos::{Chaos, ChaosConfig};
use crate::daemon::protocol::{
    DrainSummary, LatencyBankStats, LatencyLine, OutcomeResponse, Request, Response, SolveJob,
    StatsLite, StatsReply, DAEMON_VERSION,
};
use crate::runtime::panic_message;
use crate::{
    outcome_label, Budget, DryadSynth, DryadSynthConfig, Engine, SolveRequest, Synthesizer,
    SynthOutcome, Watchdog, WatchdogConfig,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sygus_ast::{interner_stats, EventRing, Json, Tracer};
use sygus_parser::parse_problem;

/// Where one submission's responses go (stdout, a socket, a test channel).
pub type Responder = Arc<dyn Fn(Response) + Send + Sync>;

/// Shared sink for operational diagnostics (heartbeats, stall dumps).
pub type DiagSink = Arc<Mutex<Box<dyn Write + Send>>>;

/// Shared sink for the request audit log (one JSONL record per answered
/// request, flushed line by line so drains and panics keep records).
pub type AuditSink = Arc<Mutex<Box<dyn Write + Send>>>;

/// Flight-recorder depth: each worker keeps this many recent tracer events
/// for post-mortem timelines.
const FLIGHT_RING_CAPACITY: usize = 128;

/// Queue scoring: every `SIZE_PENALTY_UNIT` bytes of request text push a
/// job back by one arrival slot, capped so giants still age to the front.
const SIZE_PENALTY_UNIT: usize = 256;
const MAX_SIZE_PENALTY: u64 = 64;

/// Scheduler tuning; see the field docs for the contract of each knob.
#[derive(Clone)]
pub struct SchedulerConfig {
    /// Worker threads solving concurrently (the pool bound).
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Per-request wall-clock window when the request names none.
    pub default_timeout: Duration,
    /// Hard clamp on client-requested windows.
    pub max_timeout: Duration,
    /// How long a drain lets work finish before cancelling what remains.
    pub drain_deadline: Duration,
    /// Enumeration threads inside each solve (keep `workers ×
    /// threads_per_solve` near the core count).
    pub threads_per_solve: usize,
    /// Per-request watchdog heartbeat interval (`None` = off).
    pub heartbeat: Option<Duration>,
    /// Per-request stall-dump window (`None` = off).
    pub stall_after: Option<Duration>,
    /// Certify every solved answer before reporting it.
    pub certify: bool,
    /// Fault injection for chaos runs (`None` in production).
    pub chaos: Option<ChaosConfig>,
    /// Diagnostics sink; `None` writes to stderr.
    pub diag: Option<DiagSink>,
    /// Request audit log (`--audit`); `None` disables auditing.
    pub audit: Option<AuditSink>,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            workers: 2,
            queue_cap: 64,
            default_timeout: Duration::from_secs(30),
            max_timeout: Duration::from_secs(300),
            drain_deadline: Duration::from_secs(30),
            threads_per_solve: 1,
            heartbeat: None,
            stall_after: None,
            certify: false,
            chaos: None,
            diag: None,
            audit: None,
        }
    }
}

struct QueueEntry {
    score: u64,
    seq: u64,
    job: SolveJob,
    deadline: Instant,
    /// Admission time, for the queue-wait histogram and audit records.
    enqueued: Instant,
    reply: Responder,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &QueueEntry) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &QueueEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &QueueEntry) -> std::cmp::Ordering {
        (self.score, self.seq).cmp(&(other.score, other.seq))
    }
}

struct InFlight {
    budget: Budget,
    cancelled: Arc<AtomicBool>,
}

struct State {
    queue: BinaryHeap<Reverse<QueueEntry>>,
    /// Ids currently queued, with their responders (for immediate
    /// cancel-while-queued replies and duplicate detection).
    queued: HashMap<String, Responder>,
    /// Ids cancelled while queued; their heap entries are skipped on pop.
    tombstones: HashSet<String>,
    in_flight: HashMap<String, InFlight>,
    stopping: bool,
}

struct Inner {
    config: SchedulerConfig,
    state: Mutex<State>,
    ready: Condvar,
    /// Daemon-lifetime budget: unlimited, carrying the daemon-wide metrics
    /// tracer. Every request budget is a child of it, so request fuel and
    /// SMT charges aggregate here and a daemon-wide cancel fans out.
    root: Budget,
    chaos: Option<Chaos>,
    started: Instant,
    seq: AtomicU64,
    worker_seq: AtomicU64,
    accepting: AtomicBool,
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    faulted: AtomicU64,
    cancelled: AtomicU64,
    recycled: AtomicU64,
    diag: DiagSink,
}

/// A running scheduler; see the module docs for its invariants.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    monitor_stop: Arc<AtomicBool>,
    monitor: Mutex<Option<JoinHandle<()>>>,
    drained: AtomicBool,
}

impl Scheduler {
    /// Starts the worker pool and its monitor thread.
    pub fn start(config: SchedulerConfig) -> Scheduler {
        let diag: DiagSink = config
            .diag
            .clone()
            .unwrap_or_else(|| Arc::new(Mutex::new(Box::new(std::io::stderr()))));
        let inner = Arc::new(Inner {
            root: Budget::unlimited().with_tracer(Tracer::metrics_only()),
            chaos: config.chaos.map(Chaos::new),
            state: Mutex::new(State {
                queue: BinaryHeap::new(),
                queued: HashMap::new(),
                tombstones: HashSet::new(),
                in_flight: HashMap::new(),
                stopping: false,
            }),
            ready: Condvar::new(),
            started: Instant::now(),
            seq: AtomicU64::new(0),
            worker_seq: AtomicU64::new(0),
            accepting: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            diag,
            config,
        });
        let workers = Arc::new(Mutex::new(
            (0..inner.config.workers.max(1))
                .map(|_| spawn_worker(&inner))
                .collect::<Vec<_>>(),
        ));
        let monitor_stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let inner = Arc::clone(&inner);
            let workers = Arc::clone(&workers);
            let stop = Arc::clone(&monitor_stop);
            std::thread::Builder::new()
                .name("daemon-monitor".into())
                .spawn(move || monitor_loop(&inner, &workers, &stop))
                // synthlint: allow(panic-surface) — spawn failure at startup is fatal by design; no requests are in flight yet
                .expect("spawn monitor thread")
        };
        Scheduler {
            inner,
            workers,
            monitor_stop,
            monitor: Mutex::new(Some(monitor)),
            drained: AtomicBool::new(false),
        }
    }

    /// Parses and dispatches one protocol line, routing responses through
    /// `reply`. Returns `true` when the line asked for shutdown (the
    /// caller then runs [`Scheduler::drain`]). Blank lines are ignored;
    /// malformed ones are answered with an error response and the
    /// scheduler keeps serving.
    pub fn handle_line(&self, line: &str, reply: &Responder) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        match Request::parse(line) {
            Ok(Request::Solve(job)) => self.submit(job, reply.clone()),
            Ok(Request::Cancel(id)) => self.cancel(&id, reply),
            Ok(Request::Stats) => reply(Response::Stats(self.stats())),
            Ok(Request::Shutdown) => return true,
            Err(message) => {
                // Best effort: surface the id when the line was valid JSON
                // with one, so clients can correlate the rejection.
                let id = Json::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_owned));
                reply(Response::Error { id, message });
            }
        }
        false
    }

    /// Admission control: enqueue the job or shed it, always answering.
    pub fn submit(&self, job: SolveJob, reply: Responder) {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::SeqCst) {
            inner.shed.fetch_add(1, Ordering::Relaxed);
            audit_simple(inner, &job.id, "overloaded", "daemon is draining");
            reply(Response::Outcome(OutcomeResponse {
                id: job.id,
                outcome: "overloaded".into(),
                reason: Some("daemon is draining".into()),
                ..OutcomeResponse::default()
            }));
            return;
        }
        let timeout = job
            .timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(inner.config.default_timeout)
            .min(inner.config.max_timeout);
        let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.queued.contains_key(&job.id) || st.in_flight.contains_key(&job.id) {
            drop(st);
            reply(Response::Error {
                id: Some(job.id),
                message: "duplicate id: a request with this id is still active".into(),
            });
            return;
        }
        if st.queued.len() >= inner.config.queue_cap {
            let depth = st.queued.len();
            drop(st);
            inner.shed.fetch_add(1, Ordering::Relaxed);
            audit_simple(
                inner,
                &job.id,
                "overloaded",
                &format!("queue full ({depth} waiting)"),
            );
            reply(Response::Outcome(OutcomeResponse {
                id: job.id,
                outcome: "overloaded".into(),
                reason: Some(format!("queue full ({depth} waiting)")),
                retry_after_ms: Some(retry_after_hint(
                    depth,
                    inner.config.workers,
                    inner.config.default_timeout,
                )),
                ..OutcomeResponse::default()
            }));
            return;
        }
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let penalty = (job.sygus.len() / SIZE_PENALTY_UNIT) as u64;
        let id = job.id.clone();
        st.queued.insert(id.clone(), reply.clone());
        st.queue.push(Reverse(QueueEntry {
            score: seq + penalty.min(MAX_SIZE_PENALTY),
            seq,
            job,
            deadline: Instant::now() + timeout,
            enqueued: Instant::now(),
            reply,
        }));
        drop(st);
        inner.accepted.fetch_add(1, Ordering::Relaxed);
        inner.ready.notify_one();
        if inner.chaos.as_ref().is_some_and(|c| c.inject_cancel()) {
            // Chaos cancels ride the real cancellation path; the request
            // still gets its one terminal response (as `cancelled`).
            let noop: Responder = Arc::new(|_| {});
            self.cancel(&id, &noop);
        }
    }

    /// Cancels a queued or in-flight request. A queued one is answered
    /// `cancelled` immediately; an in-flight one is interrupted through
    /// its budget and answered by its worker. Unknown ids are reported on
    /// `reply` (the canceller's own connection).
    pub fn cancel(&self, id: &str, reply: &Responder) {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(orig_reply) = st.queued.remove(id) {
            st.tombstones.insert(id.to_owned());
            drop(st);
            inner.cancelled.fetch_add(1, Ordering::Relaxed);
            inner.completed.fetch_add(1, Ordering::Relaxed);
            audit_simple(inner, id, "cancelled", "cancelled while queued");
            orig_reply(Response::Outcome(OutcomeResponse {
                id: id.to_owned(),
                outcome: "cancelled".into(),
                reason: Some("cancelled while queued".into()),
                ..OutcomeResponse::default()
            }));
            return;
        }
        if let Some(inf) = st.in_flight.get(id) {
            inf.cancelled.store(true, Ordering::SeqCst);
            inf.budget.cancel();
            return; // the worker sends the terminal response
        }
        drop(st);
        reply(Response::Error {
            id: Some(id.to_owned()),
            message: "unknown or already completed id".into(),
        });
    }

    /// A point-in-time introspection snapshot. Also refreshes the
    /// `interner.symbols` / `interner.bytes` gauges on the daemon tracer.
    pub fn stats(&self) -> StatsReply {
        let inner = &self.inner;
        let interner = interner_stats();
        let metrics = inner.root.tracer().metrics();
        metrics.set("interner.symbols", interner.symbols as u64);
        metrics.set("interner.bytes", interner.bytes as u64);
        let latencies = metrics
            .snapshot()
            .latencies
            .iter()
            .map(|(name, snap)| LatencyLine {
                name: name.clone(),
                lifetime: LatencyBankStats::from_bank(&snap.lifetime),
                recent: LatencyBankStats::from_bank(&snap.recent),
            })
            .collect();
        let st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        StatsReply {
            queue_depth: st.queued.len() as u64,
            in_flight: st.in_flight.keys().cloned().collect(),
            workers: inner.config.workers.max(1) as u64,
            accepted: inner.accepted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            shed: inner.shed.load(Ordering::Relaxed),
            faulted: inner.faulted.load(Ordering::Relaxed),
            cancelled: inner.cancelled.load(Ordering::Relaxed),
            recycled: inner.recycled.load(Ordering::Relaxed),
            interner_symbols: interner.symbols as u64,
            interner_bytes: interner.bytes as u64,
            uptime_secs: inner.started.elapsed().as_secs(),
            version: DAEMON_VERSION.to_owned(),
            latencies,
        }
    }

    /// Prometheus-text-format exposition of every daemon counter, gauge,
    /// and latency histogram (served by `--metrics-socket`).
    pub fn metrics_text(&self) -> String {
        let stats = self.stats();
        let snapshot = self.inner.root.tracer().metrics().snapshot();
        crate::daemon::expose::render(&stats, &snapshot)
    }

    /// Graceful drain: stop admitting, let queued and in-flight work
    /// finish inside the drain deadline, then cancel what remains (still
    /// answering every id), and summarize. Idempotent; bounded in time.
    pub fn drain(&self) -> DrainSummary {
        let inner = &self.inner;
        inner.accepting.store(false, Ordering::SeqCst);
        if self.drained.swap(true, Ordering::SeqCst) {
            return self.summary(true);
        }
        {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.stopping = true;
        }
        inner.ready.notify_all();
        let deadline = Instant::now() + inner.config.drain_deadline;
        let mut cancelled_late = false;
        let clean = loop {
            let idle = {
                let st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
                st.queue.is_empty() && st.in_flight.is_empty()
            };
            if idle {
                break true;
            }
            if Instant::now() >= deadline {
                if !cancelled_late {
                    cancelled_late = true;
                    self.cancel_remaining();
                    continue; // give workers one grace window to answer
                }
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        // Past-deadline stragglers get half a drain window of grace after
        // their budgets were cancelled; the cooperative engines poll the
        // budget, so this converges unless an engine is truly wedged.
        let clean = clean || {
            let grace = Instant::now() + inner.config.drain_deadline / 2;
            loop {
                let idle = {
                    let st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
                    st.queue.is_empty() && st.in_flight.is_empty()
                };
                if idle {
                    break true;
                }
                if Instant::now() >= grace {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        self.monitor_stop.store(true, Ordering::SeqCst);
        if let Some(m) = self.monitor.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = m.join();
        }
        inner.ready.notify_all();
        let join_by = Instant::now() + Duration::from_secs(2);
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        let mut all_joined = true;
        for handle in workers.drain(..) {
            while !handle.is_finished() && Instant::now() < join_by {
                std::thread::sleep(Duration::from_millis(5));
            }
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                all_joined = false; // leave it detached; the process exits anyway
            }
        }
        self.summary(clean && all_joined)
    }

    /// Flushes still-queued jobs as `cancelled` and cancels every
    /// in-flight budget (the workers answer `cancelled`).
    fn cancel_remaining(&self) {
        let inner = &self.inner;
        let mut flushed = Vec::new();
        {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            while let Some(Reverse(entry)) = st.queue.pop() {
                if st.tombstones.remove(&entry.job.id) {
                    continue; // already answered at cancel time
                }
                st.queued.remove(&entry.job.id);
                flushed.push((entry.job.id, entry.reply));
            }
            for inf in st.in_flight.values() {
                inf.cancelled.store(true, Ordering::SeqCst);
                inf.budget.cancel();
            }
        }
        for (id, reply) in flushed {
            inner.cancelled.fetch_add(1, Ordering::Relaxed);
            inner.completed.fetch_add(1, Ordering::Relaxed);
            audit_simple(inner, &id, "cancelled", "daemon shutting down");
            reply(Response::Outcome(OutcomeResponse {
                id,
                outcome: "cancelled".into(),
                reason: Some("daemon shutting down".into()),
                ..OutcomeResponse::default()
            }));
        }
    }

    fn summary(&self, clean: bool) -> DrainSummary {
        let inner = &self.inner;
        DrainSummary {
            accepted: inner.accepted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            shed: inner.shed.load(Ordering::Relaxed),
            faulted: inner.faulted.load(Ordering::Relaxed),
            cancelled: inner.cancelled.load(Ordering::Relaxed),
            recycled: inner.recycled.load(Ordering::Relaxed),
            uptime_secs: inner.started.elapsed().as_secs(),
            version: DAEMON_VERSION.to_owned(),
            clean,
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        if !self.drained.load(Ordering::SeqCst) {
            let _ = self.drain();
        }
    }
}

/// Shed hint: a rough time for one queue slot to free up.
fn retry_after_hint(depth: usize, workers: usize, default_timeout: Duration) -> u64 {
    let per_slot = default_timeout.as_millis() as u64 / workers.max(1) as u64;
    (per_slot.saturating_mul(depth as u64 + 1)).clamp(50, 60_000)
}

fn spawn_worker(inner: &Arc<Inner>) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name("daemon-worker".into())
        .spawn(move || worker_loop(&inner))
        // synthlint: allow(panic-surface) — a daemon that cannot spawn workers cannot serve; dying loudly beats limping
        .expect("spawn daemon worker")
}

fn worker_loop(inner: &Arc<Inner>) {
    // Ordinals are never reused: a recycled worker gets a fresh one, so
    // audit records distinguish pre- and post-respawn incarnations. The
    // flight ring outlives individual requests by design — a fault dump
    // shows the tail of the previous request too.
    let worker = inner.worker_seq.fetch_add(1, Ordering::Relaxed);
    let ring = Arc::new(EventRing::new(FLIGHT_RING_CAPACITY));
    loop {
        let entry = {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(Reverse(entry)) = st.queue.pop() {
                    if st.tombstones.remove(&entry.job.id) {
                        continue; // cancelled while queued; already answered
                    }
                    st.queued.remove(&entry.job.id);
                    break Some(entry);
                }
                if st.stopping {
                    break None;
                }
                // Timed wait so a missed notification self-heals.
                st = inner
                    .ready
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let Some(entry) = entry else { return };
        run_one(inner, entry, worker, &ring);
        if inner
            .chaos
            .as_ref()
            .is_some_and(|c| c.inject_worker_kill())
        {
            // Die *between* requests: the response above already went out,
            // so recycling can never violate exactly-once.
            return;
        }
    }
}

/// Solves one admitted request and sends its single terminal response.
fn run_one(inner: &Arc<Inner>, entry: QueueEntry, worker: u64, ring: &Arc<EventRing>) {
    let QueueEntry {
        job,
        deadline,
        enqueued,
        reply,
        ..
    } = entry;
    let queue_wait_us = enqueued.elapsed().as_micros() as u64;
    let root_metrics = inner.root.tracer().metrics();
    root_metrics.record_latency("queue_wait", queue_wait_us);
    ring.note(
        "request",
        format!("id={} dequeued after {queue_wait_us}us", job.id),
    );
    let finish = |response: OutcomeResponse,
                  solve_us: Option<u64>,
                  stages: Vec<(String, u64)>,
                  search: Vec<(String, u64)>| {
        inner.completed.fetch_add(1, Ordering::Relaxed);
        ring.note(
            "request",
            format!("id={} outcome={}", response.id, response.outcome),
        );
        audit_finish(
            inner,
            &response,
            queue_wait_us,
            solve_us,
            worker,
            &stages,
            &search,
        );
        reply(Response::Outcome(response));
    };
    if Instant::now() >= deadline {
        finish(
            OutcomeResponse {
                id: job.id,
                outcome: "timeout".into(),
                reason: Some("deadline expired while queued".into()),
                ..OutcomeResponse::default()
            },
            None,
            Vec::new(),
            Vec::new(),
        );
        return;
    }
    let engine = match job.engine.as_deref() {
        None | Some("coop") | Some("cooperative") => Engine::Cooperative,
        Some("enum") | Some("height-enum") => Engine::HeightEnumOnly,
        Some("deduce") | Some("deduction") => Engine::DeductionOnly,
        Some("bottomup") | Some("eusolver-backed") => Engine::BottomUpBacked,
        Some(other) => {
            finish(
                OutcomeResponse {
                    id: job.id,
                    outcome: "error".into(),
                    reason: Some(format!("unknown engine `{other}`")),
                    ..OutcomeResponse::default()
                },
                None,
                Vec::new(),
                Vec::new(),
            );
            return;
        }
    };
    let problem = match parse_problem(&job.sygus) {
        Ok(p) => p,
        Err(e) => {
            finish(
                OutcomeResponse {
                    id: job.id,
                    outcome: "error".into(),
                    reason: Some(format!("parse error: {e}")),
                    ..OutcomeResponse::default()
                },
                None,
                Vec::new(),
                Vec::new(),
            );
            return;
        }
    };
    if let Some(delay) = inner.chaos.as_ref().and_then(|c| c.inject_delay()) {
        std::thread::sleep(delay);
    }
    // Per-request isolation: own tracer (so per-request metrics and stall
    // dumps don't bleed across requests), own deadline, parent-chained
    // cancellation and charge propagation via the daemon root budget. The
    // worker's flight ring rides the tracer so every span close and point
    // leaves a post-mortem trail even in metrics-only mode.
    let profiling = inner.config.stall_after.is_some();
    let tracer = Tracer::with_flight_recorder(profiling, profiling, Arc::clone(ring));
    let budget = inner.root.child_with(Some(deadline), Some(tracer));
    let cancelled = Arc::new(AtomicBool::new(false));
    {
        let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        st.in_flight.insert(
            job.id.clone(),
            InFlight {
                budget: budget.clone(),
                cancelled: Arc::clone(&cancelled),
            },
        );
    }
    let watchdog = if inner.config.heartbeat.is_some() || inner.config.stall_after.is_some() {
        Some(Watchdog::spawn(
            &budget,
            WatchdogConfig::new(inner.config.heartbeat, inner.config.stall_after),
            Box::new(TagSink::new(Arc::clone(&inner.diag), &job.id)),
        ))
    } else {
        None
    };
    let solver = DryadSynth::new(DryadSynthConfig {
        engine,
        threads: inner.config.threads_per_solve.max(1),
        ..DryadSynthConfig::default()
    });
    let mut request = SolveRequest::new(&problem)
        .with_budget(budget.clone())
        .with_source(job.id.clone());
    if inner.config.certify || job.certify {
        request = request.certified(Some(Duration::from_secs(10)));
    }
    let started = Instant::now();
    let chaos_panic = inner.chaos.as_ref().is_some_and(|c| c.inject_panic());
    let result = catch_unwind(AssertUnwindSafe(|| {
        if chaos_panic {
            // synthlint: allow(panic-surface) — deliberate chaos injection, contained by the catch_unwind boundary above
            panic!("chaos: injected worker panic");
        }
        solver.solve(&request)
    }));
    drop(watchdog);
    {
        let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        st.in_flight.remove(&job.id);
    }
    // Wall time and per-stage breakdown feed the daemon-wide histograms
    // whatever the outcome: a faulted request's partial stages are still
    // evidence.
    let solve_us = started.elapsed().as_micros() as u64;
    root_metrics.record_latency("solve_wall", solve_us);
    let request_metrics = budget.tracer().metrics().snapshot();
    let stage_micros: Vec<(String, u64)> = request_metrics
        .stages
        .iter()
        .filter(|s| s.count > 0)
        .map(|s| (s.stage.to_owned(), s.total_micros))
        .collect();
    for (name, micros) in &stage_micros {
        root_metrics.record_latency(&format!("stage.{name}"), *micros);
    }
    // Theory-dispatch and search-analytics counters are per-request (the
    // request has its own tracer); roll them up so the Prometheus
    // exposition sees them. `search.db_clauses` is a gauge — the freshest
    // request overwrites rather than summing.
    for (name, value) in &request_metrics.counters {
        if name == "search.db_clauses" {
            root_metrics.set(name, *value);
        } else if name.starts_with("theory.") || name.starts_with("search.") {
            root_metrics.add(name, *value);
        }
    }
    // Fold the request's LBD distribution into the daemon-lifetime bank so
    // the exposition's `search_lbd` histogram covers every request served.
    for (name, snap) in &request_metrics.latencies {
        if name == "search.lbd" {
            root_metrics.latency(name).merge_bank(&snap.lifetime);
        }
    }
    let search_totals: Vec<(String, u64)> = request_metrics
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("search."))
        .cloned()
        .collect();
    let response = match result {
        Err(payload) => {
            inner.faulted.fetch_add(1, Ordering::Relaxed);
            dump_flight(inner, &job.id, ring, "engine_fault");
            OutcomeResponse {
                id: job.id,
                outcome: "engine_fault".into(),
                reason: Some(panic_message(&*payload)),
                ..OutcomeResponse::default()
            }
        }
        Ok(report) => {
            let stats = Some(StatsLite {
                seconds: started.elapsed().as_secs_f64(),
                fuel_spent: report.stats.fuel_spent,
                smt_queries: report.stats.smt_queries,
                faults: report.stats.faults.len() as u64,
            });
            let was_cancelled = cancelled.load(Ordering::SeqCst);
            match report.outcome {
                // A solution that raced the cancel still counts: the work
                // is done, so the client gets it.
                SynthOutcome::Solved(term) => OutcomeResponse {
                    id: job.id,
                    outcome: "solved".into(),
                    solution: Some(term.to_string()),
                    certified: report.certified,
                    stats,
                    ..OutcomeResponse::default()
                },
                _ if was_cancelled => {
                    inner.cancelled.fetch_add(1, Ordering::Relaxed);
                    OutcomeResponse {
                        id: job.id,
                        outcome: "cancelled".into(),
                        reason: Some("cancelled by client".into()),
                        stats,
                        ..OutcomeResponse::default()
                    }
                }
                outcome => {
                    let reason = match &outcome {
                        SynthOutcome::ResourceExhausted(r) | SynthOutcome::GaveUp(r) => {
                            Some(r.clone())
                        }
                        _ => None,
                    };
                    OutcomeResponse {
                        id: job.id,
                        outcome: outcome_label(&outcome).into(),
                        reason,
                        stats,
                        ..OutcomeResponse::default()
                    }
                }
            }
        }
    };
    finish(response, Some(solve_us), stage_micros, search_totals);
}

/// Writes one flushed JSONL line to the audit log, if configured.
fn audit_line(inner: &Inner, record: Json) {
    if let Some(sink) = &inner.config.audit {
        let mut out = sink.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{record}");
        let _ = out.flush();
    }
}

/// Audit record for a request answered without running an engine (shed at
/// admission, or cancelled while still queued).
fn audit_simple(inner: &Inner, id: &str, outcome: &str, cause: &str) {
    if inner.config.audit.is_none() {
        return;
    }
    audit_line(
        inner,
        Json::obj([
            ("id", Json::str(id)),
            ("outcome", Json::str(outcome)),
            ("cause", Json::str(cause)),
        ]),
    );
}

/// Audit record for a request a worker finished (any terminal outcome).
fn audit_finish(
    inner: &Inner,
    response: &OutcomeResponse,
    queue_wait_us: u64,
    solve_us: Option<u64>,
    worker: u64,
    stages: &[(String, u64)],
    search: &[(String, u64)],
) {
    if inner.config.audit.is_none() {
        return;
    }
    let mut fields = vec![
        ("id".to_owned(), Json::str(&response.id)),
        ("outcome".to_owned(), Json::str(&response.outcome)),
        ("queue_wait_us".to_owned(), Json::from(queue_wait_us)),
        ("worker".to_owned(), Json::from(worker)),
    ];
    if let Some(micros) = solve_us {
        fields.push(("solve_us".to_owned(), Json::from(micros)));
    }
    if let Some(certified) = response.certified {
        fields.push(("certified".to_owned(), Json::from(certified)));
    }
    if let Some(reason) = &response.reason {
        fields.push(("cause".to_owned(), Json::str(reason)));
    }
    if !stages.is_empty() {
        fields.push((
            "stages".to_owned(),
            Json::Obj(
                stages
                    .iter()
                    .map(|(name, micros)| (name.clone(), Json::from(*micros)))
                    .collect(),
            ),
        ));
    }
    // Per-request search aggregates, keyed without the `search.` prefix
    // (e.g. `conflicts_total`, `lbd_sum`) — the run's whole CDCL footprint
    // in one object, matching the RunReport `search` block's totals.
    if !search.is_empty() {
        fields.push((
            "search".to_owned(),
            Json::Obj(
                search
                    .iter()
                    .map(|(name, value)| {
                        let key = name.strip_prefix("search.").unwrap_or(name);
                        (key.to_owned(), Json::from(*value))
                    })
                    .collect(),
            ),
        ));
    }
    audit_line(inner, Json::Obj(fields));
}

/// Dumps the worker's flight-recorder timeline to the diagnostics sink,
/// tagged with the faulting request's id.
fn dump_flight(inner: &Inner, id: &str, ring: &EventRing, cause: &str) {
    let mut sink = TagSink::new(Arc::clone(&inner.diag), id);
    let _ = writeln!(
        sink,
        "[flight] dump cause={cause} entries={}",
        ring.recorded().min(FLIGHT_RING_CAPACITY as u64)
    );
    for line in ring.render_timeline() {
        let _ = writeln!(sink, "[flight] {line}");
    }
    let _ = writeln!(sink, "[flight] end");
    let _ = sink.flush();
}

fn monitor_loop(
    inner: &Arc<Inner>,
    workers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        // Keep the interner gauges live between stats requests too.
        let interner = interner_stats();
        let metrics = inner.root.tracer().metrics();
        metrics.set("interner.symbols", interner.symbols as u64);
        metrics.set("interner.bytes", interner.bytes as u64);
        let respawn_wanted = {
            let st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            // During a drain, a dead worker only needs replacing while
            // work remains; afterwards workers exit by design.
            !st.stopping || !st.queue.is_empty() || !st.in_flight.is_empty()
        };
        let mut workers = workers.lock().unwrap_or_else(|e| e.into_inner());
        for slot in workers.iter_mut() {
            if slot.is_finished() && respawn_wanted {
                let dead = std::mem::replace(slot, spawn_worker(inner));
                let _ = dead.join();
                inner.recycled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A `Write` adapter that prefixes every diagnostic line with its request
/// id, so interleaved heartbeats and stall dumps from concurrent requests
/// stay attributable.
struct TagSink {
    out: DiagSink,
    tag: String,
    buf: Vec<u8>,
}

impl TagSink {
    fn new(out: DiagSink, id: &str) -> TagSink {
        TagSink {
            out,
            tag: format!("[req={id}] "),
            buf: Vec::new(),
        }
    }
}

impl Write for TagSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
            out.write_all(self.tag.as_bytes())?;
            out.write_all(&line)?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush()
    }
}

impl Drop for TagSink {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(b'\n');
            let _ = self.write(&[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn shared_diag() -> (DiagSink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink: DiagSink = Arc::new(Mutex::new(Box::new(SharedBuf(Arc::clone(&buf)))));
        (sink, buf)
    }

    #[test]
    fn tag_sink_lines_never_interleave_across_concurrent_writers() {
        let (sink, buf) = shared_diag();
        let lines_per_writer = 50;
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let id = format!("t{w}");
                    let mut tagged = TagSink::new(sink, &id);
                    for n in 0..lines_per_writer {
                        // Dribble each line in three writes so an unbuffered
                        // sink would interleave fragments across workers.
                        let line = format!("payload-{id}-{n}\n");
                        let bytes = line.as_bytes();
                        tagged.write_all(&bytes[..4]).unwrap();
                        tagged.write_all(&bytes[4..9]).unwrap();
                        tagged.write_all(&bytes[9..]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let out = buf.lock().unwrap_or_else(|e| e.into_inner());
        let text = std::str::from_utf8(&out).unwrap();
        let mut seen = HashMap::new();
        for line in text.lines() {
            let rest = line
                .strip_prefix("[req=")
                .unwrap_or_else(|| panic!("untagged line: {line:?}"));
            let (id, payload) = rest.split_once("] ").expect("tag terminator");
            // Each line must be exactly one whole payload for its own id —
            // any fragment mixing would break this shape.
            let n: usize = payload
                .strip_prefix(&format!("payload-{id}-"))
                .unwrap_or_else(|| panic!("fragmented line: {line:?}"))
                .parse()
                .unwrap();
            let next = seen.entry(id.to_owned()).or_insert(0);
            assert_eq!(n, *next, "per-writer lines arrived out of order");
            *next += 1;
        }
        assert_eq!(seen.len(), 4);
        assert!(seen.values().all(|&n| n == lines_per_writer));
    }

    #[test]
    fn tag_sink_drop_flushes_a_partial_line_with_newline() {
        let (sink, buf) = shared_diag();
        {
            let mut tagged = TagSink::new(sink, "tail");
            tagged.write_all(b"no trailing newline").unwrap();
        }
        let out = buf.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(
            std::str::from_utf8(&out).unwrap(),
            "[req=tail] no trailing newline\n"
        );
    }
}
