//! The `dryadsynthd` wire protocol: newline-delimited JSON, one request or
//! response per line.
//!
//! Requests (one JSON object per line):
//!
//! * solve — `{"id": "r1", "sygus": "(set-logic LIA)…", "timeout_ms": 5000,
//!   "engine": "coop", "certify": false}` (`timeout_ms`, `engine` and
//!   `certify` optional)
//! * cancel — `{"cancel": "r1"}` (answered through the original request:
//!   its terminal response becomes `"cancelled"`)
//! * stats — `{"stats": true}` (immediate introspection snapshot)
//! * shutdown — `{"shutdown": true}` (drain and exit; same as EOF/SIGTERM)
//!
//! Every admitted solve id receives **exactly one** terminal response:
//! `{"id", "outcome", …}` with `outcome` one of `solved`, `timeout`,
//! `resource-exhausted`, `gave-up`, `cancelled`, `overloaded`,
//! `engine_fault` or `error`. Malformed lines that carry no usable id are
//! answered with `{"error": …}` and the daemon keeps serving.

use sygus_ast::{Json, LatencyBankSnapshot};

/// The daemon's compile-time version string, reported in `stats` replies
/// and the final shutdown summary.
pub const DAEMON_VERSION: &str = env!("CARGO_PKG_VERSION");

/// A solve submission.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveJob {
    /// Client-chosen request id; echoed on the terminal response.
    pub id: String,
    /// The SyGuS v1 problem text, inline.
    pub sygus: String,
    /// Wall-clock window in milliseconds (admission to terminal response).
    /// `None` uses the daemon's default; values above the daemon's maximum
    /// are clamped.
    pub timeout_ms: Option<u64>,
    /// Engine selector: `coop` (default), `enum`, `deduce`, or `bottomup`.
    pub engine: Option<String>,
    /// Re-validate solved answers end to end before reporting them.
    pub certify: bool,
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a solve job.
    Solve(SolveJob),
    /// Cancel a queued or in-flight job by id.
    Cancel(String),
    /// Ask for an introspection snapshot.
    Stats,
    /// Drain and exit.
    Shutdown,
}

impl Request {
    /// Parses one request line. Errors describe what was malformed; the
    /// daemon turns them into `{"error": …}` responses.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        if !matches!(v, Json::Obj(_)) {
            return Err("request must be a JSON object".to_owned());
        }
        if let Some(id) = v.get("cancel") {
            let id = id.as_str().ok_or("`cancel` must be a string id")?;
            return Ok(Request::Cancel(id.to_owned()));
        }
        if v.get("stats").is_some() {
            return Ok(Request::Stats);
        }
        if v.get("shutdown").is_some() {
            return Ok(Request::Shutdown);
        }
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or("missing string `id`")?;
        let sygus = v
            .get("sygus")
            .and_then(Json::as_str)
            .ok_or("missing string `sygus`")?;
        let timeout_ms = match v.get("timeout_ms") {
            None | Some(Json::Null) => None,
            Some(t) => Some(
                t.as_i64()
                    .filter(|&ms| ms > 0)
                    .ok_or("`timeout_ms` must be a positive integer")? as u64,
            ),
        };
        let engine = match v.get("engine") {
            None | Some(Json::Null) => None,
            Some(e) => Some(
                e.as_str()
                    .ok_or("`engine` must be a string")?
                    .to_owned(),
            ),
        };
        let certify = match v.get("certify") {
            None | Some(Json::Null) => false,
            Some(c) => c.as_bool().ok_or("`certify` must be a boolean")?,
        };
        Ok(Request::Solve(SolveJob {
            id: id.to_owned(),
            sygus: sygus.to_owned(),
            timeout_ms,
            engine,
            certify,
        }))
    }

    /// The request as a protocol line (for harnesses and round-trip tests).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Solve(job) => {
                let mut fields = vec![
                    ("id", Json::str(&job.id)),
                    ("sygus", Json::str(&job.sygus)),
                ];
                if let Some(ms) = job.timeout_ms {
                    fields.push(("timeout_ms", Json::from(ms)));
                }
                if let Some(engine) = &job.engine {
                    fields.push(("engine", Json::str(engine)));
                }
                if job.certify {
                    fields.push(("certify", Json::from(true)));
                }
                Json::obj(fields)
            }
            Request::Cancel(id) => Json::obj([("cancel", Json::str(id))]),
            Request::Stats => Json::obj([("stats", Json::from(true))]),
            Request::Shutdown => Json::obj([("shutdown", Json::from(true))]),
        }
    }
}

/// Compact per-run statistics attached to terminal solve responses.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsLite {
    /// Wall-clock seconds spent solving.
    pub seconds: f64,
    /// Fuel units charged under the request budget.
    pub fuel_spent: u64,
    /// SMT queries issued under the request budget.
    pub smt_queries: u64,
    /// Engine panics contained during the run.
    pub faults: u64,
}

impl StatsLite {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seconds", Json::from(self.seconds)),
            ("fuel_spent", Json::from(self.fuel_spent)),
            ("smt_queries", Json::from(self.smt_queries)),
            ("faults", Json::from(self.faults)),
        ])
    }

    fn parse(v: &Json) -> StatsLite {
        StatsLite {
            seconds: v.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
            fuel_spent: v.get("fuel_spent").and_then(Json::as_i64).unwrap_or(0) as u64,
            smt_queries: v.get("smt_queries").and_then(Json::as_i64).unwrap_or(0) as u64,
            faults: v.get("faults").and_then(Json::as_i64).unwrap_or(0) as u64,
        }
    }
}

/// The terminal response for one solve id.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OutcomeResponse {
    /// The request id this answers.
    pub id: String,
    /// `solved`, `timeout`, `resource-exhausted`, `gave-up`, `cancelled`,
    /// `overloaded`, `engine_fault`, or `error`.
    pub outcome: String,
    /// The synthesized term (only with `solved`).
    pub solution: Option<String>,
    /// Certification verdict (only when certification was requested and a
    /// solution was produced).
    pub certified: Option<bool>,
    /// Human-readable detail for non-`solved` outcomes.
    pub reason: Option<String>,
    /// Shed hint: come back after this many milliseconds (only with
    /// `overloaded`).
    pub retry_after_ms: Option<u64>,
    /// Per-run statistics (absent for responses that never ran an engine).
    pub stats: Option<StatsLite>,
}

/// Percentile summary of one latency-histogram bank (all microseconds).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyBankStats {
    /// Recordings in the bank.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Exact observed maximum.
    pub max_us: u64,
}

impl LatencyBankStats {
    /// Summarizes one histogram bank snapshot.
    pub fn from_bank(bank: &LatencyBankSnapshot) -> LatencyBankStats {
        LatencyBankStats {
            count: bank.count,
            p50_us: bank.p50(),
            p90_us: bank.p90(),
            p99_us: bank.p99(),
            max_us: bank.max,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("p50_us", Json::from(self.p50_us)),
            ("p90_us", Json::from(self.p90_us)),
            ("p99_us", Json::from(self.p99_us)),
            ("max_us", Json::from(self.max_us)),
        ])
    }

    fn parse(v: &Json) -> LatencyBankStats {
        let n = |k: &str| v.get(k).and_then(Json::as_i64).unwrap_or(0) as u64;
        LatencyBankStats {
            count: n("count"),
            p50_us: n("p50_us"),
            p90_us: n("p90_us"),
            p99_us: n("p99_us"),
            max_us: n("max_us"),
        }
    }
}

/// One named latency histogram in a `stats` reply: the lifetime view and
/// the rolling-window view (the last one-to-two window lengths).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyLine {
    /// Histogram name (`queue_wait`, `solve_wall`, `stage.smt`, …).
    pub name: String,
    /// Every recording since the daemon started.
    pub lifetime: LatencyBankStats,
    /// The merged rolling-window banks.
    pub recent: LatencyBankStats,
}

impl LatencyLine {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("lifetime", self.lifetime.to_json()),
            ("recent", self.recent.to_json()),
        ])
    }

    fn parse(v: &Json) -> LatencyLine {
        LatencyLine {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            lifetime: v
                .get("lifetime")
                .map(LatencyBankStats::parse)
                .unwrap_or_default(),
            recent: v
                .get("recent")
                .map(LatencyBankStats::parse)
                .unwrap_or_default(),
        }
    }
}

/// Introspection snapshot answered to `{"stats": true}`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReply {
    /// Requests waiting in the admission queue.
    pub queue_depth: u64,
    /// Ids currently being solved, in no particular order.
    pub in_flight: Vec<String>,
    /// Worker threads configured.
    pub workers: u64,
    /// Solve requests admitted so far (queued or started).
    pub accepted: u64,
    /// Terminal responses sent for admitted requests.
    pub completed: u64,
    /// Requests shed by admission control (`overloaded`).
    pub shed: u64,
    /// Requests that died to a contained engine panic (`engine_fault`).
    pub faulted: u64,
    /// Requests answered `cancelled`.
    pub cancelled: u64,
    /// Worker threads recycled after dying unexpectedly.
    pub recycled: u64,
    /// Global symbol-interner gauge: distinct symbols interned.
    pub interner_symbols: u64,
    /// Global symbol-interner gauge: leaked name bytes.
    pub interner_bytes: u64,
    /// Seconds since the scheduler started.
    pub uptime_secs: u64,
    /// The daemon's compile-time version ([`DAEMON_VERSION`]).
    pub version: String,
    /// Percentile latency summaries, sorted by histogram name; empty until
    /// the first request finishes.
    pub latencies: Vec<LatencyLine>,
}

impl StatsReply {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("queue_depth".to_owned(), Json::from(self.queue_depth)),
            (
                "in_flight".to_owned(),
                Json::Arr(self.in_flight.iter().map(Json::str).collect()),
            ),
            ("workers".to_owned(), Json::from(self.workers)),
            ("accepted".to_owned(), Json::from(self.accepted)),
            ("completed".to_owned(), Json::from(self.completed)),
            ("shed".to_owned(), Json::from(self.shed)),
            ("faulted".to_owned(), Json::from(self.faulted)),
            ("cancelled".to_owned(), Json::from(self.cancelled)),
            ("recycled".to_owned(), Json::from(self.recycled)),
            ("interner.symbols".to_owned(), Json::from(self.interner_symbols)),
            ("interner.bytes".to_owned(), Json::from(self.interner_bytes)),
            ("uptime_secs".to_owned(), Json::from(self.uptime_secs)),
            ("version".to_owned(), Json::str(&self.version)),
        ];
        if !self.latencies.is_empty() {
            fields.push((
                "latencies".to_owned(),
                Json::Arr(self.latencies.iter().map(LatencyLine::to_json).collect()),
            ));
        }
        Json::obj([("stats", Json::Obj(fields))])
    }

    fn parse(v: &Json) -> StatsReply {
        let n = |k: &str| v.get(k).and_then(Json::as_i64).unwrap_or(0) as u64;
        StatsReply {
            queue_depth: n("queue_depth"),
            in_flight: v
                .get("in_flight")
                .and_then(Json::as_arr)
                .map(|ids| {
                    ids.iter()
                        .filter_map(Json::as_str)
                        .map(str::to_owned)
                        .collect()
                })
                .unwrap_or_default(),
            workers: n("workers"),
            accepted: n("accepted"),
            completed: n("completed"),
            shed: n("shed"),
            faulted: n("faulted"),
            cancelled: n("cancelled"),
            recycled: n("recycled"),
            interner_symbols: n("interner.symbols"),
            interner_bytes: n("interner.bytes"),
            uptime_secs: n("uptime_secs"),
            version: v
                .get("version")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            latencies: v
                .get("latencies")
                .and_then(Json::as_arr)
                .map(|lines| lines.iter().map(LatencyLine::parse).collect())
                .unwrap_or_default(),
        }
    }
}

/// The final summary printed after a drain.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DrainSummary {
    /// Solve requests admitted over the daemon's lifetime.
    pub accepted: u64,
    /// Terminal responses sent for admitted requests.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Contained engine faults.
    pub faulted: u64,
    /// Requests answered `cancelled` (including queue flush at shutdown).
    pub cancelled: u64,
    /// Workers recycled after dying unexpectedly.
    pub recycled: u64,
    /// Whether every worker exited within the drain deadline.
    pub clean: bool,
    /// Seconds the daemon served before draining.
    pub uptime_secs: u64,
    /// The daemon's compile-time version ([`DAEMON_VERSION`]).
    pub version: String,
}

impl DrainSummary {
    fn to_json(&self) -> Json {
        Json::obj([(
            "shutdown",
            Json::obj([
                ("accepted", Json::from(self.accepted)),
                ("completed", Json::from(self.completed)),
                ("shed", Json::from(self.shed)),
                ("faulted", Json::from(self.faulted)),
                ("cancelled", Json::from(self.cancelled)),
                ("recycled", Json::from(self.recycled)),
                ("clean", Json::from(self.clean)),
                ("uptime_secs", Json::from(self.uptime_secs)),
                ("version", Json::str(&self.version)),
            ]),
        )])
    }

    fn parse(v: &Json) -> DrainSummary {
        let n = |k: &str| v.get(k).and_then(Json::as_i64).unwrap_or(0) as u64;
        DrainSummary {
            accepted: n("accepted"),
            completed: n("completed"),
            shed: n("shed"),
            faulted: n("faulted"),
            cancelled: n("cancelled"),
            recycled: n("recycled"),
            clean: v.get("clean").and_then(Json::as_bool).unwrap_or(false),
            uptime_secs: n("uptime_secs"),
            version: v
                .get("version")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        }
    }
}

/// One response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The terminal answer for a solve id.
    Outcome(OutcomeResponse),
    /// A protocol-level error: malformed line, duplicate id, unknown
    /// cancel target. Carries the offending id when one was readable.
    Error {
        /// The offending request id, when the line carried one.
        id: Option<String>,
        /// What was wrong.
        message: String,
    },
    /// Introspection snapshot.
    Stats(StatsReply),
    /// Post-drain summary (the daemon's last line).
    Shutdown(DrainSummary),
}

impl Response {
    /// The response as a protocol line.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Outcome(o) => {
                let mut fields = vec![
                    ("id", Json::str(&o.id)),
                    ("outcome", Json::str(&o.outcome)),
                ];
                if let Some(s) = &o.solution {
                    fields.push(("solution", Json::str(s)));
                }
                if let Some(c) = o.certified {
                    fields.push(("certified", Json::from(c)));
                }
                if let Some(r) = &o.reason {
                    fields.push(("reason", Json::str(r)));
                }
                if let Some(ms) = o.retry_after_ms {
                    fields.push(("retry_after_ms", Json::from(ms)));
                }
                if let Some(stats) = &o.stats {
                    fields.push(("stats", stats.to_json()));
                }
                Json::obj(fields)
            }
            Response::Error { id, message } => {
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id", Json::str(id)));
                }
                fields.push(("error", Json::str(message)));
                Json::obj(fields)
            }
            Response::Stats(s) => s.to_json(),
            Response::Shutdown(s) => s.to_json(),
        }
    }

    /// Parses a response line back (for harnesses and round-trip tests).
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        if let Some(message) = v.get("error").and_then(Json::as_str) {
            return Ok(Response::Error {
                id: v.get("id").and_then(Json::as_str).map(str::to_owned),
                message: message.to_owned(),
            });
        }
        if let Some(outcome) = v.get("outcome").and_then(Json::as_str) {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or("outcome response missing `id`")?;
            return Ok(Response::Outcome(OutcomeResponse {
                id: id.to_owned(),
                outcome: outcome.to_owned(),
                solution: v
                    .get("solution")
                    .and_then(Json::as_str)
                    .map(str::to_owned),
                certified: v.get("certified").and_then(Json::as_bool),
                reason: v.get("reason").and_then(Json::as_str).map(str::to_owned),
                retry_after_ms: v
                    .get("retry_after_ms")
                    .and_then(Json::as_i64)
                    .map(|ms| ms as u64),
                stats: v.get("stats").map(StatsLite::parse),
            }));
        }
        if let Some(stats) = v.get("stats") {
            return Ok(Response::Stats(StatsReply::parse(stats)));
        }
        if let Some(summary) = v.get("shutdown") {
            return Ok(Response::Shutdown(DrainSummary::parse(summary)));
        }
        Err("unrecognized response shape".to_owned())
    }

    /// The id this response answers, when it has one.
    pub fn id(&self) -> Option<&str> {
        match self {
            Response::Outcome(o) => Some(&o.id),
            Response::Error { id, .. } => id.as_deref(),
            _ => None,
        }
    }
}
