//! Prometheus-text-format exposition for the daemon (`--metrics-socket`).
//!
//! Hand-rolled like the rest of the repo's serialization: the text format
//! is line-oriented (`name{labels} value`), so a writer needs no library.
//! Every scheduler counter and gauge, every daemon-tracer counter, every
//! stage aggregate, and every latency histogram appears in the output.
//!
//! Histograms use the fine [`latency_bucket`] scale internally but are
//! exposed on a coarse power-of-eight `le` ladder (16us .. ~268s). Every
//! rung is an exact fine-bucket boundary, so the cumulative counts are
//! exact, not re-quantized.
//!
//! [`latency_bucket`]: sygus_ast::latency_bucket

use crate::daemon::protocol::StatsReply;
use std::fmt::Write;
use sygus_ast::{latency_bucket_bounds, LatencyBankSnapshot, MetricsSnapshot};

/// The coarse `le` ladder, in microseconds: ×8 per rung, all powers of two
/// (hence exact fine-bucket boundaries).
const LE_LADDER: [u64; 9] = [
    16,
    128,
    1_024,
    8_192,
    65_536,
    524_288,
    4_194_304,
    33_554_432,
    268_435_456,
];

/// The `le` ladder for dimensionless `search.*` histograms (learned-clause
/// LBD lives in the low tens): ×2 per rung, all powers of two, so every
/// rung is again an exact fine-bucket boundary.
const SEARCH_LE_LADDER: [u64; 9] = [2, 4, 8, 16, 32, 64, 128, 256, 1_024];

/// Renders the full exposition page from a stats reply (scheduler counters
/// and gauges) and the daemon root tracer's metrics snapshot.
pub fn render(stats: &StatsReply, snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let w = &mut out;

    line_comment(w, "dryadsynthd_build_info", "gauge", "Build metadata.");
    let _ = writeln!(
        w,
        "dryadsynthd_build_info{{version=\"{}\"}} 1",
        stats.version
    );

    gauge(w, "uptime_seconds", "Seconds since the daemon started.", stats.uptime_secs);
    gauge(w, "queue_depth", "Requests waiting for a worker.", stats.queue_depth);
    gauge(w, "in_flight", "Requests being solved right now.", stats.in_flight.len() as u64);
    gauge(w, "workers", "Configured worker-pool size.", stats.workers);

    counter(w, "requests_accepted_total", "Requests admitted to the queue.", stats.accepted);
    counter(w, "requests_completed_total", "Requests given a terminal response.", stats.completed);
    counter(w, "requests_shed_total", "Requests shed by admission control.", stats.shed);
    counter(w, "requests_faulted_total", "Requests answered engine_fault.", stats.faulted);
    counter(w, "requests_cancelled_total", "Requests cancelled.", stats.cancelled);
    counter(w, "workers_recycled_total", "Worker threads respawned.", stats.recycled);

    for (name, value) in &snapshot.counters {
        // The `search.lbd` histogram's implicit `_sum`/`_count` series own
        // these names in the exposition; emitting the raw counters too
        // would duplicate the metric family with a conflicting type.
        if name == "search.lbd_sum" || name == "search.lbd_count" {
            continue;
        }
        gauge(
            w,
            &sanitize(name),
            &format!("Daemon tracer metric `{name}`."),
            *value,
        );
    }

    let mut active: Vec<_> = snapshot.stages.iter().filter(|s| s.count > 0).collect();
    active.sort_by_key(|s| s.stage);
    if !active.is_empty() {
        line_comment(w, "dryadsynthd_stage_spans_total", "counter", "Spans recorded per stage.");
        for s in &active {
            let _ = writeln!(w, "dryadsynthd_stage_spans_total{{stage=\"{}\"}} {}", s.stage, s.count);
        }
        line_comment(w, "dryadsynthd_stage_micros_total", "counter", "Cumulative span micros per stage.");
        for s in &active {
            let _ = writeln!(w, "dryadsynthd_stage_micros_total{{stage=\"{}\"}} {}", s.stage, s.total_micros);
        }
    }

    for (name, lat) in &snapshot.latencies {
        if name.starts_with("search.") {
            // Search histograms are dimensionless (e.g. LBD): no `_us`
            // unit suffix, and a low-range ladder.
            histogram_on(
                w,
                &sanitize(name),
                &lat.lifetime,
                &SEARCH_LE_LADDER,
                "Dimensionless search-analytics distribution.",
            );
        } else {
            histogram(w, &sanitize(name), &lat.lifetime);
        }
    }
    out
}

fn line_comment(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let name = format!("dryadsynthd_{name}");
    line_comment(out, &name, "gauge", help);
    let _ = writeln!(out, "{name} {value}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let name = format!("dryadsynthd_{name}");
    line_comment(out, &name, "counter", help);
    let _ = writeln!(out, "{name} {value}");
}

/// One lifetime latency histogram as a cumulative `le` ladder plus sum and
/// count. Recent-window views stay in `stats` (Prometheus derives rates
/// itself).
fn histogram(out: &mut String, name: &str, bank: &LatencyBankSnapshot) {
    histogram_on(
        out,
        &format!("{name}_us"),
        bank,
        &LE_LADDER,
        "Latency in microseconds.",
    );
}

/// Renders one lifetime bank on an arbitrary `le` ladder. Every rung must
/// be an exact fine-bucket boundary for the cumulative counts to be exact.
fn histogram_on(out: &mut String, name: &str, bank: &LatencyBankSnapshot, ladder: &[u64], help: &str) {
    let name = format!("dryadsynthd_{name}");
    line_comment(out, &name, "histogram", help);
    let mut cumulative = 0u64;
    let mut fine = 0usize;
    for &le in ladder {
        while fine < bank.buckets.len() {
            let (_, upper) = latency_bucket_bounds(fine);
            if upper > le {
                break;
            }
            // synthlint: allow(panic-surface) — index guarded by `fine < bank.buckets.len()` in the loop condition
            cumulative += bank.buckets[fine];
            fine += 1;
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", bank.count);
    let _ = writeln!(out, "{name}_sum {}", bank.total);
    let _ = writeln!(out, "{name}_count {}", bank.count);
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; fold everything else
/// (`.`-separated tracer names, mostly) to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus_ast::Tracer;

    fn sample() -> (StatsReply, MetricsSnapshot) {
        let tracer = Tracer::metrics_only();
        let metrics = tracer.metrics();
        metrics.set("interner.symbols", 42);
        metrics.record_latency("solve_wall", 900);
        metrics.record_latency("solve_wall", 1_500);
        metrics.record_latency("solve_wall", 2_000_000);
        let stats = StatsReply {
            queue_depth: 3,
            workers: 2,
            accepted: 10,
            completed: 7,
            shed: 1,
            version: "1.2.3".into(),
            uptime_secs: 5,
            ..StatsReply::default()
        };
        (stats, metrics.snapshot())
    }

    /// Minimal format check: every line is a comment or `name[{labels}] value`.
    fn assert_parses(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "), "{line}");
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("value separator");
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in {line:?}"
            );
            assert!(name.starts_with("dryadsynthd_"), "unprefixed: {line}");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }

    #[test]
    fn exposition_covers_gauges_counters_and_histograms() {
        let (stats, snapshot) = sample();
        let text = render(&stats, &snapshot);
        assert_parses(&text);
        assert!(text.contains("dryadsynthd_build_info{version=\"1.2.3\"} 1"));
        assert!(text.contains("dryadsynthd_requests_accepted_total 10"));
        assert!(text.contains("dryadsynthd_queue_depth 3"));
        assert!(text.contains("dryadsynthd_interner_symbols 42"));
        assert!(text.contains("# TYPE dryadsynthd_solve_wall_us histogram"));
        assert!(text.contains("dryadsynthd_solve_wall_us_count 3"));
        assert!(text.contains("dryadsynthd_solve_wall_us_sum 2002400"));
    }

    #[test]
    fn search_histograms_render_unitless_with_the_low_ladder() {
        let tracer = Tracer::metrics_only();
        let metrics = tracer.metrics();
        for v in [2u64, 3, 5, 9] {
            metrics.record_latency("search.lbd", v);
        }
        metrics.add("search.conflicts_total", 4);
        // The raw counters the scheduler forwards alongside the histogram;
        // they must NOT surface as gauges (the histogram's implicit series
        // own these names).
        metrics.add("search.lbd_sum", 19);
        metrics.add("search.lbd_count", 4);
        let text = render(&StatsReply::default(), &metrics.snapshot());
        assert_parses(&text);
        // No `_us` suffix on dimensionless search metrics.
        assert!(text.contains("# TYPE dryadsynthd_search_lbd histogram"));
        assert!(!text.contains("dryadsynthd_search_lbd_us"));
        // The low ladder splits single-digit LBDs: 2 and 3 are <= 4; 5
        // joins at 8; 9 only at 16.
        assert!(text.contains("dryadsynthd_search_lbd_bucket{le=\"4\"} 2"));
        assert!(text.contains("dryadsynthd_search_lbd_bucket{le=\"8\"} 3"));
        assert!(text.contains("dryadsynthd_search_lbd_bucket{le=\"16\"} 4"));
        assert!(text.contains("dryadsynthd_search_lbd_sum 19"));
        assert!(text.contains("dryadsynthd_search_lbd_count 4"));
        // Search counters ride the existing sanitized-gauge path.
        assert!(text.contains("dryadsynthd_search_conflicts_total 4"));
        // Exactly one series per name: the forwarded lbd_sum/lbd_count
        // counters are suppressed in favor of the histogram's own series.
        assert_eq!(text.matches("dryadsynthd_search_lbd_sum ").count(), 1);
        assert_eq!(text.matches("dryadsynthd_search_lbd_count ").count(), 1);
    }

    #[test]
    fn histogram_ladder_is_cumulative_and_exact_at_boundaries() {
        let (stats, snapshot) = sample();
        let text = render(&stats, &snapshot);
        // 900 and 1500 us are both <= 8192; the 2s recording only lands in
        // the 4194304us rung and +Inf.
        assert!(text.contains("dryadsynthd_solve_wall_us_bucket{le=\"1024\"} 1"));
        assert!(text.contains("dryadsynthd_solve_wall_us_bucket{le=\"8192\"} 2"));
        assert!(text.contains("dryadsynthd_solve_wall_us_bucket{le=\"524288\"} 2"));
        assert!(text.contains("dryadsynthd_solve_wall_us_bucket{le=\"4194304\"} 3"));
        assert!(text.contains("dryadsynthd_solve_wall_us_bucket{le=\"+Inf\"} 3"));
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            if line.contains("le=\"16\"") {
                last = 0; // a new histogram's ladder restarts
            }
            assert!(v >= last, "non-monotone ladder at {line}");
            last = v;
        }
    }
}
