//! Deterministic fault injection for the daemon's chaos harness.
//!
//! A [`Chaos`] instance is seeded once and rolled at every injection point;
//! the same seed replays the same fault schedule, so a chaos run that trips
//! an invariant can be reproduced exactly. Probabilities are expressed in
//! parts-per-million of each roll.

use std::sync::atomic::{AtomicU64, Ordering};

/// What to inject and how often (per injection point, in ppm).
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// RNG seed; the whole schedule is a pure function of it.
    pub seed: u64,
    /// Probability that a solve panics inside the worker's isolation
    /// envelope (surfaces as an `engine_fault` response).
    pub panic_ppm: u32,
    /// Probability that a worker thread dies *between* requests (exercises
    /// the monitor's recycling; never loses a response).
    pub kill_worker_ppm: u32,
    /// Probability that an admitted request is immediately cancelled
    /// through the real cancellation path.
    pub cancel_ppm: u32,
    /// Probability that a solve is delayed before starting.
    pub delay_ppm: u32,
    /// Maximum injected delay in milliseconds.
    pub max_delay_ms: u64,
}

impl ChaosConfig {
    /// An aggressive default mix for harness runs: every fault class armed.
    pub fn from_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_ppm: 150_000,
            kill_worker_ppm: 100_000,
            cancel_ppm: 100_000,
            delay_ppm: 200_000,
            max_delay_ms: 30,
        }
    }
}

/// Shared, thread-safe chaos roller.
#[derive(Debug)]
pub struct Chaos {
    config: ChaosConfig,
    state: AtomicU64,
}

impl Chaos {
    /// Creates the roller from its config.
    pub fn new(config: ChaosConfig) -> Chaos {
        Chaos {
            config,
            // A zero seed would still work, but mix in a constant so the
            // first rolls differ across nearby seeds.
            state: AtomicU64::new(config.seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The config this roller was built from.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// One LCG step (Knuth's MMIX constants); thread-safe and deterministic
    /// up to thread interleaving.
    fn roll(&self) -> u64 {
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let next = cur
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match self.state.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }

    fn hit(&self, ppm: u32) -> bool {
        ppm > 0 && (self.roll() >> 16) % 1_000_000 < u64::from(ppm)
    }

    /// Should this solve panic inside the isolation envelope?
    pub fn inject_panic(&self) -> bool {
        self.hit(self.config.panic_ppm)
    }

    /// Should this worker die between requests?
    pub fn inject_worker_kill(&self) -> bool {
        self.hit(self.config.kill_worker_ppm)
    }

    /// Should this freshly admitted request be cancelled?
    pub fn inject_cancel(&self) -> bool {
        self.hit(self.config.cancel_ppm)
    }

    /// Delay to impose before a solve starts, if any.
    pub fn inject_delay(&self) -> Option<std::time::Duration> {
        if self.hit(self.config.delay_ppm) && self.config.max_delay_ms > 0 {
            Some(std::time::Duration::from_millis(
                self.roll() % (self.config.max_delay_ms + 1),
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = Chaos::new(ChaosConfig::from_seed(42));
        let b = Chaos::new(ChaosConfig::from_seed(42));
        let seq_a: Vec<bool> = (0..64).map(|_| a.inject_panic()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.inject_panic()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&x| x), "150000 ppm must hit in 64 rolls");
        assert!(!seq_a.iter().all(|&x| x), "and must also miss");
    }

    #[test]
    fn zero_ppm_never_fires() {
        let chaos = Chaos::new(ChaosConfig {
            seed: 7,
            panic_ppm: 0,
            kill_worker_ppm: 0,
            cancel_ppm: 0,
            delay_ppm: 0,
            max_delay_ms: 10,
        });
        for _ in 0..256 {
            assert!(!chaos.inject_panic());
            assert!(!chaos.inject_worker_kill());
            assert!(!chaos.inject_cancel());
            assert!(chaos.inject_delay().is_none());
        }
    }

    #[test]
    fn delays_respect_the_cap() {
        let chaos = Chaos::new(ChaosConfig {
            seed: 9,
            panic_ppm: 0,
            kill_worker_ppm: 0,
            cancel_ppm: 0,
            delay_ppm: 1_000_000,
            max_delay_ms: 5,
        });
        for _ in 0..128 {
            let d = chaos.inject_delay().expect("always delayed at 100%");
            assert!(d.as_millis() <= 5);
        }
    }
}
