//! Synthesis as a service: the `dryadsynthd` daemon's protocol, scheduler,
//! and chaos harness.
//!
//! The daemon multiplexes concurrent JSONL solve requests onto a bounded
//! worker pool built on [`Synthesizer::solve`](crate::Synthesizer::solve).
//! [`protocol`] defines the wire format, [`Scheduler`] enforces the
//! service invariants (exactly-once responses, panic isolation, bounded
//! admission, fair aging, graceful drain), and [`chaos`] provides the
//! seeded fault injection the integration harness runs under. See
//! `DESIGN.md` section 10 for the architecture.

pub mod chaos;
pub mod protocol;
mod scheduler;

pub use chaos::{Chaos, ChaosConfig};
pub use protocol::{
    DrainSummary, OutcomeResponse, Request, Response, SolveJob, StatsLite, StatsReply,
};
pub use scheduler::{DiagSink, Responder, Scheduler, SchedulerConfig};
