//! Synthesis as a service: the `dryadsynthd` daemon's protocol, scheduler,
//! and chaos harness.
//!
//! The daemon multiplexes concurrent JSONL solve requests onto a bounded
//! worker pool built on [`Synthesizer::solve`](crate::Synthesizer::solve).
//! [`protocol`] defines the wire format, [`Scheduler`] enforces the
//! service invariants (exactly-once responses, panic isolation, bounded
//! admission, fair aging, graceful drain), and [`chaos`] provides the
//! seeded fault injection the integration harness runs under. See
//! `DESIGN.md` section 10 for the architecture.

pub mod chaos;
pub mod expose;
pub mod protocol;
mod scheduler;

pub use chaos::{Chaos, ChaosConfig};
pub use protocol::{
    DrainSummary, LatencyBankStats, LatencyLine, OutcomeResponse, Request, Response, SolveJob,
    StatsLite, StatsReply, DAEMON_VERSION,
};
pub use scheduler::{AuditSink, DiagSink, Responder, Scheduler, SchedulerConfig};
