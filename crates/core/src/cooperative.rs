//! The cooperative synthesis framework (Section 3, Algorithm 1): a
//! subproblem graph, a deduction-first queue discipline, divide-and-conquer
//! expansion, and height-based enumeration as the last resort.

use crate::runtime::{panic_message, Budget, EngineFault};
use crate::{
    verify_solution, DeductOutcome, DeductionConfig, DeductiveEngine, Divider, Division,
    EnumBackend, ExamplePool, FixedHeightResult, TypeBOutcome,
};
use smtkit::{SmtConfig, SmtSession, Validity};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use sygus_ast::trace::{GraphEvent, Stage};
use sygus_ast::{span, Problem, Term};

/// Outcome of a cooperative synthesis run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthOutcome {
    /// A verified solution body over the synth-fun parameters.
    Solved(Term),
    /// The wall-clock deadline passed.
    Timeout,
    /// A governed resource other than the deadline stopped the run: a fuel
    /// or memory allowance ran out, or the budget was cancelled (the reason
    /// string is `"cancelled"` in that case).
    ResourceExhausted(String),
    /// All queues drained without a solution (or the spec is
    /// unsatisfiable).
    GaveUp(String),
}

impl SynthOutcome {
    /// The solution, if any.
    pub fn solution(&self) -> Option<&Term> {
        match self {
            SynthOutcome::Solved(t) => Some(t),
            _ => None,
        }
    }
}

/// Statistics of one cooperative run (used by the ablation figures).
#[derive(Clone, Debug, Default)]
pub struct CoopStats {
    /// Subproblem-graph nodes created (including the source).
    pub nodes: usize,
    /// Problems solved purely by the deductive engine.
    pub solved_by_deduction: usize,
    /// Problems solved by the enumeration backend.
    pub solved_by_enumeration: usize,
    /// Whether the *source* was finally solved without any enumeration.
    pub source_solved_deductively: bool,
    /// Divisions proposed, by strategy name (subterm / fixed-term /
    /// weaker-spec-and / weaker-spec-or).
    pub divisions_proposed: Vec<(&'static str, usize)>,
    /// Type-B steps fired (a child's solution consumed at a parent).
    pub type_b_fired: usize,
    /// Engine panics caught and isolated by the cooperative driver. The run
    /// continues past each one; the faulting step counts as a failure.
    pub faults: Vec<EngineFault>,
    /// SMT queries issued under the run's budget.
    pub smt_queries: u64,
    /// SMT retry-ladder escalations taken under the run's budget.
    pub smt_retries: u64,
    /// Fuel units charged under the run's budget.
    pub fuel_spent: u64,
}

impl CoopStats {
    fn count_division(&mut self, strategy: &'static str) {
        match self
            .divisions_proposed
            .iter_mut()
            .find(|(s, _)| *s == strategy)
        {
            Some((_, n)) => *n += 1,
            None => self.divisions_proposed.push((strategy, 1)),
        }
    }

    fn record_fault(
        &mut self,
        stage: &'static str,
        node: usize,
        payload: &(dyn std::any::Any + Send),
    ) {
        self.faults.push(EngineFault {
            stage,
            node,
            message: panic_message(payload),
        });
    }
}

/// A parent edge: when the child is solved, this division's Type-B step
/// fires at the parent (once).
struct ParentLink {
    parent: usize,
    division: Division,
    fired: bool,
}

struct Node {
    /// The current (possibly Type-B-simplified) problem.
    problem: Problem,
    /// The problem as it was at node creation, for final verification.
    original: Problem,
    /// Composition of pending wrappers (applied innermost-first).
    wrappers: Vec<Arc<dyn Fn(Term) -> Term + Send + Sync>>,
    solution: Option<Term>,
    parents: Vec<ParentLink>,
    examples: ExamplePool,
    /// Bumped whenever the node's problem is replaced; stale queue entries
    /// are skipped.
    version: u64,
    divided: bool,
    dead: bool,
}

/// Verifies unwound candidate solutions. With sessions enabled one
/// persistent [`SmtSession`] is reused across every check of the run: each
/// `check_valid` is fully scoped (push, assert the negated formula, pop),
/// so the root scope never accumulates assertions and the same session is
/// sound across *different* subproblems — while learned clauses and the
/// encoding cache survive from one candidate to the next.
struct SessionVerifier {
    session: Mutex<Option<SmtSession>>,
    enabled: bool,
}

impl SessionVerifier {
    fn new(enabled: bool) -> SessionVerifier {
        SessionVerifier {
            session: Mutex::new(None),
            enabled,
        }
    }

    /// Checks that `body` satisfies `problem`'s constraints on every input.
    fn verify(&self, problem: &Problem, body: &Term, budget: &Budget) -> bool {
        if !self.enabled {
            return verify_solution(problem, body, Some(budget));
        }
        let tracer = budget.tracer().clone();
        let _span = tracer.span(Stage::Verify);
        // A contained panic elsewhere may have poisoned the lock; the
        // session itself is left in a consistent state by `check_valid`
        // (its pop runs even on error), so recover rather than propagate.
        let mut guard = self.session.lock().unwrap_or_else(|e| e.into_inner());
        let session = guard.get_or_insert_with(|| {
            SmtSession::new(SmtConfig::builder().budget(budget.clone()).build())
        });
        let formula = problem.verification_formula(body);
        matches!(session.check_valid(&formula), Ok(Validity::Valid))
    }
}

/// The cooperative solver (Algorithm 1), generic in its enumeration
/// backend.
pub struct CooperativeSolver {
    deduction: DeductiveEngine,
    divider: Divider,
    backend: Arc<dyn EnumBackend>,
    budget: Budget,
    max_nodes: usize,
    /// Skip the deductive engine entirely (the plain-enumeration ablation).
    enumeration_only: bool,
    /// Skip enumeration entirely (the plain-deduction ablation).
    deduction_only: bool,
    /// Solution verification, session-backed unless sessions are disabled.
    verifier: SessionVerifier,
}

impl CooperativeSolver {
    /// Creates a solver with the given components.
    pub fn new(
        deduction_config: DeductionConfig,
        divider: Divider,
        backend: Arc<dyn EnumBackend>,
        budget: Budget,
    ) -> CooperativeSolver {
        CooperativeSolver {
            deduction: DeductiveEngine::new(deduction_config),
            divider,
            backend,
            budget,
            max_nodes: 48,
            enumeration_only: false,
            deduction_only: false,
            verifier: SessionVerifier::new(true),
        }
    }

    /// Enables or disables the persistent verification SMT session (enabled
    /// by default); with sessions off, each candidate is verified by a
    /// from-scratch [`verify_solution`] query.
    pub fn with_smt_sessions(mut self, enabled: bool) -> CooperativeSolver {
        self.verifier = SessionVerifier::new(enabled);
        self
    }

    /// The run's resource governor (cancel it to stop the solver).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Disables deduction and divide-and-conquer (plain height-based
    /// enumeration, the Figure 14 ablation).
    pub fn enumeration_only(mut self) -> CooperativeSolver {
        self.enumeration_only = true;
        self
    }

    /// Disables enumeration (plain deduction, the Figure 15 ablation).
    pub fn deduction_only(mut self) -> CooperativeSolver {
        self.deduction_only = true;
        self
    }

    /// Caps the subproblem graph size.
    pub fn with_max_nodes(mut self, n: usize) -> CooperativeSolver {
        self.max_nodes = n.max(1);
        self
    }

    /// Maps budget exhaustion to the outcome that should end the run. Only
    /// a passed deadline reports [`SynthOutcome::Timeout`]; cancellation
    /// (like fuel and memory exhaustion) reports
    /// [`SynthOutcome::ResourceExhausted`] so a host that cancelled one
    /// request of many (the daemon scheduler) can tell a deliberate stop
    /// apart from a request that ran out of wall clock.
    fn interrupted(&self) -> Option<SynthOutcome> {
        self.budget.exceeded().map(|e| match e {
            crate::BudgetError::Timeout => SynthOutcome::Timeout,
            other => SynthOutcome::ResourceExhausted(other.to_string()),
        })
    }

    /// Runs Algorithm 1 on `problem`.
    pub fn solve(&self, problem: &Problem) -> SynthOutcome {
        self.solve_with_stats(problem).0
    }

    /// Runs Algorithm 1 and reports the run statistics.
    pub fn solve_with_stats(&self, problem: &Problem) -> (SynthOutcome, CoopStats) {
        let mut stats = CoopStats::default();
        let outcome = self.run(problem, &mut stats);
        stats.smt_queries = self.budget.smt_queries();
        stats.smt_retries = self.budget.smt_retries();
        stats.fuel_spent = self.budget.fuel_spent();
        // Deterministic order so `--stats`/`--json` diffs are stable across
        // runs regardless of which strategy proposed first.
        stats.divisions_proposed.sort_by_key(|&(s, _)| s);
        if let SynthOutcome::Solved(body) = &outcome {
            self.budget
                .tracer()
                .metrics()
                .record_size(sygus_ast::solution_size(body));
        }
        (outcome, stats)
    }

    fn run(&self, problem: &Problem, stats: &mut CoopStats) -> SynthOutcome {
        let tracer = self.budget.tracer().clone();
        tracer.graph_event(|| GraphEvent::Node {
            id: 0,
            label: node_label(problem),
        });
        let mut nodes: Vec<Node> = vec![Node {
            problem: problem.clone(),
            original: problem.clone(),
            wrappers: Vec::new(),
            solution: None,
            parents: Vec::new(),
            examples: ExamplePool::default(),
            version: 0,
            divided: false,
            dead: false,
        }];
        stats.nodes = 1;
        tracer.progress().set_nodes(1);
        // Dedup key → node index (the subproblem-graph sharing of §3.2).
        let mut keys: HashMap<String, usize> = HashMap::new();
        keys.insert(node_key(problem), 0);

        let mut ded_queue: VecDeque<usize> = VecDeque::new();
        // (height, node-priority, node, version) min-heap: smallest height
        // first; within a height, deepest (most recently created, hence
        // smallest) subproblems first — they are the cheap ones whose
        // solutions simplify their parents.
        let mut enum_queue: BinaryHeap<Reverse<(usize, usize, usize, u64)>> = BinaryHeap::new();
        ded_queue.push_back(0);

        loop {
            if let Some(sol) = nodes[0].solution.clone() {
                return SynthOutcome::Solved(sol);
            }
            if let Some(stop) = self.interrupted() {
                return stop;
            }
            if let Some(i) = ded_queue.pop_front() {
                if nodes[i].solution.is_some() || nodes[i].dead {
                    continue;
                }
                // Deduction first (lines 7–13). A panicking rule is caught,
                // recorded as a fault, and treated as "no rule applied".
                if !self.enumeration_only {
                    let deduced = {
                        let _span = span!(tracer, Stage::Deduct, i);
                        catch_unwind(AssertUnwindSafe(|| self.deduction.deduct(&nodes[i].problem)))
                            .unwrap_or_else(|payload| {
                                stats.record_fault("deduct", i, &*payload);
                                DeductOutcome::Unchanged
                            })
                    };
                    match deduced {
                        DeductOutcome::Solved(body) => {
                            let accepted = self.on_solved(
                                i,
                                body,
                                &mut nodes,
                                &mut ded_queue,
                                &mut enum_queue,
                                stats,
                            );
                            if accepted {
                                stats.solved_by_deduction += 1;
                                tracer.graph_event(|| GraphEvent::Solved {
                                    id: i,
                                    engine: "deduction",
                                });
                                if i == 0 && ded_queue.is_empty() && enum_queue.is_empty() {
                                    stats.source_solved_deductively = true;
                                }
                                continue;
                            }
                            // Unverifiable deduction result: fall through to
                            // division and enumeration.
                        }
                        DeductOutcome::Simplified(d) => {
                            nodes[i].problem = d.problem;
                            nodes[i].wrappers.push(d.wrap);
                            nodes[i].version += 1;
                            nodes[i].examples = ExamplePool::default();
                        }
                        DeductOutcome::Unsolvable => {
                            nodes[i].dead = true;
                            tracer.graph_event(|| GraphEvent::Dead { id: i });
                            if i == 0 {
                                return SynthOutcome::GaveUp(
                                    "specification is unsatisfiable".into(),
                                );
                            }
                            continue;
                        }
                        DeductOutcome::Unchanged => {}
                    }
                    // Divide (lines 10–13); a panicking strategy proposes
                    // nothing.
                    if !nodes[i].divided && nodes.len() < self.max_nodes {
                        nodes[i].divided = true;
                        let divisions = {
                            let _span = span!(tracer, Stage::Divide, i);
                            catch_unwind(AssertUnwindSafe(|| self.divider.divide(&nodes[i].problem)))
                                .unwrap_or_else(|payload| {
                                    stats.record_fault("divide", i, &*payload);
                                    Vec::new()
                                })
                        };
                        for division in divisions {
                            if nodes.len() >= self.max_nodes {
                                break;
                            }
                            stats.count_division(division.strategy);
                            tracer.metrics().bump(division_counter(division.strategy));
                            let key = node_key(&division.type_a);
                            let child = match keys.get(&key) {
                                Some(&c) => c,
                                None => {
                                    let c = nodes.len();
                                    nodes.push(Node {
                                        problem: division.type_a.clone(),
                                        original: division.type_a.clone(),
                                        wrappers: Vec::new(),
                                        solution: None,
                                        parents: Vec::new(),
                                        examples: ExamplePool::default(),
                                        version: 0,
                                        divided: false,
                                        dead: false,
                                    });
                                    stats.nodes += 1;
                                    tracer.progress().set_nodes(stats.nodes as u64);
                                    keys.insert(key, c);
                                    ded_queue.push_back(c);
                                    tracer.graph_event(|| GraphEvent::Node {
                                        id: c,
                                        label: node_label(&division.type_a),
                                    });
                                    c
                                }
                            };
                            tracer.graph_event(|| GraphEvent::Edge {
                                parent: i,
                                child,
                                strategy: division.strategy,
                            });
                            // A child solved before this edge existed fires
                            // immediately.
                            let already = nodes[child].solution.clone();
                            nodes[child].parents.push(ParentLink {
                                parent: i,
                                division,
                                fired: false,
                            });
                            if let Some(sol) = already {
                                let li = nodes[child].parents.len() - 1;
                                nodes[child].parents[li].fired = true;
                                let parent = nodes[child].parents[li].parent;
                                let div = nodes[child].parents[li].division.clone();
                                self.fire_type_b(
                                    parent,
                                    &div,
                                    &sol,
                                    &mut nodes,
                                    &mut ded_queue,
                                    &mut enum_queue,
                                    stats,
                                );
                            }
                        }
                    }
                }
                // Last resort: enumeration, starting at height 1 (line 18).
                if !self.deduction_only {
                    enum_queue.push(Reverse((1, usize::MAX - i, i, nodes[i].version)));
                }
                continue;
            }
            if let Some(Reverse((h, _prio, i, version))) = enum_queue.pop() {
                if nodes[i].solution.is_some() || nodes[i].dead || nodes[i].version != version {
                    continue;
                }
                // Enumeration step, panic-isolated: a crashing backend is
                // recorded as a fault and the step counts as failed, so the
                // queue (and the sibling subproblems) keep running.
                let result = {
                    let _span = span!(tracer, Stage::Enumerate, i)
                        .with_detail(|| format!("height={h}"));
                    catch_unwind(AssertUnwindSafe(|| {
                        self.backend
                            .solve_step(&nodes[i].problem, h, &nodes[i].examples)
                    }))
                    .unwrap_or_else(|payload| FixedHeightResult::Fault(panic_message(&*payload)))
                };
                match result {
                    FixedHeightResult::Solved(body) => {
                        let accepted = self.on_solved(
                            i,
                            body,
                            &mut nodes,
                            &mut ded_queue,
                            &mut enum_queue,
                            stats,
                        );
                        if accepted {
                            stats.solved_by_enumeration += 1;
                            tracer.graph_event(|| GraphEvent::Solved {
                                id: i,
                                engine: "enumeration",
                            });
                        } else {
                            // A wrapper produced an unverifiable candidate:
                            // keep searching this node at the next height.
                            let next = h + self.backend.stride();
                            if next <= self.backend.max_steps() {
                                enum_queue.push(Reverse((next, usize::MAX - i, i, version)));
                            }
                        }
                    }
                    FixedHeightResult::Timeout => {
                        // The backend saw the shared budget trip; let the
                        // loop head translate it (timeout vs exhaustion).
                        if let Some(stop) = self.interrupted() {
                            return stop;
                        }
                        return SynthOutcome::Timeout;
                    }
                    FixedHeightResult::Fault(message) => {
                        stats.faults.push(EngineFault {
                            stage: "enumerate",
                            node: i,
                            message,
                        });
                        // The step counts as failed; the queue continues.
                        let next = h + self.backend.stride();
                        if next <= self.backend.max_steps() {
                            enum_queue.push(Reverse((next, usize::MAX - i, i, version)));
                        }
                    }
                    FixedHeightResult::NoSolution | FixedHeightResult::Failed(_) => {
                        let next = h + self.backend.stride();
                        if next <= self.backend.max_steps() {
                            enum_queue.push(Reverse((next, usize::MAX - i, i, version)));
                        }
                    }
                }
                continue;
            }
            return SynthOutcome::GaveUp("search space exhausted".into());
        }
    }

    /// Records a raw solution of node `i` (over its *current* problem),
    /// unwinds the wrappers, verifies, and fires Type-B at the parents
    /// (lines 19–22). Returns whether the solution was accepted.
    #[allow(clippy::too_many_arguments)]
    fn on_solved(
        &self,
        i: usize,
        raw: Term,
        nodes: &mut Vec<Node>,
        ded_queue: &mut VecDeque<usize>,
        enum_queue: &mut BinaryHeap<Reverse<(usize, usize, usize, u64)>>,
        stats: &mut CoopStats,
    ) -> bool {
        let mut body = raw;
        for w in nodes[i].wrappers.iter().rev() {
            body = w(body);
        }
        if !self.verifier.verify(&nodes[i].original, &body, &self.budget) {
            // A wrapper or rule produced an unverifiable candidate: treat
            // the node as unsolved and let enumeration continue.
            return false;
        }
        nodes[i].solution = Some(body.clone());
        if i == 0 {
            return true;
        }
        let links: Vec<(usize, Division)> = nodes[i]
            .parents
            .iter()
            .filter(|l| !l.fired)
            .map(|l| (l.parent, l.division.clone()))
            .collect();
        for l in nodes[i].parents.iter_mut() {
            l.fired = true;
        }
        for (parent, division) in links {
            self.fire_type_b(
                parent, &division, &body, nodes, ded_queue, enum_queue, stats,
            );
        }
        true
    }

    /// `TypeBSubproblem` of Algorithm 1: consume a child's solution at a
    /// parent.
    #[allow(clippy::too_many_arguments)]
    fn fire_type_b(
        &self,
        parent: usize,
        division: &Division,
        child_solution: &Term,
        nodes: &mut Vec<Node>,
        ded_queue: &mut VecDeque<usize>,
        enum_queue: &mut BinaryHeap<Reverse<(usize, usize, usize, u64)>>,
        stats: &mut CoopStats,
    ) {
        if nodes[parent].solution.is_some() || nodes[parent].dead {
            return;
        }
        stats.type_b_fired += 1;
        let tracer = self.budget.tracer();
        let _span = span!(tracer, Stage::TypeB, parent);
        // Type-B recombination is panic-isolated like every other step.
        let recombined = catch_unwind(AssertUnwindSafe(|| {
            division.type_b(&nodes[parent].problem, child_solution)
        }));
        let recombined = match recombined {
            Ok(o) => o,
            Err(payload) => {
                stats.record_fault("type-b", parent, &*payload);
                return;
            }
        };
        match recombined {
            TypeBOutcome::Solved(body) => {
                if self.on_solved(parent, body, nodes, ded_queue, enum_queue, stats) {
                    tracer.graph_event(|| GraphEvent::Solved {
                        id: parent,
                        engine: "type-b",
                    });
                }
            }
            TypeBOutcome::Subproblem { problem, wrap } => {
                // A vacuous Type-A solution (e.g. `false` under ∨) leaves
                // the parent spec unchanged modulo renaming; replacing the
                // problem would only churn. Keep searching the current one.
                if node_key(&problem) == node_key(&nodes[parent].problem) {
                    return;
                }
                nodes[parent].problem = problem;
                nodes[parent].wrappers.push(wrap);
                nodes[parent].version += 1;
                nodes[parent].examples = ExamplePool::default();
                nodes[parent].divided = false; // the new problem may divide again
                ded_queue.push_back(parent);
            }
        }
    }
}

/// A short human-readable label for the DOT sink (the spec, truncated).
fn node_label(p: &Problem) -> String {
    let spec = p.spec().to_string();
    let mut label: String = spec.chars().take(48).collect();
    if label.len() < spec.len() {
        label.push_str("...");
    }
    label
}

/// The static counter name for a division strategy (allocation-free on the
/// hot path; strategies are a closed set).
fn division_counter(strategy: &str) -> &'static str {
    match strategy {
        "subterm" => "divide.subterm",
        "fixed-term" => "divide.fixed-term",
        "weaker-spec-and" => "divide.weaker-spec-and",
        "weaker-spec-or" => "divide.weaker-spec-or",
        _ => "divide.other",
    }
}

/// A canonical key for subproblem sharing: the spec with the target
/// function's name abstracted, plus parameters and grammar shape.
fn node_key(p: &Problem) -> String {
    let fname = p.synth_fun.name.as_str();
    let spec = p.spec().to_string().replace(fname, "?f");
    let params: Vec<String> = p
        .synth_fun
        .params
        .iter()
        .map(|(v, s)| format!("{v}:{s}"))
        .collect();
    format!(
        "{}|{}|{}|{}",
        spec,
        params.join(","),
        p.synth_fun.ret,
        p.synth_fun.grammar
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DivideConfig, FixedHeightBackend, FixedHeightConfig};
    use sygus_parser::parse_problem;

    fn coop_with_budget(budget: Budget) -> CooperativeSolver {
        CooperativeSolver::new(
            DeductionConfig {
                budget: budget.clone(),
            },
            Divider::new(DivideConfig {
                budget: budget.clone(),
                ..DivideConfig::default()
            }),
            Arc::new(FixedHeightBackend::new(
                FixedHeightConfig {
                    budget: budget.clone(),
                    ..FixedHeightConfig::default()
                },
                5,
            )),
            budget,
        )
    }

    fn coop() -> CooperativeSolver {
        // Tests run with a generous safety deadline so a regression can
        // never hang the suite.
        coop_with_budget(Budget::from_timeout(std::time::Duration::from_secs(120)))
    }

    fn assert_solves(src: &str) -> Term {
        let p = parse_problem(src).unwrap();
        match coop().solve(&p) {
            SynthOutcome::Solved(t) => {
                assert!(verify_solution(&p, &t, None), "unverified solution {t}");
                t
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn solves_identity() {
        assert_solves(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) x))(check-synth)",
        );
    }

    #[test]
    fn solves_max2_by_deduction_alone() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun max2 ((x Int) (y Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint (>= (max2 x y) x))(constraint (>= (max2 x y) y))\
             (constraint (or (= (max2 x y) x) (= (max2 x y) y)))(check-synth)",
        )
        .unwrap();
        let (outcome, stats) = coop().solve_with_stats(&p);
        assert!(matches!(outcome, SynthOutcome::Solved(_)));
        assert!(stats.solved_by_deduction >= 1, "{stats:?}");
    }

    #[test]
    fn deduction_only_mode_gives_up_on_enumeration_problems() {
        // Multi-invocation symmetric spec needs enumeration.
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)\
             (declare-var a Int)(declare-var b Int)\
             (constraint (= (f a) (f b)))(check-synth)",
        )
        .unwrap();
        match coop().deduction_only().solve(&p) {
            SynthOutcome::GaveUp(_) => {}
            other => panic!("expected give-up, got {other:?}"),
        }
        // …while the full solver handles it.
        assert!(matches!(coop().solve(&p), SynthOutcome::Solved(_)));
    }

    #[test]
    fn enumeration_only_mode_still_solves() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun max2 ((x Int) (y Int)) Int)\
             (declare-var x Int)(declare-var y Int)\
             (constraint (>= (max2 x y) x))(constraint (>= (max2 x y) y))\
             (constraint (or (= (max2 x y) x) (= (max2 x y) y)))(check-synth)",
        )
        .unwrap();
        let (outcome, stats) = coop().enumeration_only().solve_with_stats(&p);
        assert!(matches!(outcome, SynthOutcome::Solved(_)), "{outcome:?}");
        assert_eq!(stats.solved_by_deduction, 0);
        assert!(stats.solved_by_enumeration >= 1);
    }

    #[test]
    fn solves_paper_example_max3_in_qm_grammar() {
        // Example 2.12/3.2: max3 over the qm grammar, via subterm division.
        let t = assert_solves(
            r#"
            (set-logic LIA)
            (define-fun qm ((a Int) (b Int)) Int (ite (< a 0) b a))
            (synth-fun max3 ((x Int) (y Int) (z Int)) Int
                ((S Int (x y z 0 1 (+ S S) (- S S) (qm S S)))))
            (declare-var x Int)
            (declare-var y Int)
            (declare-var z Int)
            (constraint (= (max3 x y z)
                (ite (and (>= x y) (>= x z)) x (ite (>= y z) y z))))
            (check-synth)
        "#,
        );
        // The solution must stay within the qm grammar (no raw ite).
        assert!(!t.to_string().contains("ite"), "solution uses ite: {t}");
    }

    #[test]
    fn solves_simple_invariant() {
        // Example 2.14: x=0; while (x<100) x++; assert x==100.
        let t = assert_solves(
            r#"
            (set-logic LIA)
            (synth-inv inv ((x Int)))
            (define-fun pre ((x Int)) Bool (= x 0))
            (define-fun trans ((x Int) (x! Int)) Bool (= x! (ite (< x 100) (+ x 1) x)))
            (define-fun post ((x Int)) Bool (=> (not (< x 100)) (= x 100)))
            (inv-constraint inv pre trans post)
            (check-synth)
        "#,
        );
        assert_eq!(t.sort(), sygus_ast::Sort::Bool);
    }

    #[test]
    fn gives_up_on_unsatisfiable_spec() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var a Int)\
             (constraint (> a a))(check-synth)",
        )
        .unwrap();
        match coop().solve(&p) {
            SynthOutcome::GaveUp(msg) => assert!(msg.contains("unsatisfiable"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timeout_propagates() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) x))(check-synth)",
        )
        .unwrap();
        let solver = coop_with_budget(Budget::from_timeout(std::time::Duration::ZERO));
        assert_eq!(solver.solve(&p), SynthOutcome::Timeout);
    }

    #[test]
    fn cancellation_maps_to_resource_exhausted() {
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) x))(check-synth)",
        )
        .unwrap();
        let solver = coop();
        solver.budget().cancel();
        match solver.solve(&p) {
            SynthOutcome::ResourceExhausted(reason) => {
                assert!(reason.contains("cancel"), "{reason}");
            }
            other => panic!("cancelled run reported {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_reports_resource_outcome() {
        // Multi-invocation spec forces enumeration; one fuel unit cannot
        // finish it, so the run must end in ResourceExhausted (not hang,
        // not claim a timeout).
        let p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)\
             (declare-var a Int)(declare-var b Int)\
             (constraint (= (f a) (f b)))(check-synth)",
        )
        .unwrap();
        let budget = Budget::unlimited().with_fuel(1);
        let (outcome, stats) = coop_with_budget(budget).solve_with_stats(&p);
        assert!(
            matches!(outcome, SynthOutcome::ResourceExhausted(_)),
            "{outcome:?}"
        );
        assert!(stats.fuel_spent >= 1, "{stats:?}");
    }

    #[test]
    fn stats_count_divisions_and_type_b() {
        // The qm max3 example forces subterm division + a Type-B step.
        let p = parse_problem(
            r#"
            (set-logic LIA)
            (define-fun qm ((a Int) (b Int)) Int (ite (< a 0) b a))
            (synth-fun max3 ((x Int) (y Int) (z Int)) Int
                ((S Int (x y z 0 1 (+ S S) (- S S) (qm S S)))))
            (declare-var x Int)
            (declare-var y Int)
            (declare-var z Int)
            (constraint (= (max3 x y z)
                (ite (and (>= x y) (>= x z)) x (ite (>= y z) y z))))
            (check-synth)
        "#,
        )
        .unwrap();
        let (outcome, stats) = coop().solve_with_stats(&p);
        assert!(matches!(outcome, SynthOutcome::Solved(_)), "{outcome:?}");
        assert!(
            stats
                .divisions_proposed
                .iter()
                .any(|&(s, n)| s == "subterm" && n > 0),
            "{stats:?}"
        );
        assert!(stats.type_b_fired >= 1, "{stats:?}");
        assert!(stats.nodes >= 2, "{stats:?}");
    }

    #[test]
    fn node_keys_share_subproblems() {
        let p1 = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var a Int)\
             (constraint (= (f a) a))(check-synth)",
        )
        .unwrap();
        let mut p2 = p1.clone();
        p2.synth_fun.name = sygus_ast::Symbol::new("g_renamed");
        // Same spec modulo the function name: keys must still differ because
        // constraints mention the old name — rename constraints too.
        let key1 = node_key(&p1);
        assert!(key1.contains("?f"));
    }
}
