//! Engine-level resource governance and fault isolation.
//!
//! The shared [`Budget`] handle (defined in `sygus-ast` so every crate can
//! use it without dependency cycles) is re-exported here; [`EngineFault`]
//! records a panic that the cooperative driver caught and contained.

pub use sygus_ast::runtime::{Budget, BudgetError};

use std::any::Any;
use std::fmt;

/// A panic caught and contained by the cooperative driver. The run
/// continues; the fault is reported in
/// [`CoopStats::faults`](crate::CoopStats::faults) and reflected in the CLI
/// exit code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineFault {
    /// The engine stage that failed: `"deduct"`, `"divide"`,
    /// `"enumerate"`, `"type-b"`, `"worker"` (contained panics), or
    /// `"certify"` (a solution that flunked certification).
    pub stage: &'static str,
    /// Subproblem-graph node index (or worker index for `"worker"`) the
    /// stage was operating on.
    pub node: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl fmt::Display for EngineFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault in {} (node {}): {}",
            self.stage, self.node, self.message
        )
    }
}

/// Renders a `catch_unwind` payload as text. Panics raised via `panic!`
/// carry a `&str` or `String`; anything else gets a placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn panic_messages_are_extracted() {
        let p = catch_unwind(AssertUnwindSafe(|| panic!("static str"))).unwrap_err();
        assert_eq!(panic_message(&*p), "static str");
        let n = 7;
        let p = catch_unwind(AssertUnwindSafe(|| panic!("formatted {n}"))).unwrap_err();
        assert_eq!(panic_message(&*p), "formatted 7");
        let p = catch_unwind(AssertUnwindSafe(|| std::panic::panic_any(42u32))).unwrap_err();
        assert_eq!(panic_message(&*p), "non-string panic payload");
    }

    #[test]
    fn fault_display_is_readable() {
        let f = EngineFault {
            stage: "enumerate",
            node: 3,
            message: "boom".into(),
        };
        assert_eq!(f.to_string(), "fault in enumerate (node 3): boom");
    }
}
