//! Loop summarization for invariant synthesis (Section 6, "Loop Summary
//! for Invariant Synthesis" / Appendix A): for *acyclic translational*
//! loops — guarded simultaneous translations `x := x + c` — the k-step
//! transition relation `fast-trans(x, y) ⇔ ∃k ≥ 0. transᵏ(x) = y` has a
//! linear closed form.
//!
//! The resulting constraint `pre(x) ∧ fast-trans(x, y) → inv(y)` is implied
//! by the original spec (any inductive invariant contains every reachable
//! state), so adding it preserves the solution set while pruning the search
//! dramatically.

use sygus_ast::{conjuncts, simplify, InvInfo, Op, Problem, Sort, Symbol, Term, TermNode};

/// A recognized guarded translation: `xᵢ' = ite(guard, xᵢ + stepᵢ, xᵢ)`
/// (or unguarded `xᵢ' = xᵢ + stepᵢ`, represented with guard `true`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Per-variable step constants, aligned with [`InvInfo::vars`].
    pub steps: Vec<i64>,
    /// The shared loop guard over the unprimed variables (a conjunction of
    /// linear comparisons; `true` for unguarded loops).
    pub guard: Term,
}

/// Attempts to recognize the transition relation of an INV problem as a
/// guarded translation.
///
/// The transition definition must be a conjunction of equalities
/// `xᵢ' = eᵢ` where every `eᵢ` is `xᵢ + cᵢ`, `ite(G, xᵢ + cᵢ, xᵢ)` with a
/// shared `G`, or `xᵢ` (step 0). The guard must be a conjunction of linear
/// comparisons so that convexity makes endpoint checks sufficient.
pub fn recognize_translation(problem: &Problem) -> Option<Translation> {
    let info = problem.inv.as_ref()?;
    let trans_def = problem.definitions.get(info.trans)?;
    // The trans definition's own parameter names (first n unprimed, next n
    // primed).
    let n = info.vars.len();
    if trans_def.params.len() != 2 * n {
        return None;
    }
    let unprimed: Vec<Symbol> = trans_def.params[..n].iter().map(|&(v, _)| v).collect();
    let primed: Vec<Symbol> = trans_def.params[n..].iter().map(|&(v, _)| v).collect();
    let body = simplify(&trans_def.body);
    let eqs = conjuncts(&body);
    if eqs.len() != n {
        return None;
    }
    let mut steps: Vec<Option<i64>> = vec![None; n];
    let mut guard: Option<Term> = None;
    for eq in &eqs {
        let (op, args) = eq.as_app()?;
        if *op != Op::Eq {
            return None;
        }
        // One side is a primed variable.
        let (pv, rhs) = match (args[0].as_var(), args[1].as_var()) {
            (Some(v), _) if primed.contains(&v) => (v, &args[1]),
            (_, Some(v)) if primed.contains(&v) => (v, &args[0]),
            _ => return None,
        };
        let i = primed.iter().position(|&p| p == pv)?;
        let (step, this_guard) = recognize_update(rhs, unprimed[i])?;
        if steps[i].is_some() {
            return None; // duplicate update
        }
        steps[i] = Some(step);
        if let Some(g) = this_guard {
            match &guard {
                None => guard = Some(g),
                Some(existing) if *existing == g => {}
                _ => return None, // differing guards
            }
        }
    }
    let steps: Option<Vec<i64>> = steps.into_iter().collect();
    let steps = steps?;
    if steps.iter().all(|&s| s == 0) {
        return None; // stationary loop: nothing to summarize
    }
    // Need a unit-step pivot to express k linearly.
    if !steps.iter().any(|&s| s.abs() == 1) {
        return None;
    }
    let guard = guard.unwrap_or_else(Term::tt);
    if !is_linear_conjunction(&guard) {
        return None;
    }
    // Rename the trans-definition parameter names to the problem's variable
    // names (they usually coincide, but do not have to).
    let rename: std::collections::BTreeMap<Symbol, Term> = unprimed
        .iter()
        .zip(&info.vars)
        .map(|(&p, &(v, s))| (p, Term::var(v, s)))
        .collect();
    Some(Translation {
        steps,
        guard: guard.subst_vars(&rename),
    })
}

/// Recognizes `x + c`, `ite(G, x + c, x)`, or `x` for a specific unprimed
/// variable; returns the step and the optional guard.
fn recognize_update(rhs: &Term, x: Symbol) -> Option<(i64, Option<Term>)> {
    if rhs.as_var() == Some(x) {
        return Some((0, None));
    }
    if let Some(c) = offset_of(rhs, x) {
        return Some((c, None));
    }
    if let TermNode::App(Op::Ite, args) = rhs.node() {
        let g = args[0].clone();
        // ite(G, x + c, x)
        if args[2].as_var() == Some(x) {
            if let Some(c) = offset_of(&args[1], x) {
                return Some((c, Some(g)));
            }
        }
        // ite(G, x, x + c) — guard negated
        if args[1].as_var() == Some(x) {
            if let Some(c) = offset_of(&args[2], x) {
                return Some((c, Some(Term::not(g))));
            }
        }
    }
    None
}

/// `rhs = x + c` (any association) returns `c`.
fn offset_of(rhs: &Term, x: Symbol) -> Option<i64> {
    let lin = sygus_ast::LinearExpr::from_term(rhs).ok()?;
    if lin.coeff(x) != 1 {
        return None;
    }
    if lin.iter().any(|(v, c)| v != x && c != 0) {
        return None;
    }
    Some(lin.constant())
}

fn is_linear_conjunction(guard: &Term) -> bool {
    conjuncts(guard).iter().all(|c| {
        c.as_bool_const().is_some()
            || c.as_app().is_some_and(|(op, args)| {
                op.is_comparison()
                    && sygus_ast::LinearExpr::from_term(&args[0]).is_ok()
                    && sygus_ast::LinearExpr::from_term(&args[1]).is_ok()
            })
    })
}

/// Builds the closed form `fast-trans(x, y)` for a recognized translation:
///
/// `y = x  ∨  (k ≥ 1 ∧ same-k ∧ guard(x) ∧ guard(y − c))`
///
/// where `k` is read off a unit-step pivot variable and convexity of the
/// linear guard makes the two endpoint checks cover all intermediate steps.
pub fn fast_trans(info: &InvInfo, t: &Translation) -> Term {
    let x: Vec<Term> = info.vars.iter().map(|&(v, s)| Term::var(v, s)).collect();
    let y: Vec<Term> = info
        .primed_vars
        .iter()
        .map(|&(v, s)| Term::var(v, s))
        .collect();
    let n = x.len();
    // y = x
    let stay = Term::and((0..n).map(|i| Term::eq(y[i].clone(), x[i].clone())));
    // Pivot with |step| = 1.
    let pivot = (0..n)
        .find(|&i| t.steps[i].abs() == 1)
        .expect("recognizer guarantees a unit pivot");
    let sign = t.steps[pivot];
    // k = sign · (y_p − x_p) ≥ 1
    let k = Term::scale(sign, Term::sub(y[pivot].clone(), x[pivot].clone()));
    let k_ge_1 = Term::ge(k, Term::int(1));
    // Same k for every variable: step_p · (y_i − x_i) = step_i · (y_p − x_p).
    let same_k = Term::and((0..n).filter(|&i| i != pivot).map(|i| {
        Term::eq(
            Term::scale(t.steps[pivot], Term::sub(y[i].clone(), x[i].clone())),
            Term::scale(t.steps[i], Term::sub(y[pivot].clone(), x[pivot].clone())),
        )
    }));
    // guard(x) and guard(y − c).
    let guard_at_x = t.guard.clone();
    let back_one: std::collections::BTreeMap<Symbol, Term> = info
        .vars
        .iter()
        .enumerate()
        .map(|(i, &(v, _))| (v, Term::sub(y[i].clone(), Term::int(t.steps[i]))))
        .collect();
    let guard_at_last = t.guard.subst_vars(&back_one);
    let moved = Term::and([k_ge_1, same_k, guard_at_x, guard_at_last]);
    simplify(&Term::or([stay, moved]))
}

/// If the INV problem's loop is summarizable, returns the reachability
/// constraint `pre(x) ∧ fast-trans(x, y) → inv(y)` to *add* to the spec.
///
/// Adding it is sound and complete: every inductive invariant contains all
/// reachable states, so no solution is lost; the constraint guides the
/// inductive synthesizer straight to reachability-respecting candidates.
pub fn summarize(problem: &Problem) -> Option<Term> {
    let info = problem.inv.as_ref()?;
    let t = recognize_translation(problem)?;
    let ft = fast_trans(info, &t);
    let pre_def = problem.definitions.get(info.pre)?;
    let x_terms: Vec<Term> = info.vars.iter().map(|&(v, s)| Term::var(v, s)).collect();
    let y_terms: Vec<Term> = info
        .primed_vars
        .iter()
        .map(|&(v, s)| Term::var(v, s))
        .collect();
    let pre_x = pre_def.instantiate(&x_terms);
    let inv_y = Term::apply(problem.synth_fun.name, Sort::Bool, y_terms);
    Some(Term::implies(Term::and([pre_x, ft]), inv_y))
}

/// Applies [`summarize`] in place; returns whether the spec was extended.
pub fn strengthen_with_summary(problem: &mut Problem) -> bool {
    match summarize(problem) {
        Some(c) => {
            problem.constraints.push(c);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtkit::{SmtSolver, Validity};
    use sygus_parser::parse_problem;

    const COUNTER: &str = r#"
        (set-logic LIA)
        (synth-inv inv ((x Int)))
        (define-fun pre ((x Int)) Bool (= x 0))
        (define-fun trans ((x Int) (x! Int)) Bool (= x! (ite (< x 100) (+ x 1) x)))
        (define-fun post ((x Int)) Bool (=> (not (< x 100)) (= x 100)))
        (inv-constraint inv pre trans post)
        (check-synth)
    "#;

    #[test]
    fn recognizes_guarded_counter() {
        let p = parse_problem(COUNTER).unwrap();
        let t = recognize_translation(&p).expect("translational");
        assert_eq!(t.steps, vec![1]);
        assert_eq!(t.guard.to_string(), "(< x 100)");
    }

    #[test]
    fn recognizes_unguarded_translation() {
        let p = parse_problem(
            r#"
            (set-logic LIA)
            (synth-inv inv ((x Int) (y Int)))
            (define-fun pre ((x Int) (y Int)) Bool (and (= x 0) (= y 0)))
            (define-fun trans ((x Int) (y Int) (x! Int) (y! Int)) Bool
                (and (= x! (+ x 1)) (= y! (+ y 2))))
            (define-fun post ((x Int) (y Int)) Bool (>= y x))
            (inv-constraint inv pre trans post)
            (check-synth)
        "#,
        )
        .unwrap();
        let t = recognize_translation(&p).expect("translational");
        assert_eq!(t.steps, vec![1, 2]);
        assert_eq!(t.guard, Term::tt());
    }

    #[test]
    fn rejects_non_translational() {
        // x' = 2x is not a translation.
        let p = parse_problem(
            r#"
            (set-logic LIA)
            (synth-inv inv ((x Int)))
            (define-fun pre ((x Int)) Bool (= x 1))
            (define-fun trans ((x Int) (x! Int)) Bool (= x! (* 2 x)))
            (define-fun post ((x Int)) Bool (>= x 1))
            (inv-constraint inv pre trans post)
            (check-synth)
        "#,
        )
        .unwrap();
        assert!(recognize_translation(&p).is_none());
    }

    #[test]
    fn rejects_without_unit_pivot() {
        // All steps have magnitude 2: k is not linearly expressible.
        let p = parse_problem(
            r#"
            (set-logic LIA)
            (synth-inv inv ((x Int)))
            (define-fun pre ((x Int)) Bool (= x 0))
            (define-fun trans ((x Int) (x! Int)) Bool (= x! (+ x 2)))
            (define-fun post ((x Int)) Bool (>= x 0))
            (inv-constraint inv pre trans post)
            (check-synth)
        "#,
        )
        .unwrap();
        assert!(recognize_translation(&p).is_none());
    }

    #[test]
    fn fast_trans_semantics_on_counter() {
        let p = parse_problem(COUNTER).unwrap();
        let info = p.inv.as_ref().unwrap();
        let t = recognize_translation(&p).unwrap();
        let ft = fast_trans(info, &t);
        let defs = sygus_ast::Definitions::new();
        let x = Symbol::new("x");
        let xp = Symbol::new("x!");
        // Simulate the loop from x=0: states 0..=100 are exactly the y with
        // fast_trans(0, y).
        for y in -3i64..=103 {
            let env = sygus_ast::Env::from_pairs(
                &[x, xp],
                &[sygus_ast::Value::Int(0), sygus_ast::Value::Int(y)],
            );
            let got = ft.eval(&env, &defs).expect("eval");
            let expected = (0..=100).contains(&y);
            assert_eq!(got, sygus_ast::Value::Bool(expected), "fast_trans(0, {y})");
        }
        // From x=42 only 42..=100 are reachable.
        for y in [41, 42, 55, 100, 101] {
            let env = sygus_ast::Env::from_pairs(
                &[x, xp],
                &[sygus_ast::Value::Int(42), sygus_ast::Value::Int(y)],
            );
            let got = ft.eval(&env, &defs).expect("eval");
            assert_eq!(
                got,
                sygus_ast::Value::Bool((42..=100).contains(&y)),
                "fast_trans(42, {y})"
            );
        }
    }

    #[test]
    fn summary_constraint_is_implied_by_true_invariant() {
        // The summary constraint must accept the actual invariant
        // 0 ≤ x ≤ 100 (soundness of strengthening).
        let p = parse_problem(COUNTER).unwrap();
        let summary = summarize(&p).expect("summarizable");
        let xv = Term::int_var("x");
        let inv_body = Term::and([
            Term::ge(xv.clone(), Term::int(0)),
            Term::le(xv, Term::int(100)),
        ]);
        let def = sygus_ast::FuncDef::new(p.synth_fun.params.clone(), Sort::Bool, inv_body);
        let instantiated = summary.instantiate_func(p.synth_fun.name, &def);
        assert_eq!(
            SmtSolver::new().check_valid(&instantiated),
            Ok(Validity::Valid)
        );
    }

    #[test]
    fn strengthen_adds_one_constraint() {
        let mut p = parse_problem(COUNTER).unwrap();
        let before = p.constraints.len();
        assert!(strengthen_with_summary(&mut p));
        assert_eq!(p.constraints.len(), before + 1);
    }

    #[test]
    fn non_inv_problem_not_summarized() {
        let mut p = parse_problem(
            "(set-logic LIA)(synth-fun f ((x Int)) Int)(declare-var x Int)\
             (constraint (= (f x) x))(check-synth)",
        )
        .unwrap();
        assert!(!strengthen_with_summary(&mut p));
    }
}
