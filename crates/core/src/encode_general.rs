//! Fixed-height symbolic encoding for *arbitrary* grammars (the "extension
//! to general grammar" of Section 5.2).
//!
//! Every tree position carries, per grammar non-terminal, an integer
//! *selector* unknown choosing among the productions feasible at that depth;
//! `(Constant Int)` productions contribute shared constant unknowns.
//! Interpreting the tree on a concrete counterexample yields a term over
//! selectors and constants only, so the inductive query stays in QF_LIA.
//! Interpreted grammar operators (e.g. the paper's `qm`) are inlined with
//! their definitions during interpretation, exactly like the adapted
//! `interpret` functions in the paper.

use smtkit::Model;
use sygus_ast::{Definitions, GTerm, Grammar, NonterminalId, Op, Sort, Symbol, Term, Value};
/// Per-(position, non-terminal) encoding state.
#[derive(Clone, Debug)]
struct NtSlot {
    /// Selector unknown (integer, range `0..feasible.len()`).
    selector: Symbol,
    /// Feasible production indices at this depth.
    feasible: Vec<usize>,
    /// Constant unknowns per feasible production (one per `AnyConst`
    /// occurrence, traversal order).
    consts: Vec<Vec<Symbol>>,
}

#[derive(Clone, Debug)]
struct PosNode {
    depth: usize,
    children: Vec<usize>,
    /// Indexed by non-terminal id; `None` when nothing is derivable there.
    slots: Vec<Option<NtSlot>>,
}

/// Symbolic fixed-height encoding of an arbitrary expression grammar.
#[derive(Clone, Debug)]
pub struct GeneralEncoding {
    grammar: Grammar,
    defs: Definitions,
    params: Vec<(Symbol, Sort)>,
    max_arity: usize,
    positions: Vec<PosNode>,
}

/// Number of non-terminal references in a production pattern (the child
/// slots it consumes).
fn nt_children(pat: &GTerm, out: &mut Vec<NonterminalId>) {
    match pat {
        GTerm::Nonterminal(id) => out.push(*id),
        GTerm::App(_, args) => {
            for a in args {
                nt_children(a, out);
            }
        }
        _ => {}
    }
}

fn count_any_consts(pat: &GTerm) -> usize {
    match pat {
        GTerm::AnyConst(_) => 1,
        GTerm::App(_, args) => args.iter().map(count_any_consts).sum(),
        _ => 0,
    }
}

/// Expands `AnyVar` productions into explicit `Var` productions over the
/// parameters, so the encoder only deals with deterministic leaves.
fn expand_any_vars(grammar: &Grammar, params: &[(Symbol, Sort)]) -> Grammar {
    fn expand(pat: &GTerm, params: &[(Symbol, Sort)]) -> Vec<GTerm> {
        match pat {
            GTerm::AnyVar(s) => params
                .iter()
                .filter(|&&(_, ps)| ps == *s)
                .map(|&(p, ps)| GTerm::Var(p, ps))
                .collect(),
            GTerm::App(op, args) => {
                let mut acc: Vec<Vec<GTerm>> = vec![Vec::new()];
                for a in args {
                    let opts = expand(a, params);
                    let mut next = Vec::new();
                    for prefix in &acc {
                        for o in &opts {
                            let mut p = prefix.clone();
                            p.push(o.clone());
                            next.push(p);
                        }
                    }
                    acc = next;
                }
                acc.into_iter().map(|args| GTerm::App(*op, args)).collect()
            }
            other => vec![other.clone()],
        }
    }
    let mut g = Grammar::new();
    for nt in grammar.nonterminals() {
        g.add_nonterminal(nt.name, nt.sort);
    }
    g.set_start(grammar.start());
    for (i, nt) in grammar.nonterminals().iter().enumerate() {
        for p in &nt.productions {
            for expanded in expand(p, params) {
                g.add_production(i, expanded);
            }
        }
    }
    g
}

impl GeneralEncoding {
    /// Builds the encoding, or `None` when the grammar derives nothing
    /// within `height` levels from the start symbol.
    pub fn new(
        grammar: &Grammar,
        defs: &Definitions,
        params: &[(Symbol, Sort)],
        height: usize,
    ) -> Option<GeneralEncoding> {
        assert!((1..=12).contains(&height), "unreasonable height");
        let grammar = expand_any_vars(grammar, params);
        let n_nts = grammar.nonterminals().len();
        // feasible_at[d][nt] for d in 1..=height (computed bottom-up).
        let mut feasible_at: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n_nts]; height + 1];
        for depth in (1..=height).rev() {
            for nt in 0..n_nts {
                let mut feas = Vec::new();
                for (pi, prod) in grammar.nonterminal(nt).productions.iter().enumerate() {
                    let mut kids = Vec::new();
                    nt_children(prod, &mut kids);
                    let ok = if depth == height {
                        kids.is_empty()
                    } else {
                        kids.iter().all(|&k| !feasible_at[depth + 1][k].is_empty())
                    };
                    if ok {
                        feas.push(pi);
                    }
                }
                feasible_at[depth][nt] = feas;
            }
        }
        if feasible_at[1][grammar.start()].is_empty() {
            return None;
        }
        let max_arity = grammar
            .nonterminals()
            .iter()
            .flat_map(|nt| &nt.productions)
            .map(|p| {
                let mut kids = Vec::new();
                nt_children(p, &mut kids);
                kids.len()
            })
            .max()
            .unwrap_or(0);

        // Build the position tree breadth-first.
        let mut positions: Vec<PosNode> = Vec::new();
        let mut queue: Vec<(usize, usize)> = Vec::new(); // (pos index, depth)
        positions.push(PosNode {
            depth: 1,
            children: Vec::new(),
            slots: Vec::new(),
        });
        queue.push((0, 1));
        let mut qi = 0;
        while qi < queue.len() {
            let (pos, depth) = queue[qi];
            qi += 1;
            if depth < height && max_arity > 0 {
                for _ in 0..max_arity {
                    let child = positions.len();
                    positions.push(PosNode {
                        depth: depth + 1,
                        children: Vec::new(),
                        slots: Vec::new(),
                    });
                    positions[pos].children.push(child);
                    queue.push((child, depth + 1));
                }
            }
        }
        // Allocate slots.
        for position in positions.iter_mut() {
            let depth = position.depth;
            let mut slots = Vec::with_capacity(n_nts);
            for (nt, feasible) in feasible_at[depth].iter().enumerate().take(n_nts) {
                let feas = feasible.clone();
                if feas.is_empty() {
                    slots.push(None);
                    continue;
                }
                let consts = feas
                    .iter()
                    .map(|&pi| {
                        let k = count_any_consts(&grammar.nonterminal(nt).productions[pi]);
                        (0..k).map(|_| Symbol::fresh("gk")).collect()
                    })
                    .collect();
                slots.push(Some(NtSlot {
                    selector: Symbol::fresh("sel"),
                    feasible: feas,
                    consts,
                }));
            }
            position.slots = slots;
        }
        Some(GeneralEncoding {
            grammar,
            defs: defs.clone(),
            params: params.to_vec(),
            max_arity,
            positions,
        })
    }

    /// Selector-range and constant-bound side constraints.
    pub fn bound_constraints(&self, const_bound: i64) -> Term {
        let mut parts = Vec::new();
        for pos in &self.positions {
            for slot in pos.slots.iter().flatten() {
                let sel = Term::var(slot.selector, Sort::Int);
                parts.push(Term::ge(sel.clone(), Term::int(0)));
                parts.push(Term::le(sel, Term::int(slot.feasible.len() as i64 - 1)));
                for ks in &slot.consts {
                    for &k in ks {
                        let v = Term::var(k, Sort::Int);
                        parts.push(Term::ge(v.clone(), Term::int(-const_bound)));
                        parts.push(Term::le(v, Term::int(const_bound)));
                    }
                }
            }
        }
        Term::and(parts)
    }

    /// The symbolic value of the program on concrete inputs `point`
    /// (aligned with the parameters): a term over selectors and constant
    /// unknowns only.
    pub fn interpret(&self, point: &[Value]) -> Term {
        assert_eq!(point.len(), self.params.len(), "arity mismatch");
        self.value(0, self.grammar.start(), point)
    }

    fn value(&self, pos: usize, nt: NonterminalId, point: &[Value]) -> Term {
        let slot = self.positions[pos].slots[nt]
            .as_ref()
            .expect("feasibility guarantees a slot");
        let sel = Term::var(slot.selector, Sort::Int);
        // Right-fold the feasible productions into a selector ite chain.
        // Conditions use `sel ≤ i` rather than `sel = i` so the theory
        // solver never sees disequalities from negated selector atoms.
        let mut iter = slot.feasible.iter().enumerate().rev();
        let (last_idx, &last_pi) = iter.next().expect("nonempty feasible set");
        let mut consts = slot.consts[last_idx].iter();
        let mut acc = self.prod_value(pos, nt, last_pi, &mut consts, point);
        for (i, &pi) in iter {
            let mut consts = slot.consts[i].iter();
            let sem = self.prod_value(pos, nt, pi, &mut consts, point);
            acc = Term::ite(Term::le(sel.clone(), Term::int(i as i64)), sem, acc);
        }
        acc
    }

    fn prod_value<'a>(
        &self,
        pos: usize,
        nt: NonterminalId,
        pi: usize,
        consts: &mut impl Iterator<Item = &'a Symbol>,
        point: &[Value],
    ) -> Term {
        let prod = self.grammar.nonterminal(nt).productions[pi].clone();
        let mut child_iter = self.positions[pos].children.iter().copied();
        self.pat_value(&prod, &mut child_iter, consts, point)
    }

    fn pat_value<'a>(
        &self,
        pat: &GTerm,
        children: &mut impl Iterator<Item = usize>,
        consts: &mut impl Iterator<Item = &'a Symbol>,
        point: &[Value],
    ) -> Term {
        match pat {
            GTerm::Const(n) => Term::int(*n),
            GTerm::BoolConst(b) => Term::bool(*b),
            GTerm::Var(v, _) => {
                let idx = self
                    .params
                    .iter()
                    .position(|&(p, _)| p == *v)
                    .expect("grammar variable is a parameter");
                match point[idx] {
                    Value::Int(n) => Term::int(n),
                    Value::Bool(b) => Term::bool(b),
                }
            }
            GTerm::AnyConst(Sort::Int) => Term::var(
                *consts.next().expect("constant unknown allocated"),
                Sort::Int,
            ),
            GTerm::AnyConst(Sort::Bool) => Term::var(
                *consts.next().expect("constant unknown allocated"),
                Sort::Bool,
            ),
            GTerm::AnyVar(_) => unreachable!("AnyVar expanded during construction"),
            GTerm::Nonterminal(id) => {
                let child = children.next().expect("child position available");
                self.value(child, *id, point)
            }
            GTerm::App(op, args) => {
                let arg_terms: Vec<Term> = args
                    .iter()
                    .map(|a| self.pat_value(a, children, consts, point))
                    .collect();
                match op {
                    Op::Apply(f, _) => {
                        // Inline interpreted grammar operators so the query
                        // stays in QF_LIA.
                        let def = self
                            .defs
                            .get(*f)
                            .unwrap_or_else(|| panic!("grammar operator `{f}` has no definition"));
                        def.instantiate(&arg_terms)
                    }
                    _ => Term::app(*op, arg_terms),
                }
            }
        }
    }

    /// Decodes a model into a concrete grammar term over the parameters.
    /// The result is a member of the (AnyVar-expanded) grammar by
    /// construction.
    pub fn decode(&self, model: &Model) -> Term {
        self.decode_at(0, self.grammar.start(), model)
    }

    fn decode_at(&self, pos: usize, nt: NonterminalId, model: &Model) -> Term {
        let slot = self.positions[pos].slots[nt]
            .as_ref()
            .expect("feasibility guarantees a slot");
        let sel = model.int(slot.selector).to_i64().unwrap_or(0);
        let idx = (sel.max(0) as usize).min(slot.feasible.len() - 1);
        let pi = slot.feasible[idx];
        let prod = self.grammar.nonterminal(nt).productions[pi].clone();
        let mut children = self.positions[pos].children.iter().copied();
        let mut consts = slot.consts[idx].iter();
        self.decode_pat(&prod, &mut children, &mut consts, model)
    }

    fn decode_pat<'a>(
        &self,
        pat: &GTerm,
        children: &mut impl Iterator<Item = usize>,
        consts: &mut impl Iterator<Item = &'a Symbol>,
        model: &Model,
    ) -> Term {
        match pat {
            GTerm::Const(n) => Term::int(*n),
            GTerm::BoolConst(b) => Term::bool(*b),
            GTerm::Var(v, s) => Term::var(*v, *s),
            GTerm::AnyConst(Sort::Int) => {
                let k = consts.next().expect("constant unknown allocated");
                Term::int(model.int(*k).to_i64().unwrap_or(0))
            }
            GTerm::AnyConst(Sort::Bool) => {
                let k = consts.next().expect("constant unknown allocated");
                Term::bool(model.boolean(*k))
            }
            GTerm::AnyVar(_) => unreachable!("AnyVar expanded during construction"),
            GTerm::Nonterminal(id) => {
                let child = children.next().expect("child position available");
                self.decode_at(child, *id, model)
            }
            GTerm::App(op, args) => {
                let arg_terms: Vec<Term> = args
                    .iter()
                    .map(|a| self.decode_pat(a, children, consts, model))
                    .collect();
                Term::app(*op, arg_terms)
            }
        }
    }

    /// The total number of unknowns (a query-size proxy).
    pub fn num_unknowns(&self) -> usize {
        self.positions
            .iter()
            .flat_map(|p| p.slots.iter().flatten())
            .map(|s| 1 + s.consts.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// The maximum production arity (number of child slots per node).
    pub fn max_arity(&self) -> usize {
        self.max_arity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtkit::{SmtResult, SmtSolver};
    use sygus_ast::{Env, FuncDef};

    fn qm_defs() -> Definitions {
        let mut defs = Definitions::new();
        let a = Symbol::new("ga");
        let b = Symbol::new("gb");
        defs.define(
            Symbol::new("qm"),
            FuncDef::new(
                vec![(a, Sort::Int), (b, Sort::Int)],
                Sort::Int,
                Term::ite(
                    Term::lt(Term::var(a, Sort::Int), Term::int(0)),
                    Term::var(b, Sort::Int),
                    Term::var(a, Sort::Int),
                ),
            ),
        );
        defs
    }

    fn gqm(params: &[(Symbol, Sort)]) -> Grammar {
        let qm = Op::Apply(Symbol::new("qm"), Sort::Int);
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        for &(p, sort) in params {
            g.add_production(s, GTerm::Var(p, sort));
        }
        g.add_production(s, GTerm::Const(0));
        g.add_production(s, GTerm::Const(1));
        g.add_production(
            s,
            GTerm::App(Op::Add, vec![GTerm::Nonterminal(s), GTerm::Nonterminal(s)]),
        );
        g.add_production(
            s,
            GTerm::App(Op::Sub, vec![GTerm::Nonterminal(s), GTerm::Nonterminal(s)]),
        );
        g.add_production(
            s,
            GTerm::App(qm, vec![GTerm::Nonterminal(s), GTerm::Nonterminal(s)]),
        );
        g
    }

    #[test]
    fn height_one_only_leaves() {
        let x = Symbol::new("hx");
        let params = [(x, Sort::Int)];
        let enc = GeneralEncoding::new(&gqm(&params), &qm_defs(), &params, 1).expect("encodes");
        // Leaf productions: x, 0, 1 → selector range 0..=2 and no consts.
        assert_eq!(enc.num_unknowns(), 1);
        let t = enc.interpret(&[Value::Int(9)]);
        // Selector ite chain over {9, 0, 1}.
        assert!(t.to_string().contains("ite"));
    }

    #[test]
    fn infeasible_when_no_leaf_production() {
        // S -> (+ S S) only: nothing derivable at any finite height.
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        g.add_production(
            s,
            GTerm::App(Op::Add, vec![GTerm::Nonterminal(s), GTerm::Nonterminal(s)]),
        );
        let x = Symbol::new("ix");
        assert!(GeneralEncoding::new(&g, &Definitions::new(), &[(x, Sort::Int)], 3).is_none());
    }

    #[test]
    fn synthesizes_qm_based_abs_difference() {
        // Target on points: f(x, y) = qm(x - y, y - x)… keep it simpler:
        // find a height-2 Gqm term computing max(x, 0) = qm? qm(x, 0) is
        // ite(x<0, 0, x) = max(x, 0). Points: (−3 → 0), (5 → 5).
        let x = Symbol::new("qx");
        let params = [(x, Sort::Int)];
        let enc = GeneralEncoding::new(&gqm(&params), &qm_defs(), &params, 2).expect("encodes");
        let cases = [(-3i64, 0i64), (5, 5), (-1, 0), (2, 2)];
        let query = Term::and(
            cases
                .iter()
                .map(|&(input, want)| {
                    Term::eq(enc.interpret(&[Value::Int(input)]), Term::int(want))
                })
                .chain(std::iter::once(enc.bound_constraints(4))),
        );
        match SmtSolver::new().check(&query).expect("solver ok") {
            SmtResult::Sat(model) => {
                let cand = enc.decode(&model);
                let defs = qm_defs();
                for &(input, want) in &cases {
                    let env = Env::from_pairs(&[x], &[Value::Int(input)]);
                    assert_eq!(
                        cand.eval(&env, &defs),
                        Ok(Value::Int(want)),
                        "candidate {cand} at {input}"
                    );
                }
                // Membership in the original grammar.
                assert!(gqm(&params).generates(&cand), "not in grammar: {cand}");
            }
            SmtResult::Unsat => panic!("qm(x,0) exists at height 2"),
        }
    }

    #[test]
    fn decode_respects_grammar_membership() {
        let x = Symbol::new("dgx");
        let params = [(x, Sort::Int)];
        let g = gqm(&params);
        let enc = GeneralEncoding::new(&g, &qm_defs(), &params, 3).expect("encodes");
        // Arbitrary model (all defaults): decode must be a grammar member.
        let t = enc.decode(&Model::default());
        assert!(g.generates(&t), "decoded {t} not in grammar");
    }

    #[test]
    fn any_const_production_becomes_unknown() {
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        g.add_production(s, GTerm::AnyConst(Sort::Int));
        let x = Symbol::new("kx");
        let params = [(x, Sort::Int)];
        let enc = GeneralEncoding::new(&g, &Definitions::new(), &params, 1).expect("encodes");
        assert_eq!(enc.num_unknowns(), 2); // selector + one constant
                                           // Force f() = 7 on any input: sat with constant 7 decoded.
        let q = Term::and([
            Term::eq(enc.interpret(&[Value::Int(0)]), Term::int(7)),
            enc.bound_constraints(10),
        ]);
        match SmtSolver::new().check(&q).unwrap() {
            SmtResult::Sat(m) => assert_eq!(enc.decode(&m), Term::int(7)),
            SmtResult::Unsat => panic!("constant grammar must fit"),
        }
    }

    #[test]
    fn any_var_expansion() {
        let mut g = Grammar::new();
        let s = g.add_nonterminal("S", Sort::Int);
        g.add_production(s, GTerm::AnyVar(Sort::Int));
        let x = Symbol::new("avx");
        let y = Symbol::new("avy");
        let params = [(x, Sort::Int), (y, Sort::Int)];
        let enc = GeneralEncoding::new(&g, &Definitions::new(), &params, 1).expect("encodes");
        // f(x,y) = y on point (1, 2): selector must pick y.
        let q = Term::eq(enc.interpret(&[Value::Int(1), Value::Int(2)]), Term::int(2));
        match SmtSolver::new()
            .check(&Term::and([q, enc.bound_constraints(1)]))
            .unwrap()
        {
            SmtResult::Sat(m) => {
                assert_eq!(enc.decode(&m), Term::var(y, Sort::Int));
            }
            SmtResult::Unsat => panic!("variable grammar must fit"),
        }
    }

    #[test]
    fn boolean_nonterminal_grammar() {
        // B -> (>= x 0) | (not B)
        let x = Symbol::new("bgx");
        let mut g = Grammar::new();
        let b = g.add_nonterminal("B", Sort::Bool);
        g.add_production(
            b,
            GTerm::App(Op::Ge, vec![GTerm::Var(x, Sort::Int), GTerm::Const(0)]),
        );
        g.add_production(b, GTerm::App(Op::Not, vec![GTerm::Nonterminal(b)]));
        let params = [(x, Sort::Int)];
        let enc = GeneralEncoding::new(&g, &Definitions::new(), &params, 2).expect("encodes");
        // Want f(-5) = true → must pick (not (>= x 0)).
        let q = Term::and([enc.interpret(&[Value::Int(-5)]), enc.bound_constraints(1)]);
        match SmtSolver::new().check(&q).unwrap() {
            SmtResult::Sat(m) => {
                let t = enc.decode(&m);
                assert_eq!(t.to_string(), "(not (>= bgx 0))");
            }
            SmtResult::Unsat => panic!("negation must be selectable"),
        }
    }
}
