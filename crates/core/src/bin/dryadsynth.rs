//! The `dryadsynth` command-line SyGuS solver.
//!
//! Usage:
//!
//! ```text
//! dryadsynth [--engine coop|enum|deduct|euback|eusolver|cvc4|loopinvgen]
//!            [--timeout SECONDS] [--threads N] [--stats] FILE.sl
//! ```
//!
//! Reads a SyGuS-IF problem, solves it, and prints the solution in the
//! competition's `define-fun` answer format (or `(fail)` / `(timeout)`).

use dryadsynth::{
    Cvc4Baseline, DryadSynth, DryadSynthConfig, Engine, EuSolverBaseline, LoopInvGenBaseline,
    SygusSolver, SynthOutcome,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    engine: String,
    timeout: Duration,
    threads: usize,
    stats: bool,
    file: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        engine: "coop".to_owned(),
        timeout: Duration::from_secs(30),
        threads: 2,
        stats: false,
        file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => {
                opts.engine = args.next().ok_or("--engine needs a value")?;
            }
            "--timeout" => {
                let v = args.next().ok_or("--timeout needs seconds")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad timeout `{v}`"))?;
                opts.timeout = Duration::from_secs(secs);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a count")?;
                opts.threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--stats" => opts.stats = true,
            "--help" | "-h" => return Err(
                "usage: dryadsynth [--engine coop|enum|deduct|euback|eusolver|cvc4|loopinvgen] \
                            [--timeout SECONDS] [--threads N] [--stats] FILE.sl"
                    .to_owned(),
            ),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => {
                if opts.file.is_some() {
                    return Err("multiple input files".to_owned());
                }
                opts.file = Some(file.to_owned());
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(file) = &opts.file else {
        eprintln!("no input file; see --help");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let problem = match sygus_parser::parse_problem(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}: parse error: {e}");
            return ExitCode::from(2);
        }
    };

    let solver: Box<dyn SygusSolver> = match opts.engine.as_str() {
        "coop" => Box::new(DryadSynth::new(DryadSynthConfig {
            threads: opts.threads,
            ..DryadSynthConfig::default()
        })),
        "enum" => Box::new(DryadSynth::new(DryadSynthConfig {
            engine: Engine::HeightEnumOnly,
            threads: opts.threads,
            ..DryadSynthConfig::default()
        })),
        "deduct" => Box::new(DryadSynth::new(DryadSynthConfig {
            engine: Engine::DeductionOnly,
            ..DryadSynthConfig::default()
        })),
        "euback" => Box::new(DryadSynth::new(DryadSynthConfig {
            engine: Engine::BottomUpBacked,
            ..DryadSynthConfig::default()
        })),
        "eusolver" => Box::new(EuSolverBaseline),
        "cvc4" => Box::new(Cvc4Baseline),
        "loopinvgen" => Box::new(LoopInvGenBaseline),
        other => {
            eprintln!("unknown engine `{other}`");
            return ExitCode::from(2);
        }
    };

    let start = Instant::now();
    let outcome = solver.solve_problem(&problem, opts.timeout);
    let elapsed = start.elapsed();
    match outcome {
        SynthOutcome::Solved(body) => {
            println!("{}", sygus_parser::solution_to_sygus(&problem, &body));
            if opts.stats {
                eprintln!(
                    "; solver={} time={:.3}s size={} height={}",
                    solver.name(),
                    elapsed.as_secs_f64(),
                    body.size(),
                    body.height()
                );
            }
            ExitCode::SUCCESS
        }
        SynthOutcome::Timeout => {
            println!("(timeout)");
            ExitCode::from(1)
        }
        SynthOutcome::GaveUp(reason) => {
            println!("(fail)");
            if opts.stats {
                eprintln!("; reason: {reason}");
            }
            ExitCode::from(1)
        }
    }
}
