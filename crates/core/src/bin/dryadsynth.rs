//! The `dryadsynth` command-line SyGuS solver.
//!
//! Usage:
//!
//! ```text
//! dryadsynth [--engine coop|enum|deduct|euback|eusolver|cvc4|loopinvgen]
//!            [--timeout SECONDS] [--fuel STEPS] [--threads N] [--stats] FILE.sl
//! ```
//!
//! Reads a SyGuS-IF problem, solves it, and prints the solution in the
//! competition's `define-fun` answer format (or `(fail)` / `(timeout)` /
//! `(resource-exhausted)`).
//!
//! Exit codes distinguish the failure modes:
//!
//! | code | meaning                                            |
//! |------|----------------------------------------------------|
//! | 0    | solved                                             |
//! | 1    | gave up (search exhausted / unsupported problem)   |
//! | 2    | usage, I/O, or parse error                         |
//! | 4    | wall-clock timeout (or cancellation)               |
//! | 5    | resource exhaustion (fuel / memory budget)         |
//! | 6    | engine fault (a contained panic) and no solution   |

use dryadsynth::{
    CoopStats, Cvc4Baseline, DryadSynth, DryadSynthConfig, Engine, EuSolverBaseline,
    LoopInvGenBaseline, SygusSolver, SynthOutcome,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: dryadsynth \
[--engine coop|enum|deduct|euback|eusolver|cvc4|loopinvgen] \
[--timeout SECONDS] [--fuel STEPS] [--threads N] [--stats] FILE.sl\n\
  --timeout 0 expires the budget immediately (useful for plumbing tests);\n\
  --fuel caps governed engine steps independently of wall-clock time.";

struct Options {
    engine: String,
    timeout: Duration,
    fuel: Option<u64>,
    threads: usize,
    stats: bool,
    file: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        engine: "coop".to_owned(),
        timeout: Duration::from_secs(30),
        fuel: None,
        threads: 2,
        stats: false,
        file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => {
                opts.engine = args.next().ok_or("--engine needs a value")?;
            }
            "--timeout" => {
                let v = args.next().ok_or("--timeout needs seconds")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad timeout `{v}`"))?;
                // 0 is deliberate: a zero-duration budget is born expired.
                opts.timeout = Duration::from_secs(secs);
            }
            "--fuel" => {
                let v = args.next().ok_or("--fuel needs a step count")?;
                let fuel: u64 = v.parse().map_err(|_| format!("bad fuel `{v}`"))?;
                opts.fuel = Some(fuel);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a count")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
                opts.threads = n;
            }
            "--stats" => opts.stats = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => {
                if opts.file.is_some() {
                    return Err("multiple input files".to_owned());
                }
                opts.file = Some(file.to_owned());
            }
        }
    }
    Ok(opts)
}

/// Maps an outcome (plus faults recorded along the way) to the CLI's exit
/// code contract. A solved run exits 0 even if faults were contained; an
/// unsolved run with faults exits 6 so harnesses can flag flaky engines.
fn exit_code(outcome: &SynthOutcome, stats: &CoopStats) -> ExitCode {
    match outcome {
        SynthOutcome::Solved(_) => ExitCode::SUCCESS,
        _ if !stats.faults.is_empty() => ExitCode::from(6),
        SynthOutcome::ResourceExhausted(_) => ExitCode::from(5),
        SynthOutcome::Timeout => ExitCode::from(4),
        SynthOutcome::GaveUp(_) => ExitCode::from(1),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(file) = &opts.file else {
        eprintln!("no input file; see --help");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let problem = match sygus_parser::parse_problem(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}: parse error: {e}");
            return ExitCode::from(2);
        }
    };

    let dryad_config = |engine: Engine| DryadSynthConfig {
        engine,
        threads: opts.threads,
        fuel: opts.fuel,
        ..DryadSynthConfig::default()
    };
    // DryadSynth variants report full governed-run statistics; the
    // baselines only produce an outcome.
    let dryad: Option<DryadSynth> = match opts.engine.as_str() {
        "coop" => Some(DryadSynth::new(dryad_config(Engine::Cooperative))),
        "enum" => Some(DryadSynth::new(dryad_config(Engine::HeightEnumOnly))),
        "deduct" => Some(DryadSynth::new(dryad_config(Engine::DeductionOnly))),
        "euback" => Some(DryadSynth::new(dryad_config(Engine::BottomUpBacked))),
        _ => None,
    };
    let baseline: Option<Box<dyn SygusSolver>> = match opts.engine.as_str() {
        "eusolver" => Some(Box::new(EuSolverBaseline)),
        "cvc4" => Some(Box::new(Cvc4Baseline)),
        "loopinvgen" => Some(Box::new(LoopInvGenBaseline)),
        _ => None,
    };
    if dryad.is_none() && baseline.is_none() {
        eprintln!("unknown engine `{}`", opts.engine);
        return ExitCode::from(2);
    }

    let start = Instant::now();
    let (name, outcome, stats) = match (&dryad, &baseline) {
        (Some(solver), _) => {
            let (outcome, stats) = solver.solve_with_stats(&problem, opts.timeout);
            (solver.name(), outcome, stats)
        }
        (None, Some(solver)) => {
            let outcome = solver.solve_problem(&problem, opts.timeout);
            (solver.name(), outcome, CoopStats::default())
        }
        (None, None) => unreachable!("engine validated above"),
    };
    let elapsed = start.elapsed();

    if opts.stats {
        eprintln!(
            "; solver={} time={:.3}s faults={} smt_queries={} smt_retries={} fuel_spent={}",
            name,
            elapsed.as_secs_f64(),
            stats.faults.len(),
            stats.smt_queries,
            stats.smt_retries,
            stats.fuel_spent,
        );
        for fault in &stats.faults {
            eprintln!("; {fault}");
        }
    }

    let code = exit_code(&outcome, &stats);
    match outcome {
        SynthOutcome::Solved(body) => {
            println!("{}", sygus_parser::solution_to_sygus(&problem, &body));
            if opts.stats {
                eprintln!("; size={} height={}", body.size(), body.height());
            }
        }
        SynthOutcome::Timeout => println!("(timeout)"),
        SynthOutcome::ResourceExhausted(reason) => {
            println!("(resource-exhausted)");
            if opts.stats {
                eprintln!("; reason: {reason}");
            }
        }
        SynthOutcome::GaveUp(reason) => {
            println!("(fail)");
            if opts.stats {
                eprintln!("; reason: {reason}");
            }
        }
    }
    code
}
